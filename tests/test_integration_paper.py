"""End-to-end integration tests replaying the paper's narrative.

Each test follows one section of the paper through the real pipeline:
parse the DTDs and constraints, compile, register the section 4.1
update, check, and apply — asserting the intermediate artifacts the
paper prints along the way.
"""

import pytest

from repro.core import IntegrityGuard
from repro.datagen.running_example import (
    CONFLICT_OF_INTEREST,
    SECTION_4_1_XUPDATE,
    make_schema,
    submission_xupdate,
)
from repro.relational import subtree_facts
from repro.xquery.engine import query_truth
from repro.xtree import parse_document
from repro.xupdate import apply_text, parse_modifications


def _rev_doc_for_section_4_1():
    """A document where /review/track[2]/rev[5]/sub[6] exists."""
    def sub(k):
        return (f"<sub><title>S{k}</title>"
                f"<auts><name>A{k}</name></auts></sub>")

    def rev(name, subs):
        body = "".join(sub(k) for k in range(subs))
        return f"<rev><name>{name}</name>{body}</rev>"

    track2 = "".join(rev(f"R{j}", 6 if j == 5 else 1)
                     for j in range(1, 6))
    text = ("<review>"
            f"<track><name>T1</name>{rev('R0', 1)}</track>"
            f"<track><name>T2</name>{track2}</track>"
            "</review>")
    return parse_document(text)


class TestSection41UpdateMapping:
    def test_relational_delta_of_the_paper_statement(self,
                                                     relational_schema):
        document = _rev_doc_for_section_4_1()
        target_rev = None
        for rev in document.iter_elements("rev"):
            if rev.first_child("name").text() == "R5":
                target_rev = rev
        assert target_rev is not None
        applied = apply_text(document, SECTION_4_1_XUPDATE)
        new_sub = applied[0].inserted[0]
        facts = dict(
            (predicate, row)
            for predicate, row in subtree_facts(new_sub,
                                                relational_schema))
        sub_row = facts["sub"]
        auts_row = facts["auts"]
        # {sub(ids, pos, idr, "Taming Web Services"),
        #  auts(ida, 2, ids, "Jack")}
        assert sub_row[2] == target_rev.node_id
        assert sub_row[3] == "Taming Web Services"
        assert auts_row[2] == sub_row[0]
        assert auts_row[1] == 2
        assert auts_row[3] == "Jack"
        # NOTE: the paper reports position 7 for the new sub by counting
        # sub siblings only; our Pos counts all element children (the
        # name element comes first), hence 8.  See DESIGN.md.
        assert sub_row[1] == 8


class TestSection6Translation:
    def test_full_query_shape(self, constraint_schema):
        conflict = constraint_schema.constraint("conflict_of_interest")
        query = conflict.full_queries[1]
        # the paper's final optimized query joins //rev and //aut
        assert "//rev" in query.text and "aut" in query.text
        assert "satisfies" in query.text
        assert query.parameters == {}

    def test_simplified_query_uses_placeholders(self, constraint_schema):
        checks = next(iter(constraint_schema.patterns.values()))
        conflict_checks = [c for c in checks.optimized
                           if c.constraint.name == "conflict_of_interest"]
        queries = [q for c in conflict_checks for q in c.queries]
        assert any("%{ir}" in q.text and "%{n}" in q.text
                   for q in queries)

    def test_aggregate_translation_evaluates(self, constraint_schema,
                                             documents):
        workload = constraint_schema.constraint("conference_workload")
        assert not query_truth(workload.full_queries[0].text, documents)


class TestEndToEndStory:
    """The complete scenario: compile once, guard many updates."""

    def test_story(self, documents):
        schema = make_schema()
        guard = IntegrityGuard(schema, documents)

        # 1. a legal submission for reviewer Grace
        ok = guard.try_execute(
            submission_xupdate(1, 2, "Fresh Ideas", "Newcomer"))
        assert ok.legal and ok.optimized and ok.applied

        # 2. Grace cannot review her own paper
        self_review = guard.try_execute(
            submission_xupdate(1, 2, "Self Cite", "Grace"))
        assert not self_review.legal
        assert self_review.violated == ["conflict_of_interest"]

        # 3. Alice cannot review her coauthor Bob
        coauthor = guard.try_execute(
            submission_xupdate(1, 1, "Collusion", "Bob"))
        assert not coauthor.legal

        # 4. the document reflects exactly one applied update
        rev_doc = documents[1]
        titles = [sub.first_child("title").text()
                  for sub in rev_doc.iter_elements("sub")]
        assert "Fresh Ideas" in titles
        assert "Self Cite" not in titles
        assert "Collusion" not in titles

    def test_pre_check_does_not_touch_documents(self, documents):
        from repro.xtree import serialize
        schema = make_schema()
        guard = IntegrityGuard(schema, documents)
        snapshot = serialize(documents[1])
        guard.try_execute(submission_xupdate(1, 1, "Nope", "Alice"))
        assert serialize(documents[1]) == snapshot

    def test_simplification_under_50ms(self):
        """Footnote 4: the simplified constraints of examples 1 and 6
        were generated in less than 50 ms."""
        import time
        from repro.core import ConstraintSchema
        from repro.datagen.running_example import PUB_DTD, REV_DTD
        schema = ConstraintSchema([PUB_DTD, REV_DTD],
                                  [CONFLICT_OF_INTEREST])
        start = time.perf_counter()
        schema.register_pattern(submission_xupdate(1, 1, "x", "y"))
        elapsed_ms = (time.perf_counter() - start) * 1000
        assert elapsed_ms < 50
