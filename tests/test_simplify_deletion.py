"""Unit tests for the deletion extension (repro.simplify.deletion)."""

import pytest

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Variable as V,
)
from repro.simplify.deletion import deletion_safe, simp_deletion


def _aggregate_denial(func, op, bound=3):
    term = None if func == "cnt" else V("X")
    aggregate = Aggregate(func, False, term, (),
                          (Atom("p", (V("X"), V("Y"))),))
    return Denial((AggregateCondition(aggregate, op, C(bound)),))


class TestDeletionSafe:
    def test_positive_conjunctive_bodies_are_safe(self):
        denial = Denial((
            Atom("rev", (V("I"), V("A"), V("B"), V("R"))),
            Atom("sub", (V("S"), V("C"), V("I"), V("T"))),
            Comparison("ne", V("R"), V("T")),
        ))
        assert deletion_safe(denial)

    @pytest.mark.parametrize("func, op, safe", [
        ("cnt", "gt", True),
        ("cnt", "ge", True),
        ("max", "gt", True),
        ("cnt", "lt", False),   # a shrinking count can fall below a floor
        ("cnt", "le", False),
        ("cnt", "eq", False),
        ("cnt", "ne", False),
        ("min", "gt", False),   # removing the minimum raises the min
        ("avg", "gt", False),
        ("sum", "gt", False),   # negative values make sums non-monotone
    ])
    def test_aggregate_monotonicity(self, func, op, safe):
        assert deletion_safe(_aggregate_denial(func, op)) is safe

    def test_running_example_constraints_are_safe(self, constraint_schema):
        for constraint in constraint_schema.constraints:
            assert all(deletion_safe(denial)
                       for denial in constraint.denials)


class TestSimpDeletion:
    def test_safe_constraints_give_empty_check(self):
        denial = Denial((Atom("p", (V("X"),)),))
        assert simp_deletion([denial]) == []

    def test_unsafe_constraint_rejected(self):
        with pytest.raises(ValueError):
            simp_deletion([_aggregate_denial("cnt", "lt")])


class TestGuardIntegration:
    def test_unsafe_constraint_forces_brute_force_on_remove(
            self, documents):
        from repro.core import ConstraintSchema, IntegrityGuard
        from repro.datagen.running_example import PUB_DTD, REV_DTD
        # every reviewer must keep at least one submission
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            ["<- Cnt_D{[R]; //rev[/name/text() -> R]/sub} < 1"],
            names=["at_least_one_sub"],
        )
        guard = IntegrityGuard(schema, documents)
        # Grace reviews in exactly one track and has exactly one sub
        remove_only_sub = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:remove select="/review/track[1]/rev[2]/sub[1]"/>
        </xupdate:modifications>"""
        decision = guard.try_execute(remove_only_sub)
        assert not decision.legal
        assert not decision.optimized
        assert decision.violated == ["at_least_one_sub"]
        # the rejected removal left the submission in place
        track1 = documents[1].root.element_children("track")[0]
        grace = track1.element_children("rev")[1]
        assert len(grace.element_children("sub")) == 1
