"""Unit tests for XPathLog → Datalog compilation (section 4.2)."""

import pytest

from repro.datalog import (
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Variable as V,
)
from repro.errors import CompilationError
from repro.xpathlog import compile_constraint, parse_constraint


def compile_text(text, schema):
    return compile_constraint(parse_constraint(text), schema)


class TestPaperExample3:
    """Example 1 compiles to the two denials of example 3."""

    def test_two_denials(self, relational_schema):
        from repro.datagen.running_example import CONFLICT_OF_INTEREST
        denials = compile_text(CONFLICT_OF_INTEREST, relational_schema)
        assert len(denials) == 2

    def test_first_denial_matches_paper(self, relational_schema):
        from repro.datagen.running_example import CONFLICT_OF_INTEREST
        denials = compile_text(CONFLICT_OF_INTEREST, relational_schema)
        expected = Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
            Atom("auts", (V("_5"), V("_6"), V("Is"), V("R"))),
        ))
        assert denials[0].equivalent_to(expected)

    def test_second_denial_matches_paper(self, relational_schema):
        from repro.datagen.running_example import CONFLICT_OF_INTEREST
        denials = compile_text(CONFLICT_OF_INTEREST, relational_schema)
        expected = Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
            Atom("auts", (V("_5"), V("_6"), V("Is"), V("A"))),
            Atom("aut", (V("_7"), V("_8"), V("Ip"), V("R"))),
            Atom("aut", (V("_9"), V("_10"), V("Ip"), V("A"))),
        ))
        assert denials[1].equivalent_to(expected)


class TestDuckburg:
    """The section 4.2 example with a constant qualifier."""

    def test_constant_folded_into_column(self, relational_schema):
        denials = compile_text(
            '<- //pub[title = "Duckburg tales"]/aut/name/text() -> N '
            '/\\ N = "Goofy"', relational_schema)
        assert len(denials) == 1
        expected = Denial((
            Atom("pub", (V("Ip"), V("_1"), V("_2"),
                         C("Duckburg tales"))),
            Atom("aut", (V("_3"), V("_4"), V("Ip"), C("Goofy"))),
        ))
        assert denials[0].equivalent_to(expected)


class TestPathFeatures:
    def test_parent_axis_creates_join(self, relational_schema):
        denials = compile_text('<- //aut/../title -> T /\\ T = "X"',
                               relational_schema)
        pub_atoms = [a for a in denials[0].atoms() if a.predicate == "pub"]
        aut_atoms = [a for a in denials[0].atoms() if a.predicate == "aut"]
        assert pub_atoms and aut_atoms
        assert aut_atoms[0].args[2] == pub_atoms[0].args[0]

    def test_position_comparison(self, relational_schema):
        denials = compile_text(
            '<- //pub[position() <= 3]/title -> T /\\ T = "F"',
            relational_schema)
        comparisons = denials[0].comparisons()
        assert comparisons and comparisons[0].op == "le"

    def test_descendant_resolves_unique_chain(self, relational_schema):
        denials = compile_text('<- //track//auts/name/text() -> N '
                               '/\\ N = "X"', relational_schema)
        predicates = [a.predicate for a in denials[0].atoms()]
        # the whole ancestor chain track→rev→sub is implied by the
        # schema's referential integrity and pruned away
        assert predicates == ["auts"]

    def test_root_step(self, relational_schema):
        denials = compile_text('<- /dblp/pub/title -> T /\\ T = "X"',
                               relational_schema)
        assert [a.predicate for a in denials[0].atoms()] == ["pub"]

    def test_unknown_tag_rejected(self, relational_schema):
        with pytest.raises(CompilationError):
            compile_text("<- //unknown", relational_schema)

    def test_wrong_child_rejected(self, relational_schema):
        with pytest.raises(CompilationError):
            compile_text("<- //rev/aut", relational_schema)

    def test_text_of_structured_node_rejected(self, relational_schema):
        with pytest.raises(CompilationError):
            compile_text('<- //rev/sub/text() -> T /\\ T = "X"',
                         relational_schema)

    def test_bare_path_is_existence(self, relational_schema):
        denials = compile_text("<- //sub", relational_schema)
        assert [a.predicate for a in denials[0].atoms()] == ["sub"]

    def test_shared_binding_creates_join(self, relational_schema):
        denials = compile_text(
            "<- //pub[/aut/name/text() -> N]/title/text() -> N",
            relational_schema)
        atoms = denials[0].atoms()
        pub = next(a for a in atoms if a.predicate == "pub")
        aut = next(a for a in atoms if a.predicate == "aut")
        assert pub.args[3] == aut.args[3]  # same variable N


class TestAggregateCompilation:
    def test_example_2_shapes(self, relational_schema):
        from repro.datagen.running_example import CONFERENCE_WORKLOAD
        denials = compile_text(CONFERENCE_WORKLOAD, relational_schema)
        assert len(denials) == 1
        conditions = denials[0].aggregate_conditions()
        assert len(conditions) == 2
        first, second = conditions
        assert first.op == "ge" and first.bound == C(3)
        assert second.op == "gt" and second.bound == C(10)
        assert [a.predicate for a in first.aggregate.body] \
            == ["track", "rev"]
        assert [a.predicate for a in second.aggregate.body] \
            == ["rev", "sub"]

    def test_group_variable_shared(self, relational_schema):
        from repro.datagen.running_example import CONFERENCE_WORKLOAD
        denials = compile_text(CONFERENCE_WORKLOAD, relational_schema)
        first, second = denials[0].aggregate_conditions()
        assert first.aggregate.group_by == second.aggregate.group_by

    def test_counted_term_is_selected_node(self, relational_schema):
        denials = compile_text(
            "<- Cnt_D{[R]; //rev[/name/text() -> R]/sub} > 10",
            relational_schema)
        condition = denials[0].aggregate_conditions()[0]
        sub_atom = next(a for a in condition.aggregate.body
                        if a.predicate == "sub")
        assert condition.aggregate.term == sub_atom.args[0]

    def test_aggregate_with_leftover_comparison_rejected(
            self, relational_schema):
        with pytest.raises(CompilationError):
            compile_text(
                "<- Cnt_D{[R]; //rev[/name/text() -> R]"
                "[/position() > 2]/sub} > 10", relational_schema)
