"""Unit tests for the deterministic failpoint registry."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ReproError
from repro.testing.failpoints import (
    SITES,
    FailPointError,
    FailPointRegistry,
    Trigger,
    _arm_from_environment,
    fail,
    parse_schedule,
)

SITE = "xupdate.apply.pre_op"
OTHER = "core.guard.post_check"


class TestTriggerParse:
    def test_count(self):
        trigger = Trigger.parse("count:3")
        assert (trigger.kind, trigger.value) == ("count", 3)
        assert trigger.render() == "count:3"

    def test_every(self):
        trigger = Trigger.parse(" every:2 ")
        assert (trigger.kind, trigger.value) == ("every", 2)

    def test_prob_with_seed(self):
        trigger = Trigger.parse("prob:0.25:7")
        assert (trigger.kind, trigger.value, trigger.seed) == \
            ("prob", 0.25, 7)
        assert trigger.render() == "prob:0.25:7"

    def test_prob_default_seed(self):
        assert Trigger.parse("prob:0.5").seed == 0

    def test_thread_filter_suffix(self):
        trigger = Trigger.parse("count:1@thread=writer-*")
        assert trigger.thread_pattern == "writer-*"
        assert trigger.matches_thread("writer-3")
        assert not trigger.matches_thread("reader-1")
        assert trigger.render() == "count:1@thread=writer-*"

    @pytest.mark.parametrize("bad", [
        "boom:1", "count", "count:0", "count:x", "every:-2",
        "prob:1.5", "prob:0.5:1:2", "count:1@thread=",
    ])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            Trigger.parse(bad)


class TestParseSchedule:
    def test_text_spec(self):
        parsed = parse_schedule(f"{SITE}=count:2; {OTHER}=every:3")
        assert set(parsed) == {SITE, OTHER}
        assert parsed[SITE].kind == "count"
        assert parsed[OTHER].kind == "every"

    def test_dict_spec_with_trigger_objects(self):
        parsed = parse_schedule({SITE: Trigger("count", 1)})
        assert parsed[SITE].kind == "count"

    def test_empty_text_is_empty(self):
        assert parse_schedule("") == {}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint site"):
            parse_schedule("no.such.site=count:1")

    def test_unknown_site_allowed_when_asked(self):
        parsed = parse_schedule("no.such.site=count:1",
                                known_only=False)
        assert "no.such.site" in parsed

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="site=trigger"):
            parse_schedule("just-a-site")

    def test_catalog_covers_schedules(self):
        # every documented site parses in a schedule
        spec = ";".join(f"{site}=count:1" for site in SITES)
        assert len(parse_schedule(spec)) == len(SITES)


def _hit_n(registry: FailPointRegistry, site: str, n: int) -> list[int]:
    """Hit ``site`` n times; return the 1-based hits that raised."""
    fired = []
    for i in range(1, n + 1):
        try:
            registry.point(site)
        except FailPointError as error:
            assert error.site == site
            fired.append(i)
    return fired


class TestFiring:
    def test_count_fires_once_on_nth_hit(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "count:3"}) as handle:
            assert _hit_n(registry, SITE, 10) == [3]
            assert handle.hits(SITE) == 10
            assert handle.fires(SITE) == 1
            assert handle.fired(SITE)

    def test_every_fires_periodically(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "every:2"}) as handle:
            assert _hit_n(registry, SITE, 7) == [2, 4, 6]
            assert handle.counts() == {SITE: (7, 3)}

    def test_prob_is_deterministic_per_arming(self):
        registry = FailPointRegistry()
        runs = []
        for _ in range(2):
            with registry.armed({SITE: "prob:0.4:99"}):
                runs.append(_hit_n(registry, SITE, 50))
        assert runs[0] == runs[1]
        assert runs[0]  # p=.4 over 50 draws: statistically certain

    def test_unarmed_site_is_a_noop(self):
        registry = FailPointRegistry()
        registry.point(SITE)  # nothing armed at all
        with registry.armed({OTHER: "count:1"}):
            registry.point(SITE)  # a different site armed

    def test_error_carries_site_and_hit(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "count:2"}):
            registry.point(SITE)
            with pytest.raises(FailPointError) as info:
                registry.point(SITE)
        assert info.value.site == SITE
        assert info.value.hit == 2

    def test_not_a_repro_error(self):
        # must propagate like an unforeseen failure, not be swallowed
        # by the library's ReproError handling
        assert not issubclass(FailPointError, ReproError)

    def test_assert_fired(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "count:1", OTHER: "count:9"}) as fp:
            _hit_n(registry, SITE, 1)
            fp.assert_fired(SITE)
            with pytest.raises(AssertionError, match=OTHER):
                fp.assert_fired()


class TestThreadFilter:
    def test_only_matching_threads_fire(self):
        registry = FailPointRegistry()
        outcomes: dict[str, list[int]] = {}

        def worker(name: str) -> None:
            outcomes[name] = _hit_n(registry, SITE, 4)

        with registry.armed(
                {SITE: "every:1@thread=writer-*"}) as handle:
            _hit_n(registry, SITE, 4)  # main thread: filtered out
            for name in ("writer-1", "reader-1"):
                thread = threading.Thread(
                    target=worker, args=(name,), name=name)
                thread.start()
                thread.join()
            assert outcomes["writer-1"] == [1, 2, 3, 4]
            assert outcomes["reader-1"] == []
            # all 12 hits counted, only the writer's 4 were eligible
            assert handle.hits(SITE) == 12
            assert handle.fires(SITE) == 4


class TestScoping:
    def test_disarmed_on_exit(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "every:1"}):
            with pytest.raises(FailPointError):
                registry.point(SITE)
        registry.point(SITE)  # no longer armed

    def test_disarmed_on_exception(self):
        registry = FailPointRegistry()
        with pytest.raises(RuntimeError):
            with registry.armed({SITE: "count:1"}):
                raise RuntimeError("boom")
        registry.point(SITE)

    def test_nested_arming_shadows_and_restores(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "count:5"}) as outer:
            _hit_n(registry, SITE, 2)  # outer counter at 2
            with registry.armed({SITE: "every:1"}) as inner:
                assert _hit_n(registry, SITE, 2) == [1, 2]
                assert inner.fires(SITE) == 2
            # outer arming restored, its counter intact: three more
            # hits reach its count:5 threshold
            assert _hit_n(registry, SITE, 3) == [3]
            assert outer.hits(SITE) == 5
            assert outer.fires(SITE) == 1

    def test_nested_sibling_sites_compose(self):
        registry = FailPointRegistry()
        with registry.armed({SITE: "count:1"}):
            with registry.armed({OTHER: "count:1"}):
                with pytest.raises(FailPointError):
                    registry.point(SITE)
                with pytest.raises(FailPointError):
                    registry.point(OTHER)
            registry.point(OTHER)  # inner gone

    def test_arm_persistent_and_disarm_all(self):
        registry = FailPointRegistry()
        registry.arm_persistent({SITE: "every:1"})
        assert SITE in registry.active_sites()
        with pytest.raises(FailPointError):
            registry.point(SITE)
        registry.disarm_all()
        registry.point(SITE)


class TestEnvironmentArming:
    def test_env_spec_arms(self, monkeypatch):
        registry = FailPointRegistry()
        monkeypatch.setenv("REPRO_FAILPOINTS", f"{SITE}=count:1")
        _arm_from_environment(registry)
        with pytest.raises(FailPointError):
            registry.point(SITE)

    def test_empty_env_is_ignored(self, monkeypatch):
        registry = FailPointRegistry()
        monkeypatch.setenv("REPRO_FAILPOINTS", "  ")
        _arm_from_environment(registry)
        assert registry.active_sites() == {}


class TestNoOpOverhead:
    """The unarmed fast path must stay a single dict lookup.

    The precise numbers live in ``benchmarks/
    test_failpoint_overhead.py``; this is the structural guarantee
    plus a very generous timing smoke so a regression (taking a lock,
    formatting a string) fails even in plain test runs.
    """

    def test_unarmed_registry_is_an_empty_dict(self):
        assert FailPointRegistry()._armed == {}

    def test_global_registry_unarmed_in_test_runs(self):
        assert fail.active_sites() == {}

    def test_unarmed_point_smoke_timing(self):
        registry = FailPointRegistry()
        rounds = 20_000
        start = time.perf_counter()
        for _ in range(rounds):
            registry.point(SITE)
        elapsed = time.perf_counter() - start
        # an empty-dict .get is tens of nanoseconds; 10 µs/call means
        # something structural broke (orders of magnitude of headroom
        # for slow shared CI runners)
        assert elapsed / rounds < 10e-6
