"""The worked examples of section 5, asserted verbatim.

These are the ground truth of the reproduction: ``After`` and ``Simp``
must produce exactly the denials the paper derives (up to variable
renaming, checked by mutual θ-subsumption).
"""

import pytest

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Parameter as P,
    Variable as V,
)
from repro.simplify import UpdatePattern, after, freshness_hypotheses, simp


def equivalent_sets(result, expected):
    """Set equality modulo renaming (mutual subsumption per element)."""
    if len(result) != len(expected):
        return False
    unmatched = list(expected)
    for denial in result:
        for candidate in unmatched:
            if denial.equivalent_to(candidate):
                unmatched.remove(candidate)
                break
        else:
            return False
    return not unmatched


# -- Example 4/5: ISSN uniqueness -------------------------------------------

@pytest.fixture()
def issn_constraint():
    return Denial((
        Atom("p", (V("X"), V("Y"))),
        Atom("p", (V("X"), V("Z"))),
        Comparison("ne", V("Y"), V("Z")),
    ))


@pytest.fixture()
def issn_update():
    return UpdatePattern((Atom("p", (P("i"), P("t"))),))


class TestExample4After:
    def test_four_denials(self, issn_constraint, issn_update):
        assert len(after([issn_constraint], issn_update)) == 4

    def test_first_is_original(self, issn_constraint, issn_update):
        expanded = after([issn_constraint], issn_update)
        assert expanded[0].equivalent_to(issn_constraint)

    def test_structure_matches_paper(self, issn_constraint, issn_update):
        expanded = after([issn_constraint], issn_update)
        # ← p(X,Y) ∧ X=i ∧ Z=t ∧ Y≠Z
        second = expanded[1]
        assert len(second.atoms()) == 1
        assert len(second.comparisons()) == 3
        # ← X=i ∧ Y=t ∧ X=i ∧ Z=t ∧ Y≠Z
        fourth = expanded[3]
        assert len(fourth.atoms()) == 0
        assert len(fourth.comparisons()) == 5


class TestExample5Simp:
    def test_result_matches_paper(self, issn_constraint, issn_update):
        result = simp([issn_constraint], issn_update)
        expected = Denial((
            Atom("p", (P("i"), V("Y"))),
            Comparison("ne", V("Y"), P("t")),
        ))
        assert equivalent_sets(result, [expected])


# -- Examples 6 and 7: the running example ----------------------------------

@pytest.fixture()
def gamma():
    """Γ of example 3 (the compiled conflict-of-interest constraint)."""
    return [
        Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
            Atom("auts", (V("_5"), V("_6"), V("Is"), V("R"))),
        )),
        Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
            Atom("auts", (V("_5"), V("_6"), V("Is"), V("A"))),
            Atom("aut", (V("_7"), V("_8"), V("Ip"), V("R"))),
            Atom("aut", (V("_9"), V("_10"), V("Ip"), V("A"))),
        )),
    ]


@pytest.fixture()
def submission_update():
    """U of example 6: insert a single-author submission."""
    return UpdatePattern(
        (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),
         Atom("auts", (P("ia"), P("pa"), P("is"), P("n")))),
        frozenset({P("is"), P("ia")}))


@pytest.fixture()
def delta(submission_update, relational_schema):
    return freshness_hypotheses(submission_update, relational_schema)


class TestExample6Delta:
    def test_delta_matches_paper(self, delta):
        expected = [
            Denial((Atom("sub", (P("is"), V("_1"), V("_2"), V("_3"))),)),
            Denial((Atom("auts", (V("_4"), V("_5"), P("is"), V("_6"))),)),
            Denial((Atom("auts", (P("ia"), V("_7"), V("_8"), V("_9"))),)),
        ]
        assert equivalent_sets(delta, expected)


class TestExample6Simp:
    def test_result_matches_paper(self, gamma, submission_update, delta):
        result = simp(gamma, submission_update, delta)
        expected = [
            Denial((Atom("rev", (P("ir"), V("_1"), V("_2"), P("n"))),)),
            Denial((
                Atom("rev", (P("ir"), V("_1"), V("_2"), V("R"))),
                Atom("aut", (V("_3"), V("_4"), V("Ip"), P("n"))),
                Atom("aut", (V("_5"), V("_6"), V("Ip"), V("R"))),
            )),
        ]
        assert equivalent_sets(result, expected)

    def test_checks_are_cheaper(self, gamma, submission_update, delta):
        result = simp(gamma, submission_update, delta)
        original_atoms = sum(len(d.atoms()) for d in gamma)
        simplified_atoms = sum(len(d.atoms()) for d in result)
        assert simplified_atoms < original_atoms


class TestExample7Simp:
    def test_aggregate_bound_lowered(self, submission_update, delta):
        constraint = Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("_3"))),
            AggregateCondition(
                Aggregate("cnt", True, None, (),
                          (Atom("sub", (V("S1"), V("S2"), V("Ir"),
                                        V("S3"))),)),
                "gt", C(4)),
        ))
        result = simp([constraint], submission_update, delta)
        expected = Denial((
            Atom("rev", (P("ir"), V("_1"), V("_2"), V("_3"))),
            AggregateCondition(
                Aggregate("cnt", True, None, (),
                          (Atom("sub", (V("T1"), V("T2"), P("ir"),
                                        V("T3"))),)),
                "gt", C(3)),
        ))
        assert equivalent_sets(result, [expected])


class TestUnaffectedConstraints:
    def test_constraint_over_other_predicates_vanishes(
            self, submission_update, delta):
        unrelated = Denial((
            Atom("pub", (V("Ip"), V("_1"), V("_2"), V("T"))),
            Atom("pub", (V("Iq"), V("_3"), V("_4"), V("T"))),
            Comparison("ne", V("Ip"), V("Iq")),
        ))
        assert simp([unrelated], submission_update, delta) == []
