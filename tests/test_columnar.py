"""Columnar evaluation backend: verdict differentials and explain.

The contract mirrors the planner suite's: the columnar backend may
only change how fast a verdict arrives, never the verdict.  Every
test pins the three-way equality

    columnar  ==  planned-DOM (``without_columns``)  ==  unplanned

over the fixed query corpus, generated corpora, hypothesis-random
documents, and update workloads — with and without numpy
(``stdlib_only``).  Explain output must name the backend each
quantifier actually used, and the XUpdate select fast path must
resolve exactly the elements the engine resolves.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.guard import IntegrityGuard
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.datagen.workload import legal_submission
from repro.errors import UpdateApplicationError
from repro.relational.columns import stdlib_only
from repro.relational.incremental import attach, store_of
from repro.xquery import parse_query
from repro.xquery.engine import evaluate_query, query_truth
from repro.xquery.planner import (
    explain_query,
    query_truth_planned,
    without_columns,
)
from repro.xtree.serializer import serialize
from repro.xupdate.apply import (
    _columnar_resolve,
    parsed_select,
    resolve_select,
)
from tests.test_planner import QUERIES, random_corpora

SCHEMA = make_schema()

CONFLICT_QUERY = QUERIES[0]


def _attach_all(documents):
    for document in documents:
        attach(document, SCHEMA.relational)
    return documents


def _three_way(query, documents):
    """(columnar, planned-DOM, unplanned) verdict triple."""
    expression = parse_query(query) if isinstance(query, str) else query
    columnar = query_truth_planned(expression, documents)
    with without_columns():
        planned = query_truth_planned(expression, documents)
    unplanned = query_truth(expression, documents)
    return columnar, planned, unplanned


class TestVerdictDifferential:
    @pytest.mark.parametrize("query", QUERIES)
    def test_fixed_queries_agree(self, query, documents):
        columnar, planned, unplanned = _three_way(
            query, _attach_all(documents))
        assert columnar == planned == unplanned

    @pytest.mark.parametrize("query", QUERIES)
    def test_generated_corpus_agrees(self, query, small_corpus):
        documents = _attach_all(list(small_corpus))
        columnar, planned, unplanned = _three_way(query, documents)
        assert columnar == planned == unplanned

    @pytest.mark.parametrize("query", QUERIES)
    def test_fixed_queries_agree_without_numpy(self, query, documents):
        with stdlib_only():
            columnar, planned, unplanned = _three_way(
                query, _attach_all(documents))
        assert columnar == planned == unplanned

    @given(random_corpora())
    @settings(max_examples=30)
    def test_hypothesis_corpora_agree(self, corpus):
        documents = _attach_all(list(corpus))
        for query in QUERIES:
            columnar, planned, unplanned = _three_way(query, documents)
            assert columnar == planned == unplanned, query

    @given(random_corpora())
    @settings(max_examples=15)
    def test_full_constraint_checks_agree(self, corpus):
        documents = _attach_all(list(corpus))
        for constraint in SCHEMA.constraints:
            for query in constraint.full_queries:
                columnar, planned, unplanned = _three_way(
                    query.prepared, documents)
                assert columnar == planned == unplanned, \
                    constraint.name


class TestUpdateWorkloadDifferential:
    """Two guards over twin corpora — one columnar, one ablated —
    must produce identical decisions and identical final documents."""

    def _run(self, small_corpus_factory, updates):
        def guard_over(ablated):
            pub, rev = small_corpus_factory()
            guard = IntegrityGuard(SCHEMA, [pub, rev])
            decisions = []
            for update in updates:
                if ablated:
                    with without_columns():
                        decisions.append(guard.try_execute(update))
                else:
                    decisions.append(guard.try_execute(update))
            return guard, decisions

        columnar_guard, columnar_decisions = guard_over(False)
        ablated_guard, ablated_decisions = guard_over(True)
        assert [(d.legal, d.applied) for d in columnar_decisions] \
            == [(d.legal, d.applied) for d in ablated_decisions]
        for left, right in zip(columnar_guard.documents,
                               ablated_guard.documents):
            assert serialize(left) == serialize(right)
        for document in columnar_guard.documents:
            store = store_of(document)
            assert store is not None
            assert store.verify() == []
        return columnar_decisions

    def test_mixed_updates_agree(self, rng):
        from repro.datagen import CorpusSpec, generate_corpus
        spec = CorpusSpec(tracks=2, revs_per_track=3, subs_per_rev=2,
                          pubs=8, busy_reviewers=1, seed=9)

        def factory():
            return generate_corpus(spec)

        probe_pub, probe_rev = factory()
        updates = [legal_submission(probe_rev, rng) for _ in range(3)]
        updates.append(submission_xupdate(
            1, 1, "Edge paper", "Edge Author"))
        decisions = self._run(factory, updates)
        assert any(d.applied for d in decisions)

    def test_batch_decisions_agree(self):
        from repro.datagen import CorpusSpec, generate_corpus
        spec = CorpusSpec(tracks=2, revs_per_track=3, subs_per_rev=2,
                          pubs=8, busy_reviewers=1, seed=9)
        updates = [submission_xupdate(1 + i % 2, 1 + i % 3,
                                      f"Batch {i}", f"Author {i}")
                   for i in range(8)]

        def batch(ablated):
            pub, rev = generate_corpus(spec)
            guard = IntegrityGuard(SCHEMA, [pub, rev])
            if ablated:
                with without_columns():
                    decisions = guard.check_batch(updates)
            else:
                decisions = guard.check_batch(updates)
            return decisions, [serialize(d) for d in guard.documents]

        columnar, columnar_docs = batch(False)
        ablated, ablated_docs = batch(True)
        assert [d.legal for d in columnar] == [d.legal for d in ablated]
        assert columnar_docs == ablated_docs


class TestExplainBackend:
    def test_columnar_backend_reported(self, documents):
        _attach_all(documents)
        text = explain_query(CONFLICT_QUERY, documents)
        assert "backend: columnar" in text
        assert "columns: " in text  # per-table cardinalities
        assert "est~" in text and "examined=" in text

    def test_ablated_backend_reported(self, documents):
        _attach_all(documents)
        with without_columns():
            text = explain_query(CONFLICT_QUERY, documents)
        assert "backend: planned-DOM" in text
        assert "backend: columnar" not in text

    def test_detached_documents_fall_back(self, documents):
        # no store attached: the plan runs, but on the DOM
        text = explain_query(CONFLICT_QUERY, documents)
        assert "backend: planned-DOM" in text
        assert "backend: columnar" not in text


class TestColumnarSelectResolution:
    POSITIONAL_SELECTS = [
        "/review/track[1]",
        "/review/track[1]/rev[1]",
        "/review/track[2]/rev[1]/sub[1]",
        "/dblp/pub[2]",
    ]

    FALLBACK_SELECTS = [
        "//rev",                                # descendant step
        "/review/track[name/text() = 'Theory']",  # non-positional
        "/review/*",                            # wildcard
    ]

    def _document_for(self, documents, select):
        root = select.lstrip("/").split("/")[0].split("[")[0]
        for document in documents:
            if document.root.tag == root:
                return document
        return documents[1]

    @pytest.mark.parametrize("select", POSITIONAL_SELECTS)
    def test_matches_engine(self, select, documents):
        _attach_all(documents)
        document = self._document_for(documents, select)
        expression = parsed_select(select)
        columnar = _columnar_resolve(document, expression)
        assert columnar is not None
        engine = [item for item in evaluate_query(expression, document)]
        assert columnar == engine

    @pytest.mark.parametrize("select", FALLBACK_SELECTS)
    def test_fallback_shapes_defer_to_engine(self, select, documents):
        _attach_all(documents)
        document = self._document_for(documents, select)
        assert _columnar_resolve(document, parsed_select(select)) is None

    def test_out_of_range_positional_raises_like_engine(self, documents):
        _attach_all(documents)
        document = self._document_for(documents, "/review/track[9]")
        with pytest.raises(UpdateApplicationError):
            resolve_select(document, "/review/track[9]")

    def test_resolution_survives_updates(self, documents):
        _attach_all(documents)
        rev = self._document_for(documents, "/review")
        target = resolve_select(rev, "/review/track[2]/rev[1]")
        track = resolve_select(rev, "/review/track[1]")
        rev.root.remove(track)
        # positions shifted: former track[2] is now track[1]
        assert resolve_select(rev, "/review/track[1]/rev[1]") is target
