"""End-to-end suite for the networked sharded checking service.

Two populations live here:

* fast, socket-free unit tests of the building blocks (frame codec,
  uid validation, config plumbing) — part of the default tier-1 run;
* ``e2e``-marked tests that spawn real worker processes behind the
  asyncio HTTP edge: the **differential conformance suite** (seeded
  mixed workloads through the HTTP edge with 1, 2 and 4 workers must
  produce verdicts and final document bytes identical to a
  single-process ``CheckingService`` oracle) and the **chaos suite**
  (a worker killed mid-batch by an armed failpoint is restarted by the
  supervisor, recovers from its write-ahead log, and every acknowledged
  update survives).  These run in their own CI leg (``service-e2e``).

The workload reuses the fault-injection harness's step vocabulary
(:func:`repro.testing.harness._make_step`), generated against a twin
corpus so the step text is a pure function of the seed — the property
that makes the oracle comparison exact.
"""

from __future__ import annotations

import random
import socket

import pytest

from repro.datagen import generate_corpus
from repro.datagen.corpus import CorpusSpec
from repro.datagen.running_example import (
    CONFERENCE_WORKLOAD,
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from repro.errors import ReproError, SchemaError
from repro.service.net import (
    HashRing,
    ServerThread,
    ServiceClient,
    ServiceConfig,
)
from repro.service.net.frames import (
    FrameError,
    recv_frame,
    send_frame,
)
from repro.service.net.worker import decision_to_json
from repro.service.store import CheckingService, DocumentStore
from repro.testing.harness import _make_step, _weighted_kinds
from repro.xtree.serializer import serialize
from repro.xupdate.parser import canonical_update_text

e2e = pytest.mark.e2e

#: corpus seed shared by the service config, the oracle and the step
#: generator — all three must see the same initial documents
CORPUS_SEED = 20060328

_SPEC = CorpusSpec(tracks=2, revs_per_track=3, subs_per_rev=2,
                   auts_per_sub=2, pubs=6, auts_per_pub=2,
                   busy_reviewers=1, author_pool=30,
                   seed=CORPUS_SEED)


def _twin_corpus():
    """A fresh parse of the exact corpus the service is seeded with."""
    return generate_corpus(_SPEC)


def make_config(**overrides) -> ServiceConfig:
    pub_doc, rev_doc = _twin_corpus()
    settings = dict(
        dtds=(PUB_DTD, REV_DTD),
        constraints=(CONFLICT_OF_INTEREST, CONFERENCE_WORKLOAD),
        constraint_names=("conflict_of_interest",
                          "conference_workload"),
        patterns=(submission_xupdate(1, 1, "x", "y", kind="append"),
                  submission_xupdate(1, 1, "x", "y", kind="after")),
        documents=(serialize(pub_doc), serialize(rev_doc)),
        snapshot_interval=8)
    settings.update(overrides)
    return ServiceConfig(**settings)


def make_oracle(config: ServiceConfig) -> CheckingService:
    """The single-process twin every service answer is compared to."""
    return CheckingService(config.build_schema(),
                           config.initial_documents())


def workload(seed: int, steps: int):
    """(kind, step) pairs for one seed — deterministic, corpus-pure."""
    _pub_doc, rev_doc = _twin_corpus()
    rng = random.Random(seed)
    kinds = _weighted_kinds(rng, steps)
    return [(kind, _make_step(kind, rev_doc, rng)) for kind in kinds]


# ---------------------------------------------------------------------------
# fast unit tests (tier-1): building blocks, no processes
# ---------------------------------------------------------------------------


class TestUidValidation:
    @pytest.mark.parametrize("uid", [
        "a", "tenant-1", "A.b_c-d", "0" * 64, "track2.shard-7"])
    def test_accepts_path_safe_uids(self, uid):
        assert DocumentStore.validate_uid(uid) == uid

    @pytest.mark.parametrize("uid", [
        "", "..", "../evil", "a/b", "a\\b", ".hidden", "-rf",
        "a" * 65, "sp ace", "uid\x00null", "tab\tbed"])
    def test_rejects_path_unsafe_uids(self, uid):
        with pytest.raises(SchemaError):
            DocumentStore.validate_uid(uid)

    def test_store_validates_its_uid(self, documents):
        assert DocumentStore(documents, uid="group-1").uid == "group-1"
        with pytest.raises(SchemaError):
            DocumentStore(documents, uid="../../escape")


class TestFrames:
    def test_roundtrip_over_a_socketpair(self):
        left, right = socket.socketpair()
        with left, right:
            payload = {"op": "update", "text": "<x>é</x>" * 100}
            send_frame(left, payload)
            assert recv_frame(right) == payload

    def test_clean_eof_decodes_to_none(self):
        left, right = socket.socketpair()
        with right:
            left.close()
            assert recv_frame(right) is None

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        with right:
            left.sendall(b"\x00\x00\x01\x00partial")
            left.close()
            with pytest.raises(FrameError):
                recv_frame(right)

    def test_oversized_length_prefix_raises(self):
        left, right = socket.socketpair()
        with left, right:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(FrameError):
                recv_frame(right)


class TestConfig:
    def test_schema_and_documents_rebuild(self):
        config = make_config()
        schema = config.build_schema()
        assert [c.name for c in schema.constraints] == [
            "conflict_of_interest", "conference_workload"]
        documents = config.initial_documents()
        assert [d.root.tag for d in documents] == ["dblp", "review"]

    def test_config_is_picklable(self):
        import pickle
        config = make_config()
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config


# ---------------------------------------------------------------------------
# e2e: differential conformance against the single-process oracle
# ---------------------------------------------------------------------------


def _oracle_step(oracle: CheckingService, step):
    """Outcome of one step on the oracle, in wire-comparable form."""
    try:
        if step is None:
            return ("read", oracle.snapshot())
        if isinstance(step, list):
            return ("batch", [decision_to_json(d)
                              for d in oracle.check_batch(step)])
        return ("update", decision_to_json(oracle.try_execute(step)))
    except ReproError as error:
        return ("error", type(error).__name__)


def _service_step(client: ServiceClient, uid: str, step):
    """The same step through the HTTP edge, same outcome shape."""
    if step is None:
        status, body = client.read(uid)
        assert status == 200, body
        return ("read", body["documents"])
    if isinstance(step, list):
        status, body = client.check_batch(uid, step)
        if status == 422:
            return ("error", body["code"])
        assert status == 200, body
        return ("batch", body["decisions"])
    status, body = client.update(uid, step)
    if status == 422:
        return ("error", body["code"])
    assert status == 200, body
    return ("update", body["decision"])


@e2e
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_conformance_matches_single_process_oracle(workers, tmp_path):
    """The tentpole acceptance test: for every worker count and every
    seed, verdicts and final bytes through the sharded HTTP edge are
    identical to the single-process service."""
    seeds = [11, 22, 33]
    steps_per_seed = 14
    config = make_config()
    with ServerThread(config, tmp_path / "state",
                      workers=workers) as server:
        client = ServiceClient(server.host, server.port)
        for seed in seeds:
            uid = f"seed-{seed}"
            oracle = make_oracle(config)
            for index, (kind, step) in enumerate(
                    workload(seed, steps_per_seed)):
                expected = _oracle_step(oracle, step)
                actual = _service_step(client, uid, step)
                assert actual == expected, (
                    f"workers={workers} seed={seed} step={index} "
                    f"({kind}): service {actual} != oracle {expected}")
            # end-of-workload battery: consistency verdict, commit
            # log, and the exact final document bytes
            status, body = client.check(uid)
            assert status == 200
            assert body["violations"] == oracle.verify_consistency()
            status, body = client.read(uid, with_log=True)
            assert status == 200
            assert body["documents"] == oracle.snapshot()
            assert body["log"] == [
                canonical_update_text(entry.update)
                for entry in oracle.committed_updates()]
        # every live worker took part and none restarted
        status, body = client.status()
        assert status == 200
        assert body["alive"] == [True] * workers
        assert all(count == 0 for count in body["restarts"].values())
        client.close()


@e2e
def test_worker_enforces_ownership(tmp_path):
    """A frame routed to the wrong worker is refused worker-side: the
    ring is re-derived inside each worker, so a confused router can
    never make two workers serve one uid."""
    uid = "owned-tenant"
    ring = HashRing(range(2))
    owner = ring.owner(uid)
    wrong = 1 - owner
    with ServerThread(make_config(), tmp_path / "state",
                      workers=2) as server:
        path = server.service.supervisor.socket_path(wrong)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(path)
            send_frame(sock, {"op": "read", "uid": uid})
            response = recv_frame(sock)
        assert response is not None
        assert response["ok"] is False
        assert response["code"] == "not-owner"
        assert response["owner"] == owner


@e2e
def test_http_edge_validates_uids_and_routes(tmp_path):
    with ServerThread(make_config(), tmp_path / "state",
                      workers=2) as server:
        client = ServiceClient(server.host, server.port)
        status, body = client.read("../escape")
        assert status == 400 and body["code"] == "bad-uid"
        status, body = client.request("/read", {"updates": []})
        assert status == 400 and body["code"] == "bad-uid"
        status, body = client.request("/read", None)
        assert status == 400 and body["code"] == "bad-uid"
        status, body = client.request("/nope", {"uid": "a"})
        assert status == 404 and body["code"] == "not-found"
        status, body = client.request("/update", {"uid": "a"})
        assert status == 400 and body["code"] == "bad-request"
        status, body = client.request("/status", None, method="GET")
        assert status == 200 and body["workers"] == 2
        # arm is refused when test ops are disabled (the default here)
        status, body = client.arm(0, "persistence.pre_fsync=count:1")
        assert status == 403 and body["code"] == "forbidden"
        client.close()


# ---------------------------------------------------------------------------
# e2e: chaos — kill a worker mid-batch, supervisor recovers it
# ---------------------------------------------------------------------------


def _other_uid(ring: HashRing, not_owned_by: int) -> str:
    for index in range(1000):
        uid = f"bystander-{index}"
        if ring.owner(uid) != not_owned_by:
            return uid
    raise AssertionError("no uid avoided the owner")  # pragma: no cover


@e2e
@pytest.mark.parametrize("site", [
    "persistence.pre_fsync",
    "persistence.post_append_pre_apply",
    "service.store.pre_commit_append",
])
def test_killed_worker_recovers_with_no_lost_ack(site, tmp_path):
    """Kill-at-failpoint chaos (the PR 8 restart matrix, but through
    the network): a worker dies mid-batch at an instrumented seam, the
    supervisor restarts it, the shard recovers from snapshot + WAL,
    and the per-shard invariant battery holds — acknowledged updates
    are a prefix of the recovered commit log, the recovered state is
    consistent, and a single-process replay of that log reproduces the
    final bytes exactly.  The other worker's shard is untouched."""
    uid = "tenant-chaos"
    ring = HashRing(range(2))
    owner = ring.owner(uid)
    bystander = _other_uid(ring, owner)
    config = make_config(allow_test_ops=True)
    state_dir = tmp_path / "state"
    with ServerThread(config, state_dir, workers=2) as server:
        client = ServiceClient(server.host, server.port)
        acked: list[str] = []
        rev_doc = _twin_corpus()[1]
        rng = random.Random(4242)
        from repro.datagen import legal_submission
        for _ in range(3):
            update = legal_submission(rev_doc, rng, kind="append")
            status, body = client.update(uid, update)
            assert status == 200 and body["decision"]["applied"], body
            acked.append(canonical_update_text(update))
        status, body = client.update(
            bystander, legal_submission(rev_doc, rng, kind="append"))
        assert status == 200 and body["decision"]["applied"], body

        # arm the kill inside the owning worker, then batch into it
        status, body = client.arm(owner, f"{site}=count:2", kill=True)
        assert status == 200 and body["kill"] is True, body
        batch = [legal_submission(rev_doc, rng, kind="append")
                 for _ in range(4)]
        status, body = client.check_batch(uid, batch)
        assert status == 503, body
        assert body["code"] == "worker-restarted", body
        assert body["restarted"] is True, body

        # the read is retried against the restarted worker, which
        # recovers the shard from its WAL on first touch
        status, body = client.read(uid, with_log=True)
        assert status == 200, body
        log = body["log"]
        # invariant: every acknowledged update survived, in order, as
        # a prefix; un-acked batch work may or may not have been
        # logged before the kill (both are valid crash outcomes)
        assert log[:len(acked)] == acked, (
            f"acked updates lost after {site} kill: {log}")
        assert len(log) <= len(acked) + len(batch)

        # recovered shard passes the consistency check
        status, check = client.check(uid)
        assert status == 200 and check["violations"] == [], check

        # single-process oracle replay of the recovered commit log
        # must land on the exact same bytes the service now serves
        oracle = make_oracle(config)
        for entry in log:
            decision = oracle.try_execute(entry)
            assert decision.applied, (site, entry)
        assert body["documents"] == oracle.snapshot()

        # the bystander shard on the surviving worker is untouched
        status, other = client.read(bystander, with_log=True)
        assert status == 200 and len(other["log"]) == 1, other

        # supervisor accounting: one restart, everyone alive again
        status, stat = client.status()
        assert stat["alive"] == [True, True]
        assert stat["restarts"][str(owner)] == 1
        assert stat["restarts"][str(1 - owner)] == 0
        client.close()
        final_documents = body["documents"]
        final_log = log

    # offline half of the battery: the shard directory recovers
    # deterministically with plain CheckingService.recover, byte- and
    # log-identical to what the live service served
    schema = config.build_schema()
    shard = state_dir / f"shard-{uid}"
    for _ in range(2):
        recovered = CheckingService.recover(schema, shard)
        try:
            assert recovered.snapshot() == final_documents
            assert [canonical_update_text(entry.update)
                    for entry in recovered.committed_updates()] \
                == final_log
            assert recovered.verify_consistency() == []
        finally:
            recovered.close()


@e2e
def test_graceful_shutdown_drains_and_preserves_state(tmp_path):
    """A clean stop drains every worker; reopening the same state
    directory recovers every shard with nothing lost."""
    config = make_config()
    state_dir = tmp_path / "state"
    rev_doc = _twin_corpus()[1]
    rng = random.Random(99)
    from repro.datagen import legal_submission
    sent = {}
    with ServerThread(config, state_dir, workers=2) as server:
        client = ServiceClient(server.host, server.port)
        for uid in ("alpha", "beta", "gamma"):
            update = legal_submission(rev_doc, rng, kind="append")
            status, body = client.update(uid, update)
            assert status == 200 and body["decision"]["applied"]
            sent[uid] = canonical_update_text(update)
        client.close()
    # same state dir, fresh processes: everything committed survives
    with ServerThread(config, state_dir, workers=2) as server:
        client = ServiceClient(server.host, server.port)
        for uid, update in sent.items():
            status, body = client.read(uid, with_log=True)
            assert status == 200, body
            assert body["log"] == [update]
        client.close()
