"""Unit tests for XUpdate parsing, application and analysis."""

import pytest

from repro.datalog import Parameter as P
from repro.errors import (
    ParseError,
    SimplificationError,
    UpdateApplicationError,
    XUpdateError,
)
from repro.datagen.running_example import (
    SECTION_4_1_XUPDATE,
    submission_xupdate,
)
from repro.xtree import parse_document, serialize
from repro.xupdate import (
    InsertOperation,
    RemoveOperation,
    analyze_operation,
    apply_operation,
    apply_text,
    canonical_update_text,
    parse_modifications,
    serialize_operation,
    serialize_operations,
)
from repro.xupdate.analyze import signature_of


class TestParsing:
    def test_insert_after(self):
        operations = parse_modifications(SECTION_4_1_XUPDATE)
        assert len(operations) == 1
        operation = operations[0]
        assert isinstance(operation, InsertOperation)
        assert operation.kind == "after"
        assert operation.select == "/review/track[2]/rev[5]/sub[6]"

    def test_element_constructor_builds_fragment(self):
        operation = parse_modifications(SECTION_4_1_XUPDATE)[0]
        fragment = operation.primary_element()
        assert fragment.tag == "sub"
        assert fragment.first_child("title").text() == "Taming Web Services"
        auts = fragment.first_child("auts")
        assert auts.first_child("name").text() == "Jack"

    def test_xupdate_text_constructor(self):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]">
            <xupdate:element name="rev">
              <xupdate:element name="name">
                <xupdate:text>Zoe</xupdate:text>
              </xupdate:element>
            </xupdate:element>
          </xupdate:append>
        </xupdate:modifications>"""
        operation = parse_modifications(text)[0]
        rev = operation.primary_element()
        assert rev.first_child("name").text() == "Zoe"

    def test_xupdate_attribute_constructor(self):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/r">
            <xupdate:element name="item">
              <xupdate:attribute name="kind">big</xupdate:attribute>
            </xupdate:element>
          </xupdate:append>
        </xupdate:modifications>"""
        operation = parse_modifications(text)[0]
        assert operation.primary_element().attributes == {"kind": "big"}

    def test_remove(self):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:remove select="//sub[1]"/>
        </xupdate:modifications>"""
        operation = parse_modifications(text)[0]
        assert isinstance(operation, RemoveOperation)

    @pytest.mark.parametrize("text", [
        "<wrong/>",
        """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate"/>""",
        """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
           <xupdate:rename select="//a"/>
        </xupdate:modifications>""",
        """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
           <xupdate:insert-after><a/></xupdate:insert-after>
        </xupdate:modifications>""",
        """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
           <xupdate:insert-after select="//a"></xupdate:insert-after>
        </xupdate:modifications>""",
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(XUpdateError):
            parse_modifications(text)


class TestApplication:
    def test_append(self, rev_doc):
        before = len(list(rev_doc.iter_elements("sub")))
        apply_text(rev_doc, submission_xupdate(1, 1, "T", "A"))
        assert len(list(rev_doc.iter_elements("sub"))) == before + 1

    def test_insert_after_position(self, rev_doc):
        update = submission_xupdate(1, 1, "T", "A", kind="after")
        applied = apply_text(rev_doc, update)
        new_sub = applied[0].inserted[0]
        # inserted after sub[1]; name is child 1, sub[1] child 2
        assert new_sub.child_position == 3

    def test_insert_before(self, rev_doc):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:insert-before select="/review/track[1]">
            <track><name>New</name>
              <rev><name>R</name>
                <sub><title>T</title><auts><name>A</name></auts></sub>
              </rev>
            </track>
          </xupdate:insert-before>
        </xupdate:modifications>"""
        apply_text(rev_doc, text)
        first = rev_doc.root.element_children("track")[0]
        assert first.first_child("name").text() == "New"

    def test_remove_and_rollback(self, rev_doc):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:remove select="/review/track[1]/rev[1]/sub[1]"/>
        </xupdate:modifications>"""
        snapshot = serialize(rev_doc)
        applied = apply_text(rev_doc, text)
        assert serialize(rev_doc) != snapshot
        applied[0].rollback()
        assert serialize(rev_doc) == snapshot

    def test_insert_rollback_restores_document(self, rev_doc):
        snapshot = serialize(rev_doc)
        applied = apply_text(rev_doc, submission_xupdate(2, 1, "T", "A"))
        applied[0].rollback()
        assert serialize(rev_doc) == snapshot

    def test_double_rollback_rejected(self, rev_doc):
        applied = apply_text(rev_doc, submission_xupdate(1, 1, "T", "A"))
        applied[0].rollback()
        with pytest.raises(UpdateApplicationError):
            applied[0].rollback()

    def test_unresolvable_select_rejected(self, rev_doc):
        with pytest.raises(UpdateApplicationError):
            apply_text(rev_doc, submission_xupdate(9, 9, "T", "A"))

    def test_content_is_copied_per_application(self, rev_doc):
        update = submission_xupdate(1, 1, "T", "A")
        operation = parse_modifications(update)[0]
        first = apply_operation(rev_doc, operation)
        second = apply_operation(rev_doc, operation)
        assert first.inserted[0] is not second.inserted[0]
        assert first.inserted[0].node_id != second.inserted[0].node_id


class TestAnalysis:
    def test_paper_pattern(self, relational_schema):
        operation = parse_modifications(SECTION_4_1_XUPDATE)[0]
        analyzed = analyze_operation(operation, relational_schema)
        assert str(analyzed.pattern) \
            == "{sub(is,ps,ir,t), auts(ia,pa,is,n)}"
        assert analyzed.pattern.fresh_parameters \
            == frozenset({P("is"), P("ia")})

    def test_paper_delta(self, relational_schema):
        operation = parse_modifications(SECTION_4_1_XUPDATE)[0]
        analyzed = analyze_operation(operation, relational_schema)
        assert sorted(str(d) for d in analyzed.hypotheses) == [
            "← auts(_,_,is,_)",
            "← auts(ia,_,_,_)",
            "← sub(is,_,_,_)",
        ]

    def test_signature_matches_same_shape(self, relational_schema):
        first = parse_modifications(
            submission_xupdate(1, 1, "X", "Y"))[0]
        second = parse_modifications(
            submission_xupdate(3, 7, "Other", "Names"))[0]
        assert signature_of(first, relational_schema) \
            == signature_of(second, relational_schema)

    def test_signature_differs_for_different_shape(self, relational_schema):
        single = parse_modifications(submission_xupdate(1, 1, "X", "Y"))[0]
        double = parse_modifications("""<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]/rev[1]">
            <sub><title>T</title>
              <auts><name>A</name></auts><auts><name>B</name></auts>
            </sub>
          </xupdate:append>
        </xupdate:modifications>""")[0]
        assert signature_of(single, relational_schema) \
            != signature_of(double, relational_schema)

    def test_binding_of_concrete_update(self, relational_schema, rev_doc):
        update = submission_xupdate(1, 2, "My Title", "My Author")
        operation = parse_modifications(update)[0]
        analyzed = analyze_operation(operation, relational_schema)
        bindings = analyzed.bind(rev_doc, operation)
        assert bindings["t"] == "My Title"
        assert bindings["n"] == "My Author"
        grace = bindings["ir"]
        assert grace.first_child("name").text() == "Grace"
        # Grace has name + 1 sub → append position 3
        assert bindings["ps"] == 3
        assert bindings["pa"] == 2

    def test_remove_not_analyzable(self, relational_schema):
        operation = RemoveOperation("//sub[1]")
        with pytest.raises(SimplificationError):
            analyze_operation(operation, relational_schema)

    def test_unknown_fragment_tag_rejected(self, relational_schema):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]/rev[1]">
            <mystery/>
          </xupdate:append>
        </xupdate:modifications>"""
        operation = parse_modifications(text)[0]
        with pytest.raises(XUpdateError):
            analyze_operation(operation, relational_schema)

    def test_two_author_pattern_names_deduped(self, relational_schema):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]/rev[1]">
            <sub><title>T</title>
              <auts><name>A</name></auts><auts><name>B</name></auts>
            </sub>
          </xupdate:append>
        </xupdate:modifications>"""
        operation = parse_modifications(text)[0]
        analyzed = analyze_operation(operation, relational_schema)
        auts_atoms = analyzed.pattern.additions_for("auts")
        assert len(auts_atoms) == 2
        names = {atom.args[3] for atom in auts_atoms}
        assert len(names) == 2  # distinct value parameters


class TestSerialization:
    """Canonical operation serialization (the WAL/commit-log form)."""

    def test_round_trips_through_parser(self):
        for text in (SECTION_4_1_XUPDATE,
                     submission_xupdate(2, 1, "Round Trip", "Zoe")):
            original = parse_modifications(text)[0]
            reparsed = parse_modifications(
                serialize_operation(original))[0]
            assert isinstance(reparsed, type(original))
            assert reparsed.kind == original.kind
            assert reparsed.select == original.select

    def test_round_trip_applies_identically(self, rev_doc):
        twin = parse_document(serialize(rev_doc))
        operation = parse_modifications(SECTION_4_1_XUPDATE)[0]
        # retarget the paper's select to a node this corpus has
        operation = InsertOperation(
            "append", "/review/track[1]/rev[1]", operation.content)
        reparsed = parse_modifications(
            serialize_operation(operation))[0]
        apply_operation(rev_doc, operation)
        apply_operation(twin, reparsed)
        assert serialize(rev_doc) == serialize(twin)

    def test_remove_and_multi_operation_documents(self):
        operations = [
            RemoveOperation("/review/track[1]/rev[1]/sub[1]"),
            parse_modifications(
                submission_xupdate(1, 2, "Second", "Ann"))[0],
        ]
        reparsed = parse_modifications(
            serialize_operations(operations))
        assert isinstance(reparsed[0], RemoveOperation)
        assert reparsed[0].select == operations[0].select
        assert isinstance(reparsed[1], InsertOperation)

    def test_select_attribute_is_escaped(self):
        operation = RemoveOperation('/review/track[name="A&B<C"]')
        reparsed = parse_modifications(
            serialize_operation(operation))[0]
        assert reparsed.select == operation.select

    def test_empty_sequence_rejected(self):
        with pytest.raises(XUpdateError):
            serialize_operations([])

    def test_canonical_text_is_not_the_dataclass_repr(self):
        operation = parse_modifications(
            submission_xupdate(1, 1, "Canonical", "Form"))[0]
        canonical = canonical_update_text(operation)
        assert canonical != str(operation)  # repr is not parseable
        assert parse_modifications(canonical)
        with pytest.raises(ParseError):
            parse_modifications(str(operation))

    def test_canonical_text_passes_strings_through(self):
        text = submission_xupdate(1, 1, "Verbatim", "Text")
        assert canonical_update_text(text) is text
