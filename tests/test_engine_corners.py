"""Corner-case tests across the engine and the update analysis,
exercising schema shapes the running example does not have (attributes,
element text columns, optional children)."""

import pytest

from repro.core import ConstraintSchema, IntegrityGuard
from repro.relational import RelationalSchema, shred
from repro.xquery import evaluate_query
from repro.xquery.engine import query_truth
from repro.xtree import parse_document, parse_dtd
from repro.xupdate import analyze_operation, parse_modifications

LOG_DTD = """
<!ELEMENT log (entry*)>
<!ELEMENT entry (#PCDATA)>
<!ATTLIST entry level CDATA #REQUIRED
                code  CDATA #IMPLIED>
"""


@pytest.fixture()
def log_schema():
    return RelationalSchema.from_dtd(parse_dtd(LOG_DTD))


@pytest.fixture()
def log_doc():
    return parse_document(
        '<log>'
        '<entry level="info" code="1">started</entry>'
        '<entry level="error">boom</entry>'
        '<entry level="info">done</entry>'
        '</log>')


class TestAttributeAndTextColumns:
    def test_shred_attributes_and_text(self, log_schema, log_doc):
        db = shred(log_doc, log_schema)
        rows = db.rows("entry")
        assert len(rows) == 3
        predicate = log_schema.predicate_for("entry")
        level = predicate.attribute_index("level")
        code = predicate.attribute_index("code")
        text = predicate.text_index()
        assert {row[level] for row in rows} == {"info", "error"}
        assert sorted(str(row[code]) for row in rows) \
            == ["1", "None", "None"]
        assert {row[text] for row in rows} == {"started", "boom", "done"}

    def test_attribute_constraint_compiles_and_evaluates(self, log_doc):
        schema = ConstraintSchema(
            [LOG_DTD],
            ['<- //entry[@level = "error"]/@code -> C /\\ C = "1"'],
            names=["no_coded_errors"])
        query = schema.constraints[0].full_queries[0]
        assert "@level" in query.text and "@code" in query.text
        assert not query_truth(query.text, log_doc)
        bad = parse_document(
            '<log><entry level="error" code="1">x</entry></log>')
        assert query_truth(query.text, bad)

    def test_text_column_constraint(self, log_doc):
        schema = ConstraintSchema(
            [LOG_DTD],
            ['<- //entry/text() -> T /\\ T = "forbidden"'],
            names=["no_forbidden"])
        query = schema.constraints[0].full_queries[0]
        assert not query_truth(query.text, log_doc)

    def test_pattern_with_attributes(self, log_schema):
        update = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/log">
            <entry level="warn" code="7">careful</entry>
          </xupdate:append>
        </xupdate:modifications>"""
        operation = parse_modifications(update)[0]
        analyzed = analyze_operation(operation, log_schema)
        atom = analyzed.pattern.additions[0]
        # columns: id, pos, parent, code, level, text — all but id and
        # parent are bindable parameters
        bindable = set(analyzed.binding_specs)
        assert len(atom.args) == 6
        assert len(bindable) >= 4

    def test_guard_on_attribute_schema(self, log_doc):
        schema = ConstraintSchema(
            [LOG_DTD],
            ['<- //entry[@level = "error"]/@code -> C /\\ C = "1"'],
            names=["no_coded_errors"])
        update = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/log">
            <entry level="error" code="1">bad</entry>
          </xupdate:append>
        </xupdate:modifications>"""
        schema.register_pattern(update)
        guard = IntegrityGuard(schema, [log_doc])
        decision = guard.try_execute(update)
        assert not decision.legal and decision.optimized
        ok = update.replace('code="1"', 'code="2"')
        assert guard.try_execute(ok).legal


class TestEngineEdgeCases:
    def test_attribute_axis_in_query(self, log_doc):
        values = evaluate_query('//entry[@level = "error"]/@code',
                                log_doc)
        assert values == []
        values = evaluate_query('//entry/@level', log_doc)
        assert sorted(str(v) for v in values) \
            == ["error", "info", "info"]

    def test_attribute_wildcard(self, log_doc):
        values = evaluate_query("//entry[1]/@*", log_doc)
        assert sorted(str(v) for v in values) == ["1", "info"]

    def test_predicate_over_attribute_numeric(self, log_doc):
        assert query_truth("//entry[@code = 1]", log_doc)
        assert not query_truth("//entry[@code = 9]", log_doc)

    def test_descendant_from_variable(self, log_doc):
        roots = evaluate_query("/log", log_doc)
        entries = evaluate_query("$r//entry", log_doc, {"r": roots})
        assert len(entries) == 3

    def test_nested_flwor(self, log_doc):
        result = evaluate_query(
            "for $l in distinct-values(//entry/@level) "
            "return count(//entry[@level = $l])", log_doc)
        assert sorted(result) == [1, 2]

    def test_where_before_let(self, log_doc):
        result = evaluate_query(
            "for $e in //entry where $e/@level = 'info' "
            "let $t := $e/text() return $t", log_doc)
        assert [str(v.value) for v in result] == ["started", "done"]

    def test_quantifier_over_attributes(self, log_doc):
        assert query_truth(
            "every $e in //entry satisfies exists($e/@level)", log_doc)
        assert not query_truth(
            "every $e in //entry satisfies exists($e/@code)", log_doc)

    def test_union_across_documents(self, log_doc):
        other = parse_document("<log><entry level='x'>z</entry></log>")
        assert evaluate_query("count((//entry | //entry))",
                              [log_doc, other]) == [4]
