"""Unit tests for the DOM node model."""

import pytest

from repro.xtree.node import Document, Element, Text


def build_tree():
    root = Element("review")
    track = Element("track")
    name = Element("name", children=[Text("DB")])
    rev = Element("rev")
    track.append(name)
    track.append(rev)
    root.append(track)
    return Document(root), root, track, name, rev


class TestIdentity:
    def test_ids_assigned_on_document_creation(self):
        document, root, track, name, rev = build_tree()
        ids = [root.node_id, track.node_id, name.node_id, rev.node_id]
        assert all(isinstance(i, int) for i in ids)
        assert len(set(ids)) == 4

    def test_ids_are_preorder(self):
        document, root, track, name, rev = build_tree()
        assert root.node_id < track.node_id < name.node_id < rev.node_id

    def test_node_lookup_by_id(self):
        document, root, track, *_ = build_tree()
        assert document.node_by_id(track.node_id) is track

    def test_new_nodes_get_fresh_ids(self):
        document, root, track, name, rev = build_tree()
        highest = max(n.node_id for n in root.iter()
                      if isinstance(n, Element))
        extra = Element("rev")
        track.append(extra)
        assert extra.node_id > highest

    def test_removed_subtree_keeps_ids_but_leaves_index(self):
        document, root, track, name, rev = build_tree()
        rev_id = rev.node_id
        track.remove(rev)
        assert rev.node_id == rev_id
        assert document.node_by_id(rev_id) is None

    def test_reinsert_restores_identity(self):
        document, root, track, name, rev = build_tree()
        rev_id = rev.node_id
        track.remove(rev)
        track.append(rev)
        assert rev.node_id == rev_id
        assert document.node_by_id(rev_id) is rev

    def test_ids_never_reused_after_removal(self):
        document, root, track, name, rev = build_tree()
        removed_id = rev.node_id
        track.remove(rev)
        replacement = Element("rev")
        track.append(replacement)
        assert replacement.node_id != removed_id


class TestStructure:
    def test_child_position_counts_all_element_siblings(self):
        document, root, track, name, rev = build_tree()
        assert name.child_position == 1
        assert rev.child_position == 2

    def test_child_position_of_root(self):
        document, root, *_ = build_tree()
        assert root.child_position == 1

    def test_text_nodes_have_no_position(self):
        text = Text("x")
        parent = Element("p", children=[text])
        with pytest.raises(TypeError):
            _ = text.child_position

    def test_sibling_position_counts_same_tag_only(self):
        parent = Element("track")
        parent.append(Element("name"))
        first = parent.append(Element("rev"))
        second = parent.append(Element("rev"))
        assert first.sibling_position == 1
        assert second.sibling_position == 2
        assert second.child_position == 3

    def test_insert_after_and_before(self):
        parent = Element("rev")
        a = parent.append(Element("sub"))
        c = parent.append(Element("sub"))
        b = Element("sub")
        parent.insert_after(a, b)
        assert parent.children == [a, b, c]
        z = Element("sub")
        parent.insert_before(a, z)
        assert parent.children == [z, a, b, c]

    def test_cannot_insert_attached_node(self):
        parent = Element("rev")
        child = parent.append(Element("sub"))
        other = Element("rev")
        with pytest.raises(ValueError):
            other.append(child)

    def test_remove_non_child_raises(self):
        parent = Element("rev")
        with pytest.raises(ValueError):
            parent.remove(Element("sub"))

    def test_ancestors(self):
        document, root, track, name, rev = build_tree()
        assert list(rev.ancestors()) == [track, root]

    def test_root(self):
        document, root, track, name, rev = build_tree()
        assert rev.root() is root
        assert root.root() is root


class TestContent:
    def test_text_concatenates_direct_text_children(self):
        element = Element("name",
                          children=[Text("Ada "), Text("Lovelace")])
        assert element.text() == "Ada Lovelace"

    def test_text_ignores_descendant_text(self):
        inner = Element("name", children=[Text("x")])
        outer = Element("aut", children=[inner])
        assert outer.text() == ""
        assert outer.string_value() == "x"

    def test_first_child(self):
        parent = Element("rev")
        name = parent.append(Element("name"))
        parent.append(Element("sub"))
        assert parent.first_child("name") is name
        assert parent.first_child("missing") is None

    def test_element_children_filter(self):
        parent = Element("rev")
        parent.append(Text("ws"))
        name = parent.append(Element("name"))
        sub = parent.append(Element("sub"))
        assert parent.element_children() == [name, sub]
        assert parent.element_children("sub") == [sub]

    def test_iter_elements_preorder(self):
        document, root, track, name, rev = build_tree()
        tags = [e.tag for e in root.iter_elements()]
        assert tags == ["review", "track", "name", "rev"]


class TestLocationPath:
    def test_singleton_children_have_no_index(self):
        document, root, track, name, rev = build_tree()
        assert rev.location_path() == "/review/track/rev"

    def test_indexes_appear_with_same_tag_siblings(self):
        document, root, track, name, rev = build_tree()
        second = Element("rev")
        track.append(second)
        assert rev.location_path() == "/review/track/rev[1]"
        assert second.location_path() == "/review/track/rev[2]"

    def test_location_path_of_text_raises(self):
        text = Text("x")
        Element("p", children=[text])
        with pytest.raises(TypeError):
            text.location_path()


class TestDocument:
    def test_root_must_be_detached(self):
        parent = Element("a")
        child = parent.append(Element("b"))
        with pytest.raises(ValueError):
            Document(child)

    def test_allocate_id_monotonic(self):
        document, *_ = build_tree()
        first = document.allocate_id()
        second = document.allocate_id()
        assert second == first + 1
