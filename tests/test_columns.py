"""Columnar relation storage: units and maintenance differentials.

Covers the two layers of the columnar backend separately from query
evaluation (:mod:`tests.test_columnar` owns the verdict
differentials):

* :class:`~repro.relational.columns.TagTable` /
  :class:`~repro.relational.columns.PathIndex` row/key maintenance
  (swap-remove, position refresh, rekeying) and the
  :func:`~repro.relational.columns.chain_reaches` reachability filter;
* :class:`~repro.relational.incremental.ColumnStore` delta
  maintenance under a seeded mixed update workload (the faultcheck
  harness's step vocabulary), asserting after every step that the
  incrementally-patched columns equal a cold re-shred of the live
  documents;
* the write-ahead invalidation protocol: an injected fault inside the
  delta leaves the store dirty and the next read self-heals with a
  full rebuild;
* numpy/stdlib parity for grouping and array snapshots.
"""

from __future__ import annotations

import random

import pytest

from repro.core.guard import IntegrityGuard
from repro.datagen.running_example import make_schema
from repro.relational.columns import (
    PathIndex,
    TagTable,
    chain_reaches,
    numpy_active,
    stdlib_only,
)
from repro.relational.incremental import attach, detach, store_of
from repro.relational.shredder import iter_facts
from repro.testing import harness
from repro.testing.failpoints import fail
from repro.xquery.optimizer import hash_keys
from repro.xtree.node import Document, Element, Text
from repro.xtree.parser import parse_document

NAME_TEXT = (("child", "name"), ("child", "text()"))

PUB_XML = """<dblp>
 <pub><title>Duckburg tales</title>
   <aut><name>Alice</name></aut><aut><name>Bob</name></aut></pub>
 <pub><title>Mouseton stories</title>
   <aut><name>Carol</name></aut></pub>
</dblp>"""

REV_XML = """<review>
 <track><name>Theory</name>
  <rev><name>Alice</name>
   <sub><title>Streams</title><auts><name>Erin</name></auts></sub>
  </rev>
 </track>
</review>"""


def _text_el(tag: str, value: str) -> Element:
    element = Element(tag)
    element.append(Text(value))
    return element


@pytest.fixture
def schema():
    return make_schema()


@pytest.fixture
def documents(schema):
    pub = parse_document(PUB_XML)
    rev = parse_document(REV_XML)
    # attaching through the guard is the production path
    IntegrityGuard(schema, [pub, rev])
    return pub, rev


class TestChainReaches:
    def test_direct_child_mutation_always_reaches(self):
        assert chain_reaches(NAME_TEXT, ())

    def test_chain_spelled_by_steps_reaches(self):
        assert chain_reaches(NAME_TEXT, ("name",))

    def test_chain_diverging_from_steps_is_skipped(self):
        assert not chain_reaches(NAME_TEXT, ("sub",))

    def test_chain_deeper_than_steps_is_skipped(self):
        # mutation below name/text() depth cannot change the atoms
        assert not chain_reaches(NAME_TEXT, ("name", "text()"))
        assert not chain_reaches(NAME_TEXT, ("name", "x", "y"))

    def test_attribute_steps_never_match_an_element_chain(self):
        steps = (("attribute", "year"),)
        assert chain_reaches(steps, ())
        assert not chain_reaches(steps, ("year",))


class TestTagTable:
    def _table(self, document: Document, schema, tag: str) -> TagTable:
        store = store_of(document)
        assert store is not None
        return store.table(tag)

    def test_rows_match_cold_shred(self, documents, schema):
        pub, _rev = documents
        table = self._table(pub, schema, "pub")
        shredded = sorted(row for fact_tag, row in
                          iter_facts(pub, schema.relational)
                          if fact_tag == "pub")
        assert sorted(table.rows()) == shredded

    def test_swap_remove_keeps_row_map_consistent(self, documents,
                                                  schema):
        pub, _rev = documents
        table = self._table(pub, schema, "aut")
        elements = list(table.elements)
        assert len(elements) == 3
        # discard a *middle* row: the last row must swap in
        victim = table.elements[0]
        table.discard(victim)
        assert len(table) == 2
        for row, element in enumerate(table.elements):
            assert table.row_of[element.node_id] == row
            assert table.ids[row] == element.node_id
        # discarding again is a no-op
        version = table.version
        table.discard(victim)
        assert table.version == version

    def test_append_is_idempotent(self, documents, schema):
        pub, _rev = documents
        table = self._table(pub, schema, "pub")
        version = table.version
        table.append(table.elements[0])
        assert table.version == version

    def test_mutation_refreshes_positions(self, documents, schema):
        pub, _rev = documents
        table = self._table(pub, schema, "pub")
        first = pub.root.children[0]
        pub.root.remove(first)
        # the store listener repositions the remaining siblings
        rows = {element: table.pos[table.row_of[element.node_id]]
                for element in table.elements}
        for element, position in rows.items():
            assert position == element.child_position

    def test_value_columns_follow_text_mutations(self, documents,
                                                 schema):
        _pub, rev = documents
        store = store_of(rev)
        assert store is not None
        table = store.table("rev")
        rev_el = table.elements[0]
        name = rev_el.first_child("name")
        assert name is not None
        old_text = name.children[0]
        name.remove(old_text)
        name.append(Text("Zoé"))
        row = table.row_of[rev_el.node_id]
        assert table.values["name"][row] == "Zoé"
        assert store.verify() == []


class TestPathIndex:
    def test_probe_roundtrip(self, documents, schema):
        _pub, rev = documents
        store = store_of(rev)
        assert store is not None
        index = store.value_index("rev", NAME_TEXT)
        (key,) = hash_keys("Alice")
        assert [el.tag for el in index.probe(key)] == ["rev"]
        assert index.probe(hash_keys("Nobody")[0]) == []

    def test_rekey_moves_buckets(self, documents, schema):
        _pub, rev = documents
        store = store_of(rev)
        assert store is not None
        index = store.value_index("rev", NAME_TEXT)
        rev_el = rev.elements_by_tag("rev")[0]
        name = rev_el.first_child("name")
        assert name is not None
        name.remove(name.children[0])
        name.append(Text("Brianna"))
        # the mutation listener rekeys through chain_reaches
        (old_key,) = hash_keys("Alice")
        (new_key,) = hash_keys("Brianna")
        assert index.probe(old_key) == []
        assert index.probe(new_key) == [rev_el]
        assert store.verify() == []

    def test_discard_unbuckets(self):
        index = PathIndex("aut", NAME_TEXT)
        aut = Element("aut")
        aut.append(_text_el("name", "Ann"))
        Document(Element("root")).root.append(aut)  # assign node ids
        index.add(aut)
        (key,) = hash_keys("Ann")
        assert index.probe(key) == [aut]
        index.discard(aut)
        assert index.probe(key) == []
        assert len(index) == 0


class TestWorkloadDifferential:
    """Satellite: incrementally-maintained columns equal a cold
    re-shred after every accepted update of a seeded mixed workload
    (the faultcheck harness's step vocabulary, fault-free)."""

    @pytest.mark.parametrize("seed", [11, 29])
    def test_columns_track_mixed_workload(self, seed):
        pub_doc, rev_doc = harness._fresh_corpus(seed)
        _, twin_rev = harness._fresh_corpus(seed)
        schema = make_schema()
        guard = IntegrityGuard(schema, [pub_doc, rev_doc])
        # materialize the structures the planner would use, plus one
        # table per document, so the workload exercises real deltas
        for document in (pub_doc, rev_doc):
            store = store_of(document)
            assert store is not None
            store.table(document.root.tag)
        rng = random.Random(seed)
        accepted = 0
        for kind in harness._weighted_kinds(rng, 24):
            step = harness._make_step(kind, twin_rev, rng)
            if step is None:
                guard.verify_consistency()
            elif isinstance(step, list):
                decisions = guard.check_batch(step)
                accepted += sum(d.applied for d in decisions)
            else:
                try:
                    decision = guard.try_execute(step)
                except Exception:
                    decision = None  # bad-select style steps
                if decision is not None and decision.applied:
                    accepted += 1
            for document in (pub_doc, rev_doc):
                store = store_of(document)
                assert store is not None
                assert store.verify() == [], (seed, kind)
        assert accepted > 0  # the workload really mutated state

    def test_workload_without_numpy_matches(self):
        with stdlib_only():
            self.test_columns_track_mixed_workload(17)


class TestCrashConsistency:
    def test_delta_fault_leaves_dirty_then_self_heals(self, documents):
        _pub, rev = documents
        store = store_of(rev)
        assert store is not None
        store.table("rev")
        failures = store.delta_failures
        rebuilds = store.rebuilds
        with fail.armed({"columns.delta.apply": "count:1"}) as armed:
            rev.elements_by_tag("track")[0].append(
                _text_el("name", "Ghost"))
            armed.assert_fired("columns.delta.apply")
        assert store.delta_failures == failures + 1
        assert store.dirty
        # the next read rebuilds from the DOM and is consistent again
        table = store.table("rev")
        assert store.rebuilds == rebuilds + 1
        assert not store.dirty
        assert len(table) == len(rev.elements_by_tag("rev"))
        assert store.verify() == []

    def test_fault_in_rebuild_keeps_store_dirty(self, documents):
        _pub, rev = documents
        store = store_of(rev)
        assert store is not None
        store.table("rev")
        with fail.armed({"columns.delta.settle": "count:1",
                         "columns.rebuild": "count:1"}) as armed:
            rev.elements_by_tag("track")[0].append(
                _text_el("name", "Ghost"))
            with pytest.raises(Exception):
                store.table("rev")  # rebuild itself crashes
            armed.assert_fired("columns.delta.settle",
                               "columns.rebuild")
        assert store.dirty  # swap never happened
        store.table("rev")  # second read succeeds
        assert store.verify() == []

    def test_unmaterialized_store_stays_trivially_synced(self):
        document = parse_document("<zoo><animal/></zoo>")
        store = attach(document)
        document.root.append(Element("animal"))
        assert not store.dirty
        assert store.rebuilds == 0


class TestAttachDetach:
    def test_attach_reuses_equivalent_store(self, documents, schema):
        pub, _rev = documents
        store = store_of(pub)
        assert attach(pub, schema.relational) is store
        assert attach(pub) is store  # schema-less reuse

    def test_detach_stops_maintenance(self, documents, schema):
        pub, _rev = documents
        store = store_of(pub)
        assert store is not None
        table = store.table("pub")
        count = len(table)
        detach(pub)
        assert store_of(pub) is None
        pub.root.append(Element("pub"))
        assert len(table) == count  # listener removed


class TestNumpyParity:
    def _grouped_table(self, documents) -> TagTable:
        pub, _rev = documents
        store = store_of(pub)
        assert store is not None
        return store.table("aut")

    def test_children_groups_paths_agree(self, documents):
        table = self._grouped_table(documents)
        fast = table.children_groups()
        table._groups = None
        table._groups_version = -1
        with stdlib_only():
            slow = table.children_groups()
        assert fast == slow

    def test_structural_view_is_a_safe_copy(self, documents):
        if not numpy_active():
            pytest.skip("numpy unavailable")
        table = self._grouped_table(documents)
        view = table.structural_view("ids")
        assert view.tolist() == list(table.ids)
        view[0] = -1
        assert table.ids[0] != -1  # a copy, not a buffer view
        # deltas must not raise BufferError with a view outstanding
        table.append(_make_orphan_aut())
        assert table.structural_view("ids").tolist() == list(table.ids)

    def test_stdlib_only_masks_numpy(self):
        with stdlib_only():
            assert not numpy_active()


def _make_orphan_aut() -> Element:
    aut = Element("aut")
    aut.append(_text_el("name", "Extra"))
    Document(Element("root")).root.append(aut)
    return aut
