"""Tests for guard listeners and violation witnesses."""

import pytest

from repro.core import BruteForceChecker, DatalogChecker, IntegrityGuard
from repro.datagen.running_example import submission_xupdate


class TestListeners:
    def test_guard_notifies_on_accept_and_reject(self, constraint_schema,
                                                 documents):
        guard = IntegrityGuard(constraint_schema, documents)
        events = []
        guard.subscribe(lambda update, decision:
                        events.append(decision.legal))
        guard.try_execute(submission_xupdate(1, 1, "Ok", "Someone"))
        guard.try_execute(submission_xupdate(1, 1, "Bad", "Alice"))
        assert events == [True, False]

    def test_brute_force_notifies(self, constraint_schema, documents):
        checker = BruteForceChecker(constraint_schema, documents)
        events = []
        checker.subscribe(lambda update, decision:
                          events.append(decision.rolled_back))
        checker.try_execute(submission_xupdate(1, 1, "Bad", "Alice"))
        assert events == [True]

    def test_multiple_listeners_in_order(self, constraint_schema,
                                         documents):
        guard = IntegrityGuard(constraint_schema, documents)
        order = []
        guard.subscribe(lambda *_: order.append("first"))
        guard.subscribe(lambda *_: order.append("second"))
        guard.try_execute(submission_xupdate(1, 1, "Ok", "Someone"))
        assert order == ["first", "second"]


class TestViolationWitnesses:
    def test_consistent_state_has_no_witnesses(self, constraint_schema,
                                               documents):
        checker = DatalogChecker(constraint_schema, documents)
        assert checker.violation_witnesses() == {}

    def test_witness_names_the_conflict(self, constraint_schema,
                                        documents):
        from repro.xupdate import apply_text
        applied = apply_text(documents[1],
                             submission_xupdate(1, 1, "Bad", "Alice"))
        checker = DatalogChecker(constraint_schema, documents)
        checker.mirror_insert(applied[0].inserted[0])
        witnesses = checker.violation_witnesses()
        assert "conflict_of_interest" in witnesses
        first = witnesses["conflict_of_interest"][0]
        assert first.get("R") == "Alice"

    def test_limit_respected(self, constraint_schema, documents):
        from repro.xupdate import apply_text
        for _ in range(3):
            applied = apply_text(
                documents[1], submission_xupdate(1, 1, "Bad", "Alice"))
        checker = DatalogChecker(constraint_schema, documents)
        witnesses = checker.violation_witnesses(limit_per_constraint=2)
        assert len(witnesses["conflict_of_interest"]) <= 2

    def test_witnesses_drop_internal_variables(self, constraint_schema,
                                               documents):
        from repro.xupdate import apply_text
        apply_text(documents[1], submission_xupdate(1, 1, "Bad", "Alice"))
        checker = DatalogChecker(constraint_schema, documents)
        for witness_list in checker.violation_witnesses().values():
            for witness in witness_list:
                assert all("#" not in name and not name.startswith("_")
                           for name in witness)
