"""Unit tests for XML serialization."""

from repro.xtree import parse_document, serialize, serialize_fragment
from repro.xtree.node import Element, Text


class TestSerialize:
    def test_compact_output(self):
        document = parse_document("<a><b>x</b><c/></a>")
        text = serialize(document, declaration=False)
        assert text == "<a><b>x</b><c/></a>"

    def test_declaration_prepended(self):
        document = parse_document("<a/>")
        assert serialize(document).startswith("<?xml")

    def test_escaping_text(self):
        root = Element("a", children=[Text("<&>")])
        from repro.xtree.node import Document
        text = serialize(Document(root), declaration=False)
        assert text == "<a>&lt;&amp;&gt;</a>"

    def test_escaping_attributes(self):
        from repro.xtree.node import Document
        root = Element("a", {"x": 'va"l&'})
        text = serialize(Document(root), declaration=False)
        assert 'x="va&quot;l&amp;"' in text

    def test_pretty_print_keeps_text_elements_inline(self):
        document = parse_document("<a><b>hello</b><c><d>x</d></c></a>")
        pretty = serialize(document, indent=2, declaration=False)
        assert "<b>hello</b>" in pretty
        assert pretty.count("\n") >= 3

    def test_round_trip_compact(self):
        source = "<a><b>x &amp; y</b><c k=\"v\"/></a>"
        document = parse_document(source)
        assert serialize(document, declaration=False) == source

    def test_round_trip_pretty(self):
        source = "<a><b>x</b><c><d>deep</d></c></a>"
        document = parse_document(source)
        pretty = serialize(document, indent=2)
        reparsed = parse_document(pretty)
        assert serialize(reparsed, declaration=False) == source


class TestSerializeFragment:
    def test_detached_element(self):
        element = Element("sub")
        element.append(Element("title", children=[Text("T")]))
        assert serialize_fragment(element) == "<sub><title>T</title></sub>"

    def test_text_node(self):
        assert serialize_fragment(Text("a<b")) == "a&lt;b"
