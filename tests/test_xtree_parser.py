"""Unit tests for the XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xtree import parse_document, parse_fragment
from repro.xtree.node import Element, Text


class TestBasicParsing:
    def test_single_element(self):
        document = parse_document("<a/>")
        assert document.root.tag == "a"
        assert document.root.children == []

    def test_nested_elements(self):
        document = parse_document("<a><b><c/></b></a>")
        tags = [e.tag for e in document.root.iter_elements()]
        assert tags == ["a", "b", "c"]

    def test_text_content(self):
        document = parse_document("<a>hello</a>")
        assert document.root.text() == "hello"

    def test_attributes(self):
        document = parse_document('<a x="1" y=\'two\'/>')
        assert document.root.attributes == {"x": "1", "y": "two"}

    def test_xml_declaration_and_comments(self):
        document = parse_document(
            "<?xml version='1.0'?><!-- hi --><a><!-- inner -->x</a>")
        assert document.root.text() == "x"

    def test_doctype_skipped(self):
        document = parse_document(
            "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>t</a>")
        assert document.root.text() == "t"

    def test_processing_instruction_skipped(self):
        document = parse_document("<a><?php echo ?>x</a>")
        assert document.root.text() == "x"

    def test_cdata(self):
        document = parse_document("<a><![CDATA[<not<parsed&]]></a>")
        assert document.root.text() == "<not<parsed&"

    def test_qualified_names(self):
        document = parse_document(
            "<xupdate:modifications><xupdate:element name='sub'/>"
            "</xupdate:modifications>")
        assert document.root.tag == "xupdate:modifications"
        assert document.root.children[0].tag == "xupdate:element"


class TestEntities:
    def test_predefined_entities(self):
        document = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert document.root.text() == "<>&'\""

    def test_numeric_entities(self):
        document = parse_document("<a>&#65;&#x42;</a>")
        assert document.root.text() == "AB"

    def test_entities_in_attributes(self):
        document = parse_document('<a x="&amp;&lt;"/>')
        assert document.root.attributes["x"] == "&<"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&nope;</a>")


class TestWhitespace:
    def test_whitespace_between_elements_dropped(self):
        document = parse_document("<a>\n  <b/>\n  <c/>\n</a>")
        assert all(isinstance(child, Element)
                   for child in document.root.children)

    def test_significant_text_kept(self):
        document = parse_document("<a> x </a>")
        assert document.root.text() == " x "

    def test_keep_whitespace_option(self):
        document = parse_document("<a> <b/> </a>", keep_whitespace=True)
        kinds = [type(child) for child in document.root.children]
        assert kinds == [Text, Element, Text]


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",
        "<a>",
        "<a></b>",
        "<a",
        "<a x=1/>",
        '<a x="1" x="2"/>',
        "<a/><b/>",
        "text only",
        "<a><!-- unterminated</a>",
        "<a>&#x;</a>",
    ])
    def test_malformed_documents_raise(self, text):
        with pytest.raises((XMLParseError, ValueError)):
            parse_document(text)

    def test_error_carries_location(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a>\n<b></c></a>")
        assert info.value.line == 2


class TestFragments:
    def test_fragment_returns_detached_nodes(self):
        nodes = parse_fragment("<sub><title>T</title></sub>")
        assert len(nodes) == 1
        assert nodes[0].parent is None
        assert nodes[0].node_id is None

    def test_fragment_multiple_top_level(self):
        nodes = parse_fragment("<a/>text<b/>")
        assert [getattr(n, "tag", "#text") for n in nodes] \
            == ["a", "#text", "b"]

    def test_fragment_rejects_stray_end_tag(self):
        with pytest.raises(XMLParseError):
            parse_fragment("</a>")


class TestRoundTrip:
    def test_structure_survives_reparse(self):
        from repro.xtree import serialize
        source = ('<review><track><name>DB &amp; IR</name>'
                   '<rev><name>A</name><sub><title>T1</title>'
                   '<auts><name>B</name></auts></sub></rev>'
                   '</track></review>')
        document = parse_document(source)
        again = parse_document(serialize(document))
        assert [e.tag for e in again.root.iter_elements()] \
            == [e.tag for e in document.root.iter_elements()]
        assert next(again.iter_elements("name")).text() == "DB & IR"
