"""Durability tests: WAL, snapshots, crash-restart recovery.

The unit layer exercises :mod:`repro.service.persistence` directly
(record scanning, torn-tail truncation, atomic snapshot install); the
service layer drives :meth:`CheckingService.open_durable` /
:meth:`~CheckingService.recover` through real crashes simulated with
the failpoint harness.  The property test sweeps crash points: for
any fault site and firing count, recovery must land on a state byte-
identical to a sequential oracle replay of the recovered commit log.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import make_schema
from repro.datagen.running_example import submission_xupdate
from repro.datagen.workload import illegal_submission, legal_submission
from repro.errors import RecoveryError
from repro.service import (
    CheckingService,
    DocumentStore,
    DurableLog,
    load_snapshot,
    write_snapshot,
)
from repro.service.persistence import (
    SNAPSHOT_NAME,
    WAL_NAME,
    _encode,
)
from repro.testing.failpoints import FailPointError, fail
from repro.testing.harness import (
    RESTART_SITES,
    run_restart_scenario,
)
from repro.xtree import parse_document
from repro.xupdate import canonical_update_text, parse_modifications
from tests.conftest import REV_XML


class TestDurableLog:
    def test_append_and_reopen_round_trip(self, tmp_path):
        path = tmp_path / WAL_NAME
        log = DurableLog(path)
        texts = [submission_xupdate(1, 1, f"T{i}", f"A{i}")
                 for i in range(3)]
        assert [log.append(text) for text in texts] == [0, 1, 2]
        assert log.next_seq == 3
        log.close()
        reopened = DurableLog(path)
        assert [(r.seq, r.text) for r in reopened.records()] \
            == list(enumerate(texts))
        assert reopened.next_seq == 3
        reopened.close()

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / WAL_NAME
        log = DurableLog(path)
        log.append(submission_xupdate(1, 1, "Kept", "A"))
        log.close()
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(_encode(1, "half a record")[:10])
        reopened = DurableLog(path)
        assert len(reopened.records()) == 1
        assert reopened.next_seq == 1
        reopened.close()
        assert path.stat().st_size == intact_size

    def test_corrupt_crc_truncates_from_that_record(self, tmp_path):
        path = tmp_path / WAL_NAME
        log = DurableLog(path)
        log.append(submission_xupdate(1, 1, "First", "A"))
        end_of_first = path.stat().st_size
        log.append(submission_xupdate(1, 2, "Second", "B"))
        log.close()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(blob))
        reopened = DurableLog(path)
        assert [r.seq for r in reopened.records()] == [0]
        reopened.close()
        assert path.stat().st_size == end_of_first

    def test_sequence_discontinuity_is_corruption(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(_encode(0, "a") + _encode(2, "b"))
        with pytest.raises(RecoveryError, match="discontinuous"):
            DurableLog(path)

    def test_nonzero_first_sequence_is_corruption(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(_encode(5, "a"))
        with pytest.raises(RecoveryError, match="sequence 0"):
            DurableLog(path)

    def test_truncate_to_seq_rolls_back_appends(self, tmp_path):
        log = DurableLog(tmp_path / WAL_NAME)
        for i in range(3):
            log.append(f"text {i}")
        log.truncate_to_seq(1)
        assert [r.seq for r in log.records()] == [0]
        assert log.next_seq == 1
        assert log.append("replacement") == 1
        log.close()

    def test_crashed_log_refuses_everything(self, tmp_path):
        path = tmp_path / WAL_NAME
        log = DurableLog(path)
        log.append(submission_xupdate(1, 1, "Intact", "A"))
        with fail.armed({"persistence.pre_fsync": "count:1"}):
            with pytest.raises(FailPointError):
                log.append(submission_xupdate(1, 2, "Torn", "B"))
        assert log.crashed
        with pytest.raises(RecoveryError, match="marked crashed"):
            log.append(submission_xupdate(1, 1, "After", "C"))
        with pytest.raises(RecoveryError, match="marked crashed"):
            log.truncate_to_seq(0)
        # close() flushes the torn half-record like a real page cache;
        # reopening truncates it back to the intact prefix
        log.close()
        reopened = DurableLog(path)
        assert [r.seq for r in reopened.records()] == [0]
        reopened.close()


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        write_snapshot(tmp_path, 7, ["<a/>", "<b/>"])
        snapshot = load_snapshot(tmp_path)
        assert snapshot is not None
        assert snapshot.lsn == 7
        assert snapshot.documents == ("<a/>", "<b/>")

    def test_missing_directory_loads_none(self, tmp_path):
        assert load_snapshot(tmp_path / "nothing-here") is None

    def test_rename_crash_keeps_previous_snapshot(self, tmp_path):
        write_snapshot(tmp_path, 1, ["<old/>"])
        with fail.armed({"persistence.snapshot_rename": "count:1"}):
            with pytest.raises(FailPointError):
                write_snapshot(tmp_path, 2, ["<new/>"])
        snapshot = load_snapshot(tmp_path)
        assert snapshot is not None and snapshot.lsn == 1
        assert snapshot.documents == ("<old/>",)
        # the leftover temp file does not block the next attempt
        write_snapshot(tmp_path, 3, ["<newer/>"])
        reloaded = load_snapshot(tmp_path)
        assert reloaded is not None and reloaded.lsn == 3

    def test_corrupt_checksum_rejected(self, tmp_path):
        target = write_snapshot(tmp_path, 1, ["<a/>"])
        blob = bytearray(target.read_bytes())
        blob[-2] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(RecoveryError, match="checksum"):
            load_snapshot(tmp_path)

    def test_malformed_body_rejected(self, tmp_path):
        import zlib
        body = b'{"format": 1}'  # checksums fine, fields missing
        (tmp_path / SNAPSHOT_NAME).write_bytes(
            b"%08x\n" % zlib.crc32(body) + body)
        with pytest.raises(RecoveryError, match="malformed"):
            load_snapshot(tmp_path)


@pytest.fixture()
def schema():
    return make_schema()


@pytest.fixture()
def state_dir(tmp_path):
    return tmp_path / "state"


def fresh_documents():
    from tests.conftest import PUB_XML
    return [parse_document(PUB_XML), parse_document(REV_XML)]


class TestDurableService:
    def test_fresh_open_installs_baseline_snapshot(
            self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        try:
            assert service.durable
            snapshot = load_snapshot(state_dir)
            assert snapshot is not None and snapshot.lsn == 0
            assert (state_dir / WAL_NAME).exists()
            assert service.wal_records() == []
        finally:
            service.close()

    def test_accepted_updates_logged_rejected_not(
            self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        try:
            rng = random.Random(5)
            legal = legal_submission(
                service.store.document("review"), rng)
            assert service.try_execute(legal).applied
            illegal = illegal_submission(
                service.store.document("review"), rng)
            assert not service.try_execute(illegal).applied
            records = service.wal_records()
            assert [r.seq for r in records] == [0]
            assert records[0].text == legal
        finally:
            service.close()

    def test_operation_objects_logged_as_canonical_text(
            self, schema, state_dir):
        """Satellite 1 regression: a parsed Operation submitted to the
        service must enter the WAL as parseable XUpdate text, not as
        the dataclass repr ``str(op)`` used to produce."""
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        try:
            text = submission_xupdate(1, 1, "As Object", "Obj Author")
            operation = parse_modifications(text)[0]
            assert service.try_execute(operation).applied
            record = service.wal_records()[0]
            assert record.text == canonical_update_text(operation)
            reparsed = parse_modifications(record.text)
            assert reparsed[0].select == operation.select
        finally:
            service.close()
        # and the record replays: reopen recovers through the checker
        recovered = CheckingService.recover(schema, state_dir)
        try:
            assert recovered.last_recovery is not None
            assert recovered.last_recovery.replayed == 1
        finally:
            recovered.close()

    def test_reopen_recovers_identical_state(self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        rng = random.Random(11)
        for _ in range(4):
            service.try_execute(legal_submission(
                service.store.document("review"), rng))
        expected = service.snapshot()
        expected_log = [(c.sequence, canonical_update_text(c.update))
                        for c in service.committed_updates()]
        service.close()
        reopened = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        try:
            assert reopened.last_recovery is not None
            assert reopened.snapshot() == expected
            assert [(c.sequence, canonical_update_text(c.update))
                    for c in reopened.committed_updates()] \
                == expected_log
            assert reopened.verify_consistency() == []
        finally:
            reopened.close()

    def test_crash_between_append_and_apply_replays_on_restart(
            self, schema, state_dir):
        """Satellite 3: the applied-but-unlogged window is closed from
        both sides — a crash after the fsync'd append recovers *with*
        the logged update, keeping log and memory in exact step."""
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        rng = random.Random(23)
        rev = service.store.document("review")
        assert service.try_execute(legal_submission(rev, rng)).applied
        survivor_count = len(service.committed_updates())
        doomed = legal_submission(rev, rng)
        with fail.armed(
                {"persistence.post_append_pre_apply": "count:1"}):
            with pytest.raises(FailPointError):
                service.try_execute(doomed)
        # the process is "dead": the service refuses further writes
        with pytest.raises(RecoveryError, match="crashed"):
            service.try_execute(legal_submission(rev, rng))
        service.close()
        recovered = CheckingService.recover(schema, state_dir)
        try:
            committed = recovered.committed_updates()
            assert len(committed) == survivor_count + 1
            assert canonical_update_text(committed[-1].update) \
                == doomed
            texts = [r.text for r in recovered.wal_records()]
            assert texts == [canonical_update_text(c.update)
                             for c in committed]
            assert recovered.verify_consistency() == []
        finally:
            recovered.close()

    def test_recover_without_state_raises(self, schema, tmp_path):
        with pytest.raises(RecoveryError, match="no snapshot"):
            CheckingService.recover(schema, tmp_path / "empty")

    def test_lost_wal_records_detected(self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        rng = random.Random(7)
        for _ in range(2):
            service.try_execute(legal_submission(
                service.store.document("review"), rng))
        service.checkpoint()  # snapshot now current through lsn 2
        service.close()
        (state_dir / WAL_NAME).write_bytes(b"")  # fsync'd records gone
        with pytest.raises(RecoveryError, match="lost"):
            CheckingService.recover(schema, state_dir)

    def test_tampered_log_rejected_on_replay(self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        rng = random.Random(3)
        service.try_execute(legal_submission(
            service.store.document("review"), rng))
        illegal = illegal_submission(
            service.store.document("review"), rng)
        service.close()
        # smuggle an illegal update into the log behind the service's
        # back — replay re-checks it and refuses the whole recovery
        log = DurableLog(state_dir / WAL_NAME)
        log.append(illegal)
        log.close()
        with pytest.raises(RecoveryError, match="no longer accepted"):
            CheckingService.recover(schema, state_dir)

    def test_checkpoint_bounds_replay(self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        rng = random.Random(13)
        for _ in range(3):
            service.try_execute(legal_submission(
                service.store.document("review"), rng))
        service.checkpoint()
        service.close()
        recovered = CheckingService.recover(schema, state_dir)
        try:
            info = recovered.last_recovery
            assert info is not None
            assert info.snapshot_lsn == 3
            assert info.replayed == 0
            assert info.total_records == 3
            # appends continue the sequence after recovery
            decision = recovered.try_execute(legal_submission(
                recovered.store.document("review"), rng))
            assert decision.applied
            assert recovered.wal_records()[-1].seq == 3
        finally:
            recovered.close()

    def test_checkpoint_requires_durable_mode(
            self, schema, documents):
        service = CheckingService(schema, documents)
        with pytest.raises(RecoveryError, match="no durable state"):
            service.checkpoint()

    def test_automatic_snapshot_interval(self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir,
            snapshot_interval=2)
        rng = random.Random(17)
        for _ in range(3):
            service.try_execute(legal_submission(
                service.store.document("review"), rng))
        service.close()
        snapshot = load_snapshot(state_dir)
        assert snapshot is not None and snapshot.lsn >= 2


class TestSharedStoreLocking:
    def test_construction_waits_for_writer(
            self, constraint_schema, documents):
        """Satellite 2: handing a *shared* DocumentStore to the
        constructor takes the read lock for the checker-factory walk,
        so a concurrent writer blocks it instead of racing it."""
        store = DocumentStore(documents)
        built = threading.Event()

        def construct() -> None:
            CheckingService(constraint_schema, store)
            built.set()

        with store.write_locked():
            thread = threading.Thread(target=construct)
            thread.start()
            assert not built.wait(0.2)
        thread.join(timeout=10)
        assert built.is_set()


class TestSequenceNumbering:
    """Satellite 4: CommittedUpdate sequences stay dense and ordered
    under interleaved try_execute / check_batch, volatile or durable,
    and (when durable) agree with the WAL record sequences."""

    def _drive(self, service: CheckingService) -> None:
        rng = random.Random(29)
        rev = service.store.document("review")
        assert service.try_execute(legal_submission(rev, rng)).applied
        batch = [legal_submission(rev, rng) for _ in range(3)]
        batch.insert(1, illegal_submission(rev, rng))
        decisions = service.check_batch(batch)
        assert [d.applied for d in decisions] \
            == [True, False, True, True]
        assert not service.try_execute(
            illegal_submission(rev, rng)).applied
        assert service.try_execute(legal_submission(rev, rng)).applied

    def test_volatile_sequences_are_dense(
            self, constraint_schema, documents):
        service = CheckingService(constraint_schema, documents)
        self._drive(service)
        committed = service.committed_updates()
        assert [c.sequence for c in committed] \
            == list(range(len(committed)))
        assert len(committed) == 5

    def test_durable_sequences_match_wal(self, schema, state_dir):
        service = CheckingService.open_durable(
            schema, fresh_documents(), state_dir)
        try:
            self._drive(service)
            committed = service.committed_updates()
            assert [c.sequence for c in committed] \
                == list(range(len(committed)))
            records = service.wal_records()
            assert [r.seq for r in records] \
                == [c.sequence for c in committed]
            assert [r.text for r in records] \
                == [canonical_update_text(c.update)
                    for c in committed]
        finally:
            service.close()


CRASH_SITES = [
    "persistence.pre_fsync",
    "persistence.post_append_pre_apply",
    "persistence.snapshot_rename",
]


@pytest.mark.fault
class TestCrashPointProperty:
    """Satellite 4b: for *any* crash point, recovery lands on a state
    byte-identical to a sequential oracle replay of the recovered
    commit log, with at most one logged-but-unapplied extra record."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 9999), hits=st.integers(1, 6),
           site=st.sampled_from(CRASH_SITES))
    def test_recovery_matches_oracle(self, seed, hits, site):
        schema = make_schema()
        state_dir = tempfile.mkdtemp(prefix="repro-walprop-")
        try:
            service = CheckingService.open_durable(
                schema, fresh_documents(), state_dir,
                snapshot_interval=3)
            rng = random.Random(seed)
            accepted: list[str] = []
            crashed = False
            with fail.armed({site: f"count:{hits}"}):
                for _ in range(10):
                    rev = service.store.document("review")
                    if rng.random() < 0.25:
                        update = illegal_submission(rev, rng)
                    else:
                        update = legal_submission(rev, rng)
                    try:
                        if service.try_execute(update).applied:
                            accepted.append(update)
                    except FailPointError:
                        crashed = True
                        break
                    except RecoveryError:
                        break  # post-crash write refused
            service.close()
            recovered = CheckingService.recover(schema, state_dir)
            committed = [canonical_update_text(c.update)
                         for c in recovered.committed_updates()]
            # at most one logged-but-unapplied record beyond the
            # accepted prefix — and only when the crash fired
            assert committed[:len(accepted)] == accepted
            assert len(committed) <= len(accepted) + (1 if crashed
                                                      else 0)
            oracle = CheckingService(schema, fresh_documents())
            for text in committed:
                assert oracle.try_execute(text).applied
            assert recovered.snapshot() == oracle.snapshot()
            assert recovered.verify_consistency() == []
            recovered.close()
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)


@pytest.mark.fault
class TestRestartMatrix:
    @pytest.mark.parametrize("site", sorted(RESTART_SITES))
    def test_kill_and_restart_recovers(self, site):
        report = run_restart_scenario(3, site, ops=40)
        assert report.faults_fired > 0
        assert report.accepted > 0
