"""Direct unit tests for :class:`repro.service.locks.ReadWriteLock`:
writer preference, reader re-entry, misuse errors, and a timeout'd
no-deadlock smoke over a seeded mixed workload."""

from __future__ import annotations

import random
import threading

import pytest

from repro.service.locks import ReadWriteLock

JOIN_TIMEOUT = 30.0


def _join(*threads: threading.Thread) -> None:
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
        assert not thread.is_alive(), f"{thread.name} wedged"


def test_concurrent_readers_share_the_lock():
    lock = ReadWriteLock()
    inside = threading.Barrier(3, timeout=JOIN_TIMEOUT)

    def reader() -> None:
        with lock.read_locked():
            inside.wait()  # all three inside the read side at once

    threads = [threading.Thread(target=reader, name=f"reader-{index}")
               for index in range(3)]
    for thread in threads:
        thread.start()
    _join(*threads)


def test_writer_preference_blocks_new_readers():
    """A waiting writer must (a) get the lock as soon as current
    readers drain and (b) hold back readers that arrive after it."""
    lock = ReadWriteLock()
    events = {name: threading.Event()
              for name in ("writer_waiting", "writer_in", "writer_out",
                           "late_reader_in")}
    order: list = []

    lock.acquire_read()  # the reader the writer has to wait out

    def writer() -> None:
        events["writer_waiting"].set()
        with lock.write_locked():
            order.append("writer")
            events["writer_in"].set()
        events["writer_out"].set()

    def late_reader() -> None:
        # arrives while the writer is queued: preference says it waits
        with lock.read_locked():
            order.append("late-reader")
            events["late_reader_in"].set()

    writer_thread = threading.Thread(target=writer, name="writer")
    writer_thread.start()
    assert events["writer_waiting"].wait(timeout=JOIN_TIMEOUT)
    # give the writer a beat to actually queue on the condition
    while lock._writers_waiting == 0:  # noqa: SLF001 - test peeks
        pass

    reader_thread = threading.Thread(target=late_reader,
                                     name="late-reader")
    reader_thread.start()
    assert not events["late_reader_in"].wait(timeout=0.2), \
        "reader overtook a waiting writer"
    assert not events["writer_in"].is_set(), \
        "writer got in past an active reader"

    lock.release_read()
    assert events["writer_in"].wait(timeout=JOIN_TIMEOUT)
    _join(writer_thread, reader_thread)
    assert order == ["writer", "late-reader"]


def test_reader_reentry_same_thread_uncontended():
    """Nested read acquisition from one thread works while no writer
    is queued (readers share, so the second acquire is just another
    reader).  The lock documents that this is *not* safe under writer
    contention — preference would deadlock the inner acquire — which
    is exactly why an armed sanitizer rejects the re-entry outright."""
    from repro.analysis.concurrency import sanitizer

    lock = ReadWriteLock()
    if lock._sanitized:  # noqa: SLF001 - armed CI leg
        with lock.read_locked():
            with pytest.raises(sanitizer.LockOrderViolation):
                lock.acquire_read()
        sanitizer.clear_violations()
        return
    with lock.read_locked():
        with lock.read_locked():
            assert lock._readers == 2  # noqa: SLF001 - test peeks
    assert lock._readers == 0  # noqa: SLF001


@pytest.mark.parametrize("release", ["release_read", "release_write"])
def test_release_without_acquire_raises_and_keeps_state(release):
    lock = ReadWriteLock()
    with pytest.raises(RuntimeError, match="without"):
        getattr(lock, release)()
    # state must be intact: the error fired before any bookkeeping
    assert lock._readers == 0  # noqa: SLF001 - test peeks
    assert not lock._writer_active  # noqa: SLF001
    # and the lock must remain usable on both sides
    with lock.read_locked():
        pass
    with lock.write_locked():
        pass


def test_release_read_underflow_after_real_use():
    """One acquire supports exactly one release; the second raises and
    never drives the reader count negative (the corruption mode the
    check-before-decrement guards against)."""
    lock = ReadWriteLock()
    lock.acquire_read()
    lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_read()
    assert lock._readers == 0  # noqa: SLF001 - test peeks
    with lock.write_locked():  # a phantom reader would wedge this
        pass


@pytest.mark.slow
def test_mixed_workload_no_deadlock_smoke():
    """Seeded reader/writer churn: every thread must finish within the
    join timeout, and the shared counter must reflect every write
    (exclusivity) while readers only ever observe settled values."""
    lock = ReadWriteLock()
    rng = random.Random(20060328)
    plans = [[rng.random() < 0.25 for _ in range(60)]
             for _ in range(6)]
    state = {"value": 0}
    writes_expected = sum(sum(plan) for plan in plans)
    torn_reads: list = []

    def worker(plan) -> None:
        for is_write in plan:
            if is_write:
                with lock.write_locked():
                    current = state["value"]
                    state["value"] = current + 1
            else:
                with lock.read_locked():
                    if state["value"] != state["value"]:
                        torn_reads.append(state["value"])

    threads = [threading.Thread(target=worker, args=(plan,),
                                name=f"churn-{index}")
               for index, plan in enumerate(plans)]
    for thread in threads:
        thread.start()
    _join(*threads)
    assert state["value"] == writes_expected
    assert torn_reads == []
