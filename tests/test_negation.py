"""Tests for negated subqueries across the whole pipeline.

Negation (``not(...)`` / ``¬``) is our instantiation of [16]'s
treatment of negative literals; it unlocks referential constraints
("every X must have a matching Y"), which the paper's related-work
section singles out as the key/foreign-key class.
"""

import pytest

from repro.core import ConstraintSchema, IntegrityGuard
from repro.datagen.running_example import (
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from repro.datalog import (
    Atom,
    Comparison,
    Constant as C,
    Denial,
    FactDatabase,
    Negation,
    Parameter as P,
    Variable as V,
    denial_holds,
    denial_violations,
    subsumes,
)
from repro.errors import DatalogEvaluationError
from repro.simplify import UpdatePattern, after, optimize, simp
from repro.simplify.optimize import normalize_denial
from repro.xpathlog import compile_constraint, parse_constraint
from repro.xquery import translate_denial
from repro.xquery.engine import query_truth
from repro.xtree import parse_document

REFERENTIAL_TEXT = (
    "<- //sub/title/text() -> T /\\ not(//pub[/title/text() -> T])")


@pytest.fixture()
def referential(relational_schema):
    constraint = parse_constraint(REFERENTIAL_TEXT)
    return compile_constraint(constraint, relational_schema)


class TestEvaluation:
    @pytest.fixture()
    def db(self):
        db = FactDatabase()
        db.add("sub", (1, 2, 9, "Streams"))
        db.add("sub", (2, 3, 9, "Phantom"))
        db.add("pub", (10, 1, 0, "Streams"))
        return db

    def _denial(self):
        return Denial((
            Atom("sub", (V("Is"), V("_1"), V("_2"), V("T"))),
            Negation((Atom("pub", (V("_3"), V("_4"), V("_5"), V("T"))),)),
        ))

    def test_unmatched_title_is_violation(self, db):
        violations = denial_violations(self._denial(), db)
        assert [s[V("T")].value for s in violations] == ["Phantom"]

    def test_negation_with_inner_comparison(self, db):
        denial = Denial((
            Atom("sub", (V("Is"), V("Pos"), V("_1"), V("_2"))),
            Negation((
                Atom("sub", (V("Js"), V("Qos"), V("_3"), V("_4"))),
                Comparison("lt", V("Qos"), V("Pos")),
            )),
        ))
        # only the first sub (pos 2) has no earlier sub
        violations = denial_violations(denial, db)
        assert [s[V("Is")].value for s in violations] == [1]

    def test_unsafe_shared_variable_rejected(self, db):
        denial = Denial((
            Negation((Atom("pub", (V("_1"), V("_2"), V("_3"), V("T"))),)),
            Comparison("eq", V("T"), V("U")),
        ))
        with pytest.raises(DatalogEvaluationError):
            denial_violations(denial, db)


class TestSubsumption:
    def test_structural_negation_match(self):
        first = Denial((
            Atom("sub", (V("Is"), V("_1"), V("_2"), V("T"))),
            Negation((Atom("pub", (V("_3"), V("_4"), V("_5"), V("T"))),)),
        ))
        second = first.rename_apart()
        assert subsumes(first, second) and subsumes(second, first)

    def test_different_inner_bodies_do_not_match(self):
        base = Denial((
            Atom("sub", (V("Is"), V("_1"), V("_2"), V("T"))),
            Negation((Atom("pub", (V("_3"), V("_4"), V("_5"), V("T"))),)),
        ))
        other = Denial((
            Atom("sub", (V("Is"), V("_1"), V("_2"), V("T"))),
            Negation((Atom("aut", (V("_3"), V("_4"), V("_5"), V("T"))),)),
        ))
        assert not subsumes(base, other)
        assert not subsumes(other, base)


class TestNormalization:
    def test_false_inner_comparison_drops_literal(self):
        denial = Denial((
            Atom("p", (V("X"),)),
            Negation((Comparison("eq", C(1), C(2)),)),
        ))
        assert normalize_denial(denial) == Denial((Atom("p", (V("X"),)),))

    def test_true_inner_body_drops_denial(self):
        denial = Denial((
            Atom("p", (V("X"),)),
            Negation((Comparison("eq", C(1), C(1)),)),
        ))
        assert normalize_denial(denial) is None

    def test_local_inner_equality_folded(self):
        denial = Denial((
            Atom("p", (V("X"),)),
            Negation((
                Atom("q", (V("Y"),)),
                Comparison("eq", V("Y"), C(3)),
            )),
        ))
        normal = normalize_denial(denial)
        assert normal is not None
        assert normal.negations()[0].body == (Atom("q", (C(3),)),)

    def test_local_variable_folds_onto_outer(self):
        # ¬∃Y(q(Y) ∧ Y=X) ≡ ¬q(X): the local Y is eliminated, the
        # outer X survives inside the negation
        denial = Denial((
            Atom("p", (V("X"),)),
            Negation((
                Atom("q", (V("Y"),)),
                Comparison("eq", V("Y"), V("X")),
            )),
        ))
        normal = normalize_denial(denial)
        assert normal is not None
        assert normal.negations()[0].body == (Atom("q", (V("X"),)),)

    def test_outer_only_equality_kept(self):
        # both sides outer-scoped: nothing may be folded away
        denial = Denial((
            Atom("p", (V("X"), V("Z"))),
            Negation((
                Atom("q", (V("X"),)),
                Comparison("eq", V("X"), V("Z")),
            )),
        ))
        normal = normalize_denial(denial)
        assert normal is not None
        assert len(normal.negations()[0].body) == 2


class TestSimplification:
    def test_referential_simp_for_sub_insertion(self, referential):
        update = UpdatePattern(
            (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),),
            frozenset({P("is")}))
        delta = [Denial((Atom("sub", (P("is"), V("_1"), V("_2"),
                                      V("_3"))),))]
        result = simp(referential, update, delta)
        assert len(result) == 1
        assert result[0].negations()
        assert P("t") in result[0].parameters()
        assert not result[0].atoms()  # only the negation remains

    def test_pub_insertion_needs_no_check(self, referential):
        update = UpdatePattern(
            (Atom("pub", (P("ip"), P("pp"), P("id"), P("t"))),),
            frozenset({P("ip")}))
        delta = [Denial((Atom("pub", (P("ip"), V("_1"), V("_2"),
                                      V("_3"))),))]
        assert simp(referential, update, delta) == []

    def test_after_distributes_over_negation(self, referential):
        update = UpdatePattern(
            (Atom("pub", (P("ip"), P("pp"), P("id"), P("t"))),))
        expanded = after(referential, update)
        # one denial; its negation splits into two conjuncts
        assert len(expanded) == 1
        assert len(expanded[0].negations()) == 2


class TestTranslation:
    def test_not_some_shape(self, referential, relational_schema):
        query = translate_denial(referential[0], relational_schema)
        assert "not(some $Ip in //pub satisfies" in query.text

    def test_parameter_inside_negation(self, relational_schema):
        denial = Denial((
            Negation((Atom("pub", (V("_1"), V("_2"), V("_3"), P("t"))),)),
        ))
        query = translate_denial(denial, relational_schema)
        assert query.parameters == {"t": "value"}
        assert "%{t}" in query.text

    def test_translated_query_evaluates(self, referential,
                                        relational_schema, documents):
        query = translate_denial(referential[0], relational_schema)
        # conftest documents: every sub title is NOT a pub title →
        # the referential constraint is violated there
        assert query_truth(query.text, documents)


class TestEndToEnd:
    def test_guard_with_referential_constraint(self):
        schema = ConstraintSchema([PUB_DTD, REV_DTD], [REFERENTIAL_TEXT],
                                  names=["ref"])
        schema.register_pattern(submission_xupdate(1, 1, "x", "y"))
        pub = parse_document(
            "<dblp><pub><title>Streams</title>"
            "<aut><name>A</name></aut></pub></dblp>")
        rev = parse_document(
            "<review><track><name>T</name><rev><name>R</name>"
            "<sub><title>Streams</title><auts><name>B</name></auts>"
            "</sub></rev></track></review>")
        guard = IntegrityGuard(schema, [pub, rev])
        ok = guard.try_execute(submission_xupdate(1, 1, "Streams", "C"))
        assert ok.legal and ok.optimized
        bad = guard.try_execute(submission_xupdate(1, 1, "Phantom", "C"))
        assert not bad.legal and bad.violated == ["ref"]
        assert bad.optimized  # rejected by the pre-check, not brute force

    def test_deletion_goes_brute_force_with_negation(self):
        schema = ConstraintSchema([PUB_DTD, REV_DTD], [REFERENTIAL_TEXT],
                                  names=["ref"])
        pub = parse_document(
            "<dblp><pub><title>Streams</title>"
            "<aut><name>A</name></aut></pub></dblp>")
        rev = parse_document(
            "<review><track><name>T</name><rev><name>R</name>"
            "<sub><title>Streams</title><auts><name>B</name></auts>"
            "</sub></rev></track></review>")
        guard = IntegrityGuard(schema, [pub, rev])
        # deleting the referenced publication would orphan the sub
        remove = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:remove select="/dblp/pub[1]"/>
        </xupdate:modifications>"""
        decision = guard.try_execute(remove)
        assert not decision.legal
        assert not decision.optimized  # brute-force path for deletions
        # and the pub is still there
        assert len(pub.root.element_children("pub")) == 1


class TestTheoremOneWithNegation:
    """Randomized soundness: pre-check ⟺ apply-then-check."""

    from hypothesis import given, strategies as st

    GAMMA = [Denial((
        Atom("sub", (V("Is"), V("_1"), V("_2"), V("T"))),
        Negation((Atom("pub", (V("_3"), V("_4"), V("_5"), V("T"))),)),
    ))]
    UPDATE = UpdatePattern(
        (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),),
        frozenset({P("is")}))
    DELTA = [Denial((Atom("sub", (P("is"), V("_1"), V("_2"),
                                  V("_3"))),))]
    SIMPLIFIED = simp(GAMMA, UPDATE, DELTA)

    @given(st.lists(st.sampled_from(["A", "B", "C"]), max_size=4),
           st.lists(st.sampled_from(["A", "B", "C"]), max_size=4),
           st.sampled_from(["A", "B", "C", "Z"]))
    def test_agrees_with_post_check(self, sub_titles, pub_titles,
                                    new_title):
        from hypothesis import assume
        from repro.datalog.subst import ParameterBinding

        db = FactDatabase()
        next_id = 10
        for title in sub_titles:
            db.add("sub", (next_id, 1, 1, title))
            next_id += 1
        for title in pub_titles:
            db.add("pub", (next_id, 1, 2, title))
            next_id += 1
        assume(all(denial_holds(denial, db) for denial in self.GAMMA))
        values = {"is": next_id + 1, "ps": 9, "ir": 1, "t": new_title}
        binder = ParameterBinding(
            {P(name): C(value) for name, value in values.items()})
        instantiated = [
            Denial(tuple(binder.apply_literal(literal)
                         for literal in denial.body))
            for denial in self.SIMPLIFIED
        ]
        optimized_ok = all(denial_holds(denial, db)
                           for denial in instantiated)
        db.add("sub", (values["is"], values["ps"], values["ir"],
                       values["t"]))
        ground_truth_ok = all(denial_holds(denial, db)
                              for denial in self.GAMMA)
        assert optimized_ok == ground_truth_ok

    @given(st.lists(st.sampled_from(["A", "B"]), max_size=3),
           st.sampled_from(["A", "B", "Z"]))
    def test_pub_insertion_never_violates(self, sub_titles, new_title):
        from hypothesis import assume
        db = FactDatabase()
        next_id = 10
        for title in sub_titles:
            db.add("sub", (next_id, 1, 1, title))
            db.add("pub", (next_id + 100, 1, 2, title))
            next_id += 1
        assume(all(denial_holds(denial, db) for denial in self.GAMMA))
        # simp says pub insertions need no check: verify the claim
        db.add("pub", (next_id + 500, 1, 2, new_title))
        assert all(denial_holds(denial, db) for denial in self.GAMMA)
