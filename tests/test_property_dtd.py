"""Property-based tests for DTD content-model matching.

The validator compiles content models to epsilon-NFAs; the oracle here
is an independently derived Python ``re`` pattern over a tag alphabet.
Any disagreement on a random child sequence is a bug in one of the two
compilations — almost certainly the NFA.
"""

from __future__ import annotations

import re

from hypothesis import given, strategies as st

from repro.xtree.dtd import (
    ChoiceParticle,
    ContentModel,
    NameParticle,
    SequenceParticle,
    _compile_nfa,
)

TAGS = ["a", "b", "c"]


def models(depth: int):
    leaf = st.builds(NameParticle, st.sampled_from(TAGS),
                     st.sampled_from(["", "?", "*", "+"]))
    if depth == 0:
        return leaf
    inner = models(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda items, occurs: SequenceParticle(tuple(items),
                                                         occurs),
                  st.lists(inner, min_size=1, max_size=3),
                  st.sampled_from(["", "?", "*", "+"])),
        st.builds(lambda items, occurs: ChoiceParticle(tuple(items),
                                                       occurs),
                  st.lists(inner, min_size=1, max_size=3),
                  st.sampled_from(["", "?", "*", "+"])),
    )


def to_regex(model: ContentModel) -> str:
    """Independent compilation of a content model to a regex.

    Each tag is one character of the alphabet (tags are single letters
    here), so a child sequence is just the concatenated tag string.
    """
    if isinstance(model, NameParticle):
        return model.name + model.occurs
    if isinstance(model, SequenceParticle):
        inner = "".join(to_regex(item) for item in model.items)
        return f"(?:{inner}){model.occurs}"
    if isinstance(model, ChoiceParticle):
        inner = "|".join(to_regex(item) for item in model.items)
        return f"(?:{inner}){model.occurs}"
    raise TypeError(model)


class TestNFAAgainstRegexOracle:
    @given(models(2), st.lists(st.sampled_from(TAGS), max_size=6))
    def test_agreement(self, model, children):
        nfa = _compile_nfa(model)
        pattern = re.compile(to_regex(model) + r"\Z")
        expected = pattern.match("".join(children)) is not None
        assert nfa.matches(children) is expected

    @given(models(2))
    def test_optional_star_accept_empty(self, model):
        nfa = _compile_nfa(model)
        pattern = re.compile(to_regex(model) + r"\Z")
        expected = pattern.match("") is not None
        assert nfa.matches([]) is expected
