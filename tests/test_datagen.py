"""Unit tests for the corpus and workload generators."""

import random

import pytest

from repro.core import BruteForceChecker
from repro.datagen import (
    CorpusSpec,
    busy_reviewer_targets,
    corpus_size_bytes,
    generate_corpus,
    illegal_submission,
    legal_submission,
    spec_for_size,
)
from repro.datagen.running_example import make_schema
from repro.xtree import parse_dtd, validate
from repro.datagen.running_example import PUB_DTD, REV_DTD


class TestCorpus:
    def test_deterministic(self):
        spec = CorpusSpec(seed=5)
        first = corpus_size_bytes(generate_corpus(spec))
        second = corpus_size_bytes(generate_corpus(spec))
        assert first == second

    def test_documents_are_valid(self):
        pub_doc, rev_doc = generate_corpus(CorpusSpec())
        validate(pub_doc, parse_dtd(PUB_DTD))
        validate(rev_doc, parse_dtd(REV_DTD))

    def test_corpus_is_consistent(self, constraint_schema):
        documents = list(generate_corpus(CorpusSpec(seed=11)))
        checker = BruteForceChecker(constraint_schema, documents)
        assert checker.check_only() == []

    def test_busy_reviewers_present(self):
        _, rev_doc = generate_corpus(CorpusSpec(busy_reviewers=2))
        targets = busy_reviewer_targets(rev_doc)
        names = {name for _, _, name in targets}
        assert names == {"Busy Reviewer 1", "Busy Reviewer 2"}
        assert len(targets) == 6  # 2 reviewers × 3 tracks

    def test_busy_reviewers_at_threshold(self):
        _, rev_doc = generate_corpus(CorpusSpec(busy_reviewers=1))
        subs = 0
        for track in rev_doc.root.element_children("track"):
            for rev in track.element_children("rev"):
                if rev.first_child("name").text() == "Busy Reviewer 1":
                    subs += len(rev.element_children("sub"))
        assert subs == 10

    def test_scaled_spec_grows(self):
        base = CorpusSpec()
        bigger = base.scaled(2.0)
        assert bigger.revs_per_track == 2 * base.revs_per_track

    def test_spec_for_size_hits_target(self):
        target = 150_000
        spec = spec_for_size(target)
        size = corpus_size_bytes(generate_corpus(spec))
        assert 0.5 * target <= size <= 2.0 * target


class TestWorkload:
    def test_legal_update_is_legal(self, constraint_schema):
        documents = list(generate_corpus(CorpusSpec(seed=3)))
        checker = BruteForceChecker(constraint_schema, documents)
        rng = random.Random(1)
        for _ in range(3):
            decision = checker.try_execute(
                legal_submission(documents[1], rng))
            assert decision.legal

    @pytest.mark.parametrize("kind, constraint", [
        ("conflict", "conflict_of_interest"),
        ("workload", "conference_workload"),
    ])
    def test_illegal_update_violates_expected_constraint(
            self, constraint_schema, kind, constraint):
        documents = list(generate_corpus(CorpusSpec(seed=4)))
        checker = BruteForceChecker(constraint_schema, documents)
        rng = random.Random(2)
        decision = checker.try_execute(
            illegal_submission(documents[1], rng, kind))
        assert not decision.legal
        assert constraint in decision.violated

    def test_workload_without_busy_reviewers_rejected(self):
        _, rev_doc = generate_corpus(CorpusSpec(busy_reviewers=0))
        with pytest.raises(ValueError):
            illegal_submission(rev_doc, random.Random(0), "workload")

    def test_unknown_kind_rejected(self):
        _, rev_doc = generate_corpus(CorpusSpec())
        with pytest.raises(ValueError):
            illegal_submission(rev_doc, random.Random(0), "nonsense")
