"""Unit tests for θ-subsumption (the Optimize workhorse)."""

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Parameter as P,
    Variable as V,
    subsumes,
)


def denial(*literals):
    return Denial(tuple(literals))


class TestAtomSubsumption:
    def test_identical(self):
        d = denial(Atom("p", (V("X"),)))
        assert subsumes(d, d)

    def test_more_general_subsumes_instance(self):
        general = denial(Atom("p", (V("X"), V("Y"))))
        specific = denial(Atom("p", (C(1), V("Z"))))
        assert subsumes(general, specific)
        assert not subsumes(specific, general)

    def test_subset_body_subsumes_superset(self):
        general = denial(Atom("p", (V("X"),)))
        specific = denial(Atom("p", (V("A"),)), Atom("q", (V("A"),)))
        assert subsumes(general, specific)
        assert not subsumes(specific, general)

    def test_freshness_hypothesis_kills_matching_denial(self):
        # Δ: ← sub(is,_,_,_) subsumes ← rev(X,...) ∧ sub(is,_,X,_)
        delta = denial(Atom("sub", (P("is"), V("_1"), V("_2"), V("_3"))))
        target = denial(
            Atom("rev", (V("X"), V("_a"), V("_b"), V("R"))),
            Atom("sub", (P("is"), V("_c"), V("X"), V("_d"))))
        assert subsumes(delta, target)

    def test_different_parameters_do_not_match(self):
        delta = denial(Atom("sub", (P("is"), V("_1"), V("_2"), V("_3"))))
        target = denial(Atom("sub", (P("other"), V("_c"), V("X"), V("_d"))))
        assert not subsumes(delta, target)

    def test_variable_cannot_collapse_two_target_constants(self):
        general = denial(Atom("p", (V("X"), V("X"))))
        specific = denial(Atom("p", (C(1), C(2))))
        assert not subsumes(general, specific)
        assert subsumes(general, denial(Atom("p", (C(1), C(1)))))


class TestComparisonSubsumption:
    def test_target_variables_are_rigid(self):
        # the regression behind example 5: ← p(X,Y) ∧ p(X,Z) ∧ Y≠Z must
        # NOT subsume ← p(i,Y) ∧ Y≠t
        general = denial(
            Atom("p", (V("X"), V("Y"))),
            Atom("p", (V("X"), V("Z"))),
            Comparison("ne", V("Y"), V("Z")))
        specific = denial(
            Atom("p", (P("i"), V("Y"))),
            Comparison("ne", V("Y"), P("t")))
        assert not subsumes(general, specific)

    def test_symmetric_comparison_matches_swapped(self):
        general = denial(Atom("p", (V("X"),)),
                         Comparison("ne", V("X"), C(1)))
        specific = denial(Atom("p", (V("A"),)),
                          Comparison("ne", C(1), V("A")))
        assert subsumes(general, specific)

    def test_ordering_comparison_matches_swapped_operator(self):
        general = denial(Atom("p", (V("X"),)),
                         Comparison("lt", V("X"), C(5)))
        specific = denial(Atom("p", (V("A"),)),
                          Comparison("gt", C(5), V("A")))
        assert subsumes(general, specific)

    def test_implication_eq_implies_le(self):
        general = denial(Atom("p", (V("X"),)),
                         Comparison("le", V("X"), C(5)))
        specific = denial(Atom("p", (V("A"),)),
                          Comparison("eq", V("A"), C(5)))
        assert subsumes(general, specific)

    def test_lt_implies_ne(self):
        general = denial(Atom("p", (V("X"), V("Y"))),
                         Comparison("ne", V("X"), V("Y")))
        specific = denial(Atom("p", (V("A"), V("B"))),
                          Comparison("lt", V("A"), V("B")))
        assert subsumes(general, specific)

    def test_le_does_not_imply_lt(self):
        general = denial(Atom("p", (V("X"),)),
                         Comparison("lt", V("X"), C(5)))
        specific = denial(Atom("p", (V("A"),)),
                          Comparison("le", V("A"), C(5)))
        assert not subsumes(general, specific)


class TestAggregateSubsumption:
    def _agg(self, bound, op="gt", parent=None):
        parent = parent if parent is not None else V("Ir")
        aggregate = Aggregate("cnt", True, None, (),
                              (Atom("sub", (V("S"), V("Q"), parent,
                                            V("T"))),))
        return AggregateCondition(aggregate, op, C(bound))

    def test_identical_aggregates(self):
        d1 = denial(Atom("rev", (V("Ir"), V("A"), V("B"), V("R"))),
                    self._agg(4))
        assert subsumes(d1, d1)

    def test_weaker_bound_subsumes_stronger(self):
        # holds(Cnt > 3) implies holds(Cnt > 4) is wrong; the right
        # direction: a *check* with bound 4 is implied by one with
        # bound 3 — target Cnt > 4 implies pattern Cnt > 3.
        low = denial(Atom("rev", (V("Ir"), V("A"), V("B"), V("R"))),
                     self._agg(3))
        high = denial(Atom("rev", (V("Ir"), V("A"), V("B"), V("R"))),
                      self._agg(4))
        assert subsumes(low, high)
        assert not subsumes(high, low)

    def test_instantiated_group_is_more_specific(self):
        general = denial(Atom("rev", (V("Ir"), V("A"), V("B"), V("R"))),
                         self._agg(4))
        specific = denial(Atom("rev", (P("ir"), V("A"), V("B"), V("R"))),
                          self._agg(4, parent=P("ir")))
        assert subsumes(general, specific)
        assert not subsumes(specific, general)

    def test_distinct_flag_must_match(self):
        plain = Aggregate("cnt", False, None, (),
                          (Atom("sub", (V("S"), V("Q"), V("Ir"),
                                        V("T"))),))
        d1 = denial(AggregateCondition(plain, "gt", C(4)),
                    Atom("rev", (V("Ir"), V("A"), V("B"), V("R"))))
        d2 = denial(self._agg(4),
                    Atom("rev", (V("Ir"), V("A"), V("B"), V("R"))))
        assert not subsumes(d1, d2)
        assert not subsumes(d2, d1)
