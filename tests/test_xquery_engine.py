"""Unit tests for the XQuery lexer, parser and evaluator."""

import pytest

from repro.errors import XQueryError, XQueryEvaluationError
from repro.xquery import evaluate_query, parse_query
from repro.xquery.engine import query_truth
from repro.xtree import parse_document
from repro.xtree.node import Element, Text


@pytest.fixture()
def doc():
    return parse_document("""<review>
      <track><name>DB</name>
        <rev><name>Alice</name>
          <sub><title>S1</title><auts><name>Bob</name></auts></sub>
          <sub><title>S2</title><auts><name>Carol</name></auts></sub>
        </rev>
        <rev><name>Dan</name>
          <sub><title>S3</title><auts><name>Bob</name></auts></sub>
        </rev>
      </track>
      <track><name>IR</name>
        <rev><name>Alice</name>
          <sub><title>S4</title><auts><name>Erin</name></auts></sub>
        </rev>
      </track>
    </review>""")


def strings(items):
    return [item.text() if isinstance(item, Element)
            else item.value if isinstance(item, Text) else item
            for item in items]


class TestPaths:
    def test_descendant(self, doc):
        assert len(evaluate_query("//sub", doc)) == 4

    def test_absolute_child_steps(self, doc):
        assert len(evaluate_query("/review/track", doc)) == 2

    def test_positional_predicate(self, doc):
        result = evaluate_query("/review/track[2]/name/text()", doc)
        assert strings(result) == ["IR"]

    def test_boolean_predicate(self, doc):
        result = evaluate_query("//rev[name/text() = 'Dan']/sub/title"
                                "/text()", doc)
        assert strings(result) == ["S3"]

    def test_parent_step(self, doc):
        result = evaluate_query("//sub[title/text() = 'S3']/../name"
                                "/text()", doc)
        assert strings(result) == ["Dan"]

    def test_wildcard(self, doc):
        assert len(evaluate_query("/review/track[1]/*", doc)) == 3

    def test_text_node_test(self, doc):
        # [1] selects the first rev child *per parent track*
        result = evaluate_query("//rev[1]/name/text()", doc)
        assert strings(result) == ["Alice", "Alice"]

    def test_position_step_extension(self, doc):
        # engine extension: the node's position among element siblings
        result = evaluate_query("//sub[title/text() = 'S2']/position()",
                                doc)
        assert result == [3]  # name is child 1, S1 child 2, S2 child 3

    def test_nodes_deduplicated(self, doc):
        result = evaluate_query("//sub/../..", doc)
        assert len(result) == 2  # the two tracks, not four

    def test_predicate_position_function(self, doc):
        result = evaluate_query("//sub[position() = last()]/title/text()",
                                doc)
        assert strings(result) == ["S2", "S3", "S4"]

    def test_variable_start(self, doc):
        revs = evaluate_query("//rev", doc)
        result = evaluate_query("$r/name/text()", doc,
                                {"r": [revs[1]]})
        assert strings(result) == ["Dan"]


class TestOperators:
    def test_general_comparison_existential(self, doc):
        assert query_truth("//rev/name/text() = 'Dan'", doc)
        assert not query_truth("//rev/name/text() = 'Zoe'", doc)

    def test_untyped_numeric_coercion(self, doc):
        assert query_truth("//sub/position() = 2", doc)

    def test_arithmetic(self, doc):
        assert evaluate_query("1 + 2 * 3", doc) == [7]
        assert evaluate_query("7 idiv 2", doc) == [3]
        assert evaluate_query("7 mod 2", doc) == [1]
        assert evaluate_query("6 div 3", doc) == [2.0]

    def test_division_by_zero(self, doc):
        with pytest.raises(XQueryEvaluationError):
            evaluate_query("1 div 0", doc)

    def test_and_or_short_circuit(self, doc):
        assert evaluate_query("false() and (1 div 0)", doc) == [False]
        assert evaluate_query("true() or (1 div 0)", doc) == [True]

    def test_range(self, doc):
        assert evaluate_query("1 to 4", doc) == [1, 2, 3, 4]

    def test_union_dedupes(self, doc):
        assert len(evaluate_query("(//sub | //sub)", doc)) == 4

    def test_unary_minus(self, doc):
        assert evaluate_query("-(2 + 3)", doc) == [-5]

    def test_sequence_expression(self, doc):
        assert evaluate_query('(1, "a", 2)', doc) == [1, "a", 2]


class TestFunctions:
    def test_count_exists_empty(self, doc):
        assert evaluate_query("count(//sub)", doc) == [4]
        assert evaluate_query("exists(//sub)", doc) == [True]
        assert evaluate_query("empty(//missing)", doc) == [True]

    def test_not_boolean(self, doc):
        assert evaluate_query("not(//missing)", doc) == [True]
        assert evaluate_query("boolean(//sub)", doc) == [True]

    def test_string_functions(self, doc):
        assert evaluate_query('concat("a", "b", "c")', doc) == ["abc"]
        assert evaluate_query('contains("hello", "ell")', doc) == [True]
        assert evaluate_query('starts-with("hello", "he")', doc) == [True]
        assert evaluate_query('string-length("abc")', doc) == [3]
        assert evaluate_query('substring("hello", 2, 3)', doc) == ["ell"]
        assert evaluate_query('upper-case("ab")', doc) == ["AB"]
        assert evaluate_query('normalize-space("  a  b ")', doc) == ["a b"]

    def test_distinct_values(self, doc):
        result = evaluate_query("distinct-values(//rev/name/text())", doc)
        assert sorted(str(v) for v in result) == ["Alice", "Dan"]

    def test_numeric_aggregates(self, doc):
        assert evaluate_query("sum((1, 2, 3))", doc) == [6]
        assert evaluate_query("avg((2, 4))", doc) == [3.0]
        assert evaluate_query("min((3, 1))", doc) == [1]
        assert evaluate_query("max((3, 1))", doc) == [3]
        assert evaluate_query("floor(2.7)", doc) == [2]
        assert evaluate_query("ceiling(2.1)", doc) == [3]
        assert evaluate_query("round(2.5)", doc) == [3]
        assert evaluate_query("abs(-2)", doc) == [2]

    def test_name_and_root(self, doc):
        assert evaluate_query("name(//sub[1])", doc) == ["sub"]
        roots = evaluate_query("root(//sub[title/text() = 'S1'])", doc)
        assert roots[0].tag == "review"

    def test_unknown_function_rejected(self, doc):
        with pytest.raises(XQueryEvaluationError):
            evaluate_query("frobnicate(1)", doc)

    def test_wrong_arity_rejected(self, doc):
        with pytest.raises(XQueryEvaluationError):
            evaluate_query("count(1, 2)", doc)


class TestFLWOR:
    def test_paper_aggregate_form(self, doc):
        # the section 6 translation of example 7's constraint
        query = ("exists( for $lr in //rev let $d := $lr/sub "
                 "where count($d) > 1 return <idle/> )")
        assert query_truth(query, doc)
        query = query.replace("> 1", "> 2")
        assert not query_truth(query, doc)

    def test_for_iterates(self, doc):
        result = evaluate_query(
            "for $s in //sub return $s/title/text()", doc)
        assert strings(result) == ["S1", "S2", "S3", "S4"]

    def test_where_filters(self, doc):
        result = evaluate_query(
            "for $r in //rev where count($r/sub) = 2 "
            "return $r/name/text()", doc)
        assert strings(result) == ["Alice"]

    def test_multiple_for_clauses(self, doc):
        result = evaluate_query(
            "for $t in //track, $r in $t/rev return $r/name/text()", doc)
        assert len(result) == 3

    def test_let_binds_sequence(self, doc):
        result = evaluate_query(
            "let $all := //sub return count($all)", doc)
        assert result == [4]


class TestQuantified:
    def test_some(self, doc):
        assert query_truth(
            "some $r in //rev satisfies count($r/sub) = 2", doc)

    def test_every(self, doc):
        assert query_truth(
            "every $r in //rev satisfies count($r/sub) >= 1", doc)
        assert not query_truth(
            "every $r in //rev satisfies count($r/sub) = 2", doc)

    def test_multiple_bindings(self, doc):
        assert query_truth(
            "some $r in //rev, $s in $r/sub satisfies "
            "$s/title/text() = 'S4'", doc)

    def test_empty_domain(self, doc):
        assert not query_truth(
            "some $x in //missing satisfies true()", doc)
        assert query_truth(
            "every $x in //missing satisfies false()", doc)


class TestConstructorsAndIf:
    def test_idle_constructor(self, doc):
        result = evaluate_query("<idle/>", doc)
        assert isinstance(result[0], Element)
        assert result[0].tag == "idle"

    def test_constructor_makes_flwor_result_nonempty(self, doc):
        assert query_truth(
            "exists(for $t in //track return <idle/>)", doc)

    def test_if_expression(self, doc):
        assert evaluate_query(
            "if (count(//sub) > 3) then 'many' else 'few'", doc) \
            == ["many"]

    def test_text_content_constructor(self, doc):
        result = evaluate_query("<note>hi</note>", doc)
        assert result[0].text() == "hi"


class TestMultiDocument:
    def test_absolute_paths_span_collection(self, doc):
        other = parse_document("<dblp><pub><title>T</title>"
                               "<aut><name>A</name></aut></pub></dblp>")
        assert evaluate_query("count(//name)", [doc, other]) == [10]
        assert query_truth("//pub/title/text() = 'T'", [doc, other])


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "some $x in //a",
        "for $x in //a",
        "1 +",
        "count(",
        "//a[",
        "let $x = 3 return $x",
        "'unterminated",
    ])
    def test_malformed_queries_raise(self, text):
        with pytest.raises(XQueryError):
            parse_query(text)

    def test_unbound_variable(self, doc):
        with pytest.raises(XQueryEvaluationError):
            evaluate_query("$nope", doc)
