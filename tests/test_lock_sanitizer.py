"""The runtime lock-order sanitizer: arming model, inversion
detection with both stacks, reentrancy exemption, and the fault-free
chaos run that pins down zero false positives."""

from __future__ import annotations

import random
import threading

import pytest

from repro.analysis.concurrency import sanitizer
from repro.analysis.concurrency.annotations import LOCK_ORDER


@pytest.fixture()
def armed():
    """Arm for the test, restore the prior state (and drop any
    violations the test provoked on purpose) afterwards."""
    previously = sanitizer.armed()
    sanitizer.arm()
    yield
    sanitizer.clear_violations()
    if not previously:
        sanitizer.disarm()


def test_disarmed_locks_are_bare_primitives():
    if sanitizer.armed():  # env-armed CI leg: construction differs
        pytest.skip("process is sanitizer-armed")
    lock = sanitizer.make_lock("document")
    rlock = sanitizer.make_rlock("document")
    assert not isinstance(lock, sanitizer.SanitizedLock)
    assert not isinstance(rlock, sanitizer.SanitizedLock)
    # the factory output is exactly what threading would hand out
    assert type(lock) is type(threading.Lock())
    assert type(rlock) is type(threading.RLock())


def test_armed_locks_are_wrapped(armed):
    lock = sanitizer.make_lock("document")
    assert isinstance(lock, sanitizer.SanitizedLock)
    with lock:
        assert lock.locked()
    assert not lock.locked()


def test_correct_order_records_nothing(armed):
    locks = [sanitizer.make_lock(name) for name in LOCK_ORDER]
    for lock in locks:
        lock.acquire()
    for lock in reversed(locks):
        lock.release()
    assert sanitizer.violations() == []


def test_rlock_reentry_is_exempt(armed):
    document = sanitizer.make_rlock("document")
    with document:
        with document:
            pass
    assert sanitizer.violations() == []


def test_same_rank_two_instances_is_a_violation(armed):
    first = sanitizer.make_rlock("document")
    second = sanitizer.make_rlock("document")
    with first:
        with pytest.raises(sanitizer.LockOrderViolation):
            second.acquire()
    assert len(sanitizer.violations()) == 1
    sanitizer.clear_violations()


def test_two_thread_order_inversion_detected(armed):
    """Seeded two-thread reproducer: thread B acquires against the
    canonical order while thread A interleaves correctly.  The
    sanitizer must flag B *before it blocks* — the schedule would
    otherwise be an actual deadlock candidate."""
    seed = random.Random(0xC0FFEE)
    document = sanitizer.make_rlock("document")
    plans = sanitizer.make_lock("planner.plan_cache")
    b_may_start = threading.Event()
    failures: list = []

    def thread_a() -> None:
        with document:          # canonical: document first ...
            b_may_start.set()
            with plans:         # ... plan cache inside
                pass

    def thread_b() -> None:
        b_may_start.wait(timeout=10.0)
        try:
            with plans:
                document.acquire()  # inversion: must raise, not block
                document.release()
        except sanitizer.LockOrderViolation as error:
            failures.append(error)

    workers = [threading.Thread(target=thread_a, name="order-a"),
               threading.Thread(target=thread_b, name="order-b")]
    seed.shuffle(workers)
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30.0)
        assert not worker.is_alive(), "reproducer wedged"

    assert len(failures) == 1
    violations = sanitizer.violations()
    assert len(violations) == 1
    violation = violations[0]
    assert violation.acquiring == "document"
    assert violation.holding == "planner.plan_cache"
    assert violation.thread == "order-b"
    rendered = violation.render()
    assert "stack holding 'planner.plan_cache'" in rendered
    assert "stack acquiring 'document'" in rendered
    # both stacks carry real frames from this file
    assert rendered.count("test_lock_sanitizer") >= 2
    sanitizer.clear_violations()


@pytest.mark.fault
def test_chaos_schedule_has_no_false_positives(armed):
    """A full faultcheck scenario on the chaos schedule, sanitizer
    armed: the production lock discipline must produce zero ordering
    violations even while faults fire at every instrumented site."""
    from repro.testing.harness import run_scenario

    report = run_scenario(20060328, schedule="chaos", ops=40)
    assert report is not None
    assert sanitizer.violations() == []


def test_release_unknown_name_is_noop(armed):
    # names outside LOCK_ORDER are transparent to the sanitizer
    lock = sanitizer.make_lock("not.a.known.rank")
    with lock:
        pass
    assert sanitizer.violations() == []
