"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datagen.running_example import (
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from tests.conftest import PUB_XML, REV_XML


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, content in [
            ("pub.dtd", PUB_DTD), ("rev.dtd", REV_DTD),
            ("pub.xml", PUB_XML), ("rev.xml", REV_XML),
            ("constraints.txt",
             "# conflict of interest\n"
             + " ".join(CONFLICT_OF_INTEREST.split()) + "\n"),
            ("pattern.xml", submission_xupdate(1, 1, "x", "y")),
            ("legal.xml", submission_xupdate(1, 2, "New", "Someone")),
            ("illegal.xml", submission_xupdate(1, 1, "Bad", "Alice")),
    ]:
        path = tmp_path / name
        path.write_text(content, encoding="utf-8")
        paths[name] = str(path)
    return paths


def schema_args(files):
    return ["--dtd", files["pub.dtd"], "--dtd", files["rev.dtd"],
            "--constraints-file", files["constraints.txt"]]


class TestDescribe:
    def test_prints_artifacts(self, files, capsys):
        code = main(["describe", *schema_args(files),
                     "--pattern", files["pattern.xml"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "rev(id, pos, parent, name)" in output
        assert "← rev(Ir,_,_,R)" in output
        assert "{sub(is,ps,ir,t), auts(ia,pa,is,n)}" in output


class TestCheck:
    def test_consistent_documents(self, files, capsys):
        code = main(["check", *schema_args(files),
                     files["pub.xml"], files["rev.xml"]])
        assert code == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_documents(self, files, tmp_path, capsys):
        bad = tmp_path / "bad_rev.xml"
        bad.write_text(REV_XML.replace(
            "<auts><name>Erin</name></auts>",
            "<auts><name>Alice</name></auts>", 1), encoding="utf-8")
        code = main(["check", *schema_args(files),
                     files["pub.xml"], str(bad)])
        assert code == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestGuard:
    def test_legal_update(self, files, capsys):
        code = main(["guard", *schema_args(files),
                     "--pattern", files["pattern.xml"],
                     "--update", files["legal.xml"],
                     files["pub.xml"], files["rev.xml"]])
        assert code == 0
        assert "optimized pre-check" in capsys.readouterr().out

    def test_illegal_update(self, files, capsys):
        code = main(["guard", *schema_args(files),
                     "--pattern", files["pattern.xml"],
                     "--update", files["illegal.xml"],
                     files["pub.xml"], files["rev.xml"]])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_in_place_writes_documents(self, files, capsys):
        code = main(["guard", *schema_args(files),
                     "--pattern", files["pattern.xml"],
                     "--update", files["legal.xml"], "--in-place",
                     files["pub.xml"], files["rev.xml"]])
        assert code == 0
        from pathlib import Path
        assert "New" in Path(files["rev.xml"]).read_text()


class TestShred:
    def test_prints_facts(self, files, capsys):
        code = main(["shred", "--dtd", files["rev.dtd"],
                     files["rev.xml"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "'Alice'" in output
        assert output.count("sub(") == 4


class TestQuery:
    def test_evaluates_expression(self, files, capsys):
        code = main(["query", "count(//sub)", files["rev.xml"]])
        assert code == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_prints_elements_as_xml(self, files, capsys):
        code = main(["query", "//rev[1]/name", files["rev.xml"]])
        assert code == 0
        assert "<name>Alice</name>" in capsys.readouterr().out


class TestConstraintFileContinuation:
    def test_backslash_joins_lines(self, files, tmp_path, capsys):
        wrapped = tmp_path / "wrapped.txt"
        wrapped.write_text(
            "# the conflict-of-interest denial, wrapped\n"
            "<- //rev[/name/text() -> R]/sub/auts/name/text() -> A \\\n"
            "   /\\ (A = R \\/ //pub[/aut/name/text() -> A \\\n"
            "   /\\ aut/name/text() -> R])\n",
            encoding="utf-8")
        code = main(["describe", "--dtd", files["pub.dtd"],
                     "--dtd", files["rev.dtd"],
                     "--constraints-file", str(wrapped)])
        assert code == 0
        assert "← rev(Ir,_,_,R)" in capsys.readouterr().out

    def test_parser_unit_behaviour(self):
        from repro.cli import _parse_constraint_lines
        text = ("# comment\n"
                "a \\\n"
                "  b\n"
                "\n"
                "c\n"
                "d \\")
        assert _parse_constraint_lines(text) == ["a b", "c", "d"]

    def test_comment_only_outside_continuation(self):
        from repro.cli import _parse_constraint_lines
        assert _parse_constraint_lines("a \\\n# not a comment") \
            == ["a # not a comment"]


class TestLint:
    def test_clean_schema_exits_zero(self, files, capsys):
        code = main(["lint", *schema_args(files),
                     "--pattern", files["pattern.xml"]])
        assert code == 0
        assert "clean: no diagnostics" in capsys.readouterr().out

    def test_bad_constraint_exits_one_with_code(self, files, capsys):
        code = main(["lint", "--dtd", files["pub.dtd"],
                     "--constraint", "<- //nosuch/text() -> T"])
        assert code == 1
        assert "XIC101" in capsys.readouterr().out

    def test_json_format(self, files, capsys):
        import json
        code = main(["lint", "--dtd", files["pub.dtd"],
                     "--constraint", "<- //nosuch/text() -> T",
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_severity"] == "error"
        assert payload["diagnostics"][0]["code"] == "XIC101"

    def test_fail_on_thresholds(self, files, tmp_path, capsys):
        # head occurs at most once per dept, so two distinct heads of
        # the same dept form a dead check (warning XIC105)
        org = tmp_path / "org.dtd"
        org.write_text(
            "<!ELEMENT org (dept)*>\n"
            "<!ELEMENT dept (head?, emp*)>\n"
            "<!ELEMENT head (hname)>\n<!ELEMENT hname (#PCDATA)>\n"
            "<!ELEMENT emp (ename)>\n<!ELEMENT ename (#PCDATA)>\n",
            encoding="utf-8")
        dead = ("<- //dept[/head/hname/text() -> A"
                " /\\ /head/hname/text() -> B] /\\ A != B")
        args = ["lint", "--dtd", str(org), "--constraint", dead]
        assert main(args) == 1  # default --fail-on warning
        capsys.readouterr()
        assert main([*args, "--fail-on", "error"]) == 0
        assert main([*args, "--fail-on", "never"]) == 0
        assert "XIC105" in capsys.readouterr().out

    def test_lint_allows_no_constraints(self, files, capsys):
        code = main(["lint", "--dtd", files["pub.dtd"]])
        assert code == 0
        assert "clean" in capsys.readouterr().out


class TestErrors:
    def test_missing_constraints(self, files):
        with pytest.raises(SystemExit):
            main(["describe", "--dtd", files["pub.dtd"]])

    def test_repro_error_reported(self, files, tmp_path, capsys):
        broken = tmp_path / "broken.xml"
        broken.write_text("<unclosed>", encoding="utf-8")
        code = main(["query", "count(//a)", str(broken)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRecover:
    def _durable_state(self, tmp_path):
        from repro.datagen import make_schema
        from repro.service import CheckingService
        from repro.xtree import parse_document

        state = tmp_path / "state"
        service = CheckingService.open_durable(
            make_schema(),
            [parse_document(PUB_XML), parse_document(REV_XML)],
            state)
        decision = service.try_execute(
            submission_xupdate(1, 2, "Durable Title", "Fresh Name"))
        assert decision.applied
        service.close()
        return state

    def test_reports_replay_and_consistency(self, files, tmp_path,
                                            capsys):
        state = self._durable_state(tmp_path)
        code = main(["recover", *schema_args(files),
                     "--state-dir", str(state)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 of 1 logged updates replayed" in out
        assert "consistent" in out

    def test_checkpoint_empties_replay_tail(self, files, tmp_path,
                                            capsys):
        state = self._durable_state(tmp_path)
        assert main(["recover", *schema_args(files),
                     "--state-dir", str(state),
                     "--checkpoint"]) == 0
        assert "checkpoint written" in capsys.readouterr().out
        code = main(["recover", *schema_args(files),
                     "--state-dir", str(state)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 of 1 logged updates replayed" in out

    def test_missing_state_dir_is_a_coded_error(self, files, tmp_path,
                                                capsys):
        code = main(["recover", *schema_args(files),
                     "--state-dir", str(tmp_path / "nothing")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error [recover.no-state]:" in err
        assert "does not exist" in err

    def test_empty_state_dir_is_a_coded_error(self, files, tmp_path,
                                              capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["recover", *schema_args(files),
                     "--state-dir", str(empty)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error [recover.no-state]:" in err
        assert "nothing to recover" in err

    def test_state_dir_that_is_a_file_is_a_coded_error(
            self, files, tmp_path, capsys):
        code = main(["recover", *schema_args(files),
                     "--state-dir", files["rev.dtd"]])
        err = capsys.readouterr().err
        assert code == 2
        assert "error [recover.no-state]:" in err
        assert "is not a directory" in err

    def test_corrupt_snapshot_is_a_coded_error(self, files, tmp_path,
                                               capsys):
        state = self._durable_state(tmp_path)
        snapshot = state / "snapshot.json"
        snapshot.write_bytes(b"garbage\n" + snapshot.read_bytes()[9:])
        code = main(["recover", *schema_args(files),
                     "--state-dir", str(state)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error [recover.snapshot-corrupt]:" in err
