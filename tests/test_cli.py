"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datagen.running_example import (
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from tests.conftest import PUB_XML, REV_XML


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, content in [
            ("pub.dtd", PUB_DTD), ("rev.dtd", REV_DTD),
            ("pub.xml", PUB_XML), ("rev.xml", REV_XML),
            ("constraints.txt",
             "# conflict of interest\n"
             + " ".join(CONFLICT_OF_INTEREST.split()) + "\n"),
            ("pattern.xml", submission_xupdate(1, 1, "x", "y")),
            ("legal.xml", submission_xupdate(1, 2, "New", "Someone")),
            ("illegal.xml", submission_xupdate(1, 1, "Bad", "Alice")),
    ]:
        path = tmp_path / name
        path.write_text(content, encoding="utf-8")
        paths[name] = str(path)
    return paths


def schema_args(files):
    return ["--dtd", files["pub.dtd"], "--dtd", files["rev.dtd"],
            "--constraints-file", files["constraints.txt"]]


class TestDescribe:
    def test_prints_artifacts(self, files, capsys):
        code = main(["describe", *schema_args(files),
                     "--pattern", files["pattern.xml"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "rev(id, pos, parent, name)" in output
        assert "← rev(Ir,_,_,R)" in output
        assert "{sub(is,ps,ir,t), auts(ia,pa,is,n)}" in output


class TestCheck:
    def test_consistent_documents(self, files, capsys):
        code = main(["check", *schema_args(files),
                     files["pub.xml"], files["rev.xml"]])
        assert code == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_documents(self, files, tmp_path, capsys):
        bad = tmp_path / "bad_rev.xml"
        bad.write_text(REV_XML.replace(
            "<auts><name>Erin</name></auts>",
            "<auts><name>Alice</name></auts>", 1), encoding="utf-8")
        code = main(["check", *schema_args(files),
                     files["pub.xml"], str(bad)])
        assert code == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestGuard:
    def test_legal_update(self, files, capsys):
        code = main(["guard", *schema_args(files),
                     "--pattern", files["pattern.xml"],
                     "--update", files["legal.xml"],
                     files["pub.xml"], files["rev.xml"]])
        assert code == 0
        assert "optimized pre-check" in capsys.readouterr().out

    def test_illegal_update(self, files, capsys):
        code = main(["guard", *schema_args(files),
                     "--pattern", files["pattern.xml"],
                     "--update", files["illegal.xml"],
                     files["pub.xml"], files["rev.xml"]])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_in_place_writes_documents(self, files, capsys):
        code = main(["guard", *schema_args(files),
                     "--pattern", files["pattern.xml"],
                     "--update", files["legal.xml"], "--in-place",
                     files["pub.xml"], files["rev.xml"]])
        assert code == 0
        from pathlib import Path
        assert "New" in Path(files["rev.xml"]).read_text()


class TestShred:
    def test_prints_facts(self, files, capsys):
        code = main(["shred", "--dtd", files["rev.dtd"],
                     files["rev.xml"]])
        output = capsys.readouterr().out
        assert code == 0
        assert "'Alice'" in output
        assert output.count("sub(") == 4


class TestQuery:
    def test_evaluates_expression(self, files, capsys):
        code = main(["query", "count(//sub)", files["rev.xml"]])
        assert code == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_prints_elements_as_xml(self, files, capsys):
        code = main(["query", "//rev[1]/name", files["rev.xml"]])
        assert code == 0
        assert "<name>Alice</name>" in capsys.readouterr().out


class TestErrors:
    def test_missing_constraints(self, files):
        with pytest.raises(SystemExit):
            main(["describe", "--dtd", files["pub.dtd"]])

    def test_repro_error_reported(self, files, tmp_path, capsys):
        broken = tmp_path / "broken.xml"
        broken.write_text("<unclosed>", encoding="utf-8")
        code = main(["query", "count(//a)", str(broken)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
