"""Unit tests for the relational mapping (section 4.1)."""

import pytest

from repro.datalog import Atom, Denial, Variable as V, Parameter as P
from repro.errors import SchemaError
from repro.relational import RelationalSchema, shred, subtree_facts
from repro.relational.prune import prune_implied_parent_atoms
from repro.xtree import parse_document, parse_dtd


class TestSchemaCompilation:
    def test_running_example_predicates(self, relational_schema):
        assert set(relational_schema.predicates) == {
            "pub", "aut", "track", "rev", "sub", "auts"}

    def test_paper_schema_shapes(self, relational_schema):
        # pub(Id, Pos, IdParent, Title) etc., section 4.1
        for tag, value_column in [("pub", "title"), ("aut", "name"),
                                  ("track", "name"), ("rev", "name"),
                                  ("sub", "title"), ("auts", "name")]:
            predicate = relational_schema.predicate_for(tag)
            assert [c.name for c in predicate.columns] \
                == ["id", "pos", "parent", value_column]

    def test_roots_not_predicates(self, relational_schema):
        assert relational_schema.roots == ("dblp", "review")
        assert not relational_schema.has_predicate("dblp")

    def test_inlined_edges(self, relational_schema):
        assert relational_schema.is_inlined("pub", "title")
        assert relational_schema.is_inlined("rev", "name")
        assert not relational_schema.is_inlined("rev", "sub")

    def test_parent_tags(self, relational_schema):
        assert relational_schema.predicate_for("sub").parent_tags == ("rev",)
        assert relational_schema.predicate_for("pub").parent_tags == ("dblp",)

    def test_unknown_tag_raises(self, relational_schema):
        with pytest.raises(SchemaError):
            relational_schema.predicate_for("unknown")

    def test_optional_inlined_child_is_nullable(self):
        dtd = parse_dtd("<!ELEMENT r (item)+><!ELEMENT item (label?, sub*)>"
                        "<!ELEMENT label (#PCDATA)><!ELEMENT sub EMPTY>")
        schema = RelationalSchema.from_dtd(dtd)
        predicate = schema.predicate_for("item")
        label = predicate.columns[predicate.column_index("label")]
        assert label.optional

    def test_repeated_pcdata_child_gets_own_predicate(self):
        dtd = parse_dtd("<!ELEMENT r (tagword+)>"
                        "<!ELEMENT tagword (#PCDATA)>")
        schema = RelationalSchema.from_dtd(dtd)
        predicate = schema.predicate_for("tagword")
        assert predicate.has_text_column()

    def test_attributes_become_columns(self):
        dtd = parse_dtd("<!ELEMENT r (item+)><!ELEMENT item EMPTY>"
                        "<!ATTLIST item kind CDATA #REQUIRED>")
        schema = RelationalSchema.from_dtd(dtd)
        predicate = schema.predicate_for("item")
        assert predicate.attribute_index("kind") == 3

    def test_pcdata_child_of_root_keeps_predicate(self):
        dtd = parse_dtd("<!ELEMENT r (label)><!ELEMENT label (#PCDATA)>")
        schema = RelationalSchema.from_dtd(dtd)
        assert schema.has_predicate("label")

    def test_incompatible_merge_rejected(self):
        dtd_a = parse_dtd("<!ELEMENT ra (item+)><!ELEMENT item (x)>"
                          "<!ELEMENT x (#PCDATA)>")
        dtd_b = parse_dtd("<!ELEMENT rb (item+)><!ELEMENT item (y)>"
                          "<!ELEMENT y (#PCDATA)>")
        with pytest.raises(SchemaError):
            RelationalSchema.from_dtds([dtd_a, dtd_b])

    def test_describe_lists_predicates(self, relational_schema):
        text = relational_schema.describe()
        assert "pub(id, pos, parent, title)" in text


class TestShredding:
    def test_row_shapes(self, rev_doc, relational_schema):
        db = shred(rev_doc, relational_schema)
        for row in db.rows("rev"):
            assert len(row) == 4
            assert isinstance(row[0], int) and isinstance(row[2], int)

    def test_positions_count_all_element_children(self, rev_doc,
                                                   relational_schema):
        db = shred(rev_doc, relational_schema)
        positions = sorted(row[1] for row in db.rows("sub")
                           if row[3] in ("Streams", "Joins"))
        # name occupies position 1 inside rev, subs follow
        assert positions == [2, 3]

    def test_hierarchy_preserved(self, rev_doc, relational_schema):
        db = shred(rev_doc, relational_schema)
        sub_parents = {row[2] for row in db.rows("sub")}
        rev_ids = {row[0] for row in db.rows("rev")}
        assert sub_parents <= rev_ids

    def test_inlined_text_in_parent_row(self, pub_doc, relational_schema):
        db = shred(pub_doc, relational_schema)
        titles = {row[3] for row in db.rows("pub")}
        assert "Duckburg tales" in titles
        assert db.count("title") == 0

    def test_roots_produce_no_rows(self, rev_doc, relational_schema):
        db = shred(rev_doc, relational_schema)
        assert db.count("review") == 0

    def test_unknown_root_rejected(self, relational_schema):
        document = parse_document("<unknown/>")
        with pytest.raises(SchemaError):
            shred(document, relational_schema)

    def test_subtree_facts_matches_full_shred(self, rev_doc,
                                              relational_schema):
        full = shred(rev_doc, relational_schema)
        track = rev_doc.root.element_children("track")[0]
        facts = subtree_facts(track, relational_schema)
        for predicate, row in facts:
            assert full.contains(predicate, row)

    def test_missing_optional_child_shreds_to_none(self):
        dtd = parse_dtd("<!ELEMENT r (item+)><!ELEMENT item (label?)>"
                        "<!ELEMENT label (#PCDATA)>")
        schema = RelationalSchema.from_dtd(dtd)
        document = parse_document(
            "<r><item><label>x</label></item><item/></r>")
        db = shred(document, schema)
        values = sorted(str(row[3]) for row in db.rows("item"))
        assert values == ["None", "x"]


class TestPruning:
    def test_implied_parent_removed(self, relational_schema):
        denial = Denial((
            Atom("pub", (V("Ip"), V("_1"), V("_2"), V("_3"))),
            Atom("aut", (V("Ia"), V("_4"), V("Ip"), V("N"))),
        ))
        pruned = prune_implied_parent_atoms(denial, relational_schema)
        assert [a.predicate for a in pruned.atoms()] == ["aut"]

    def test_parent_with_used_column_kept(self, relational_schema):
        denial = Denial((
            Atom("pub", (V("Ip"), V("_1"), V("_2"), V("T"))),
            Atom("aut", (V("Ia"), V("_4"), V("Ip"), V("T"))),
        ))
        pruned = prune_implied_parent_atoms(denial, relational_schema)
        assert len(pruned.atoms()) == 2

    def test_pure_existence_atom_kept(self, relational_schema):
        denial = Denial((
            Atom("pub", (V("Ip"), V("_1"), V("_2"), V("_3"))),
        ))
        pruned = prune_implied_parent_atoms(denial, relational_schema)
        assert len(pruned.atoms()) == 1

    def test_parameter_id_not_pruned(self, relational_schema):
        denial = Denial((
            Atom("rev", (P("ir"), V("_1"), V("_2"), V("_3"))),
            Atom("sub", (V("Is"), V("_4"), P("ir"), V("T"))),
        ))
        pruned = prune_implied_parent_atoms(denial, relational_schema)
        assert len(pruned.atoms()) == 2

    def test_chain_pruned_iteratively(self, relational_schema):
        denial = Denial((
            Atom("track", (V("It"), V("_1"), V("_2"), V("_3"))),
            Atom("rev", (V("Iv"), V("_4"), V("It"), V("_5"))),
            Atom("sub", (V("Is"), V("_6"), V("Iv"), V("T"))),
        ))
        pruned = prune_implied_parent_atoms(denial, relational_schema)
        assert [a.predicate for a in pruned.atoms()] == ["sub"]
