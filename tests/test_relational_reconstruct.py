"""Round-trip tests: shred → reconstruct is lossless."""

import pytest

from repro.errors import SchemaError
from repro.relational import RelationalSchema, shred
from repro.relational.reconstruct import reconstruct
from repro.xtree import parse_document, parse_dtd, serialize
from repro.xtree.node import Element


class TestRunningExampleRoundTrip:
    def test_rev_document(self, rev_doc, relational_schema):
        database = shred(rev_doc, relational_schema)
        rebuilt = reconstruct(database, relational_schema, "review")
        assert serialize(rebuilt) == serialize(rev_doc)

    def test_pub_document(self, pub_doc, relational_schema):
        database = shred(pub_doc, relational_schema)
        rebuilt = reconstruct(database, relational_schema, "dblp")
        assert serialize(rebuilt) == serialize(pub_doc)

    def test_node_ids_preserved(self, rev_doc, relational_schema):
        database = shred(rev_doc, relational_schema)
        rebuilt = reconstruct(database, relational_schema, "review")
        original = {
            element.location_path(): element.node_id
            for element in rev_doc.iter_elements()
            if not relational_schema.is_inlined(
                element.parent.tag if element.parent else "",
                element.tag)
        }
        for element in rebuilt.iter_elements():
            parent_tag = element.parent.tag if element.parent else ""
            if relational_schema.is_inlined(parent_tag, element.tag):
                continue
            if element.parent is None:
                continue  # root id is synthesized from parent values
            assert element.node_id == original[element.location_path()]

    def test_shared_database_split_by_root(self, pub_doc, rev_doc,
                                           relational_schema):
        database = shred(pub_doc, relational_schema)
        shred(rev_doc, relational_schema, database)
        rebuilt_pub = reconstruct(database, relational_schema, "dblp")
        rebuilt_rev = reconstruct(database, relational_schema, "review")
        assert serialize(rebuilt_pub) == serialize(pub_doc)
        assert serialize(rebuilt_rev) == serialize(rev_doc)

    def test_fresh_ids_after_reconstruction(self, rev_doc,
                                            relational_schema):
        database = shred(rev_doc, relational_schema)
        rebuilt = reconstruct(database, relational_schema, "review")
        highest = max(element.node_id
                      for element in rebuilt.iter_elements()
                      if element.node_id is not None)
        new_node = Element("probe")
        rebuilt.root.append(new_node)
        assert new_node.node_id > highest


class TestCornerCases:
    def test_non_root_rejected(self, relational_schema):
        from repro.datalog import FactDatabase
        with pytest.raises(SchemaError):
            reconstruct(FactDatabase(), relational_schema, "rev")

    def test_attributes_and_text_columns(self):
        dtd = parse_dtd(
            "<!ELEMENT log (entry*)><!ELEMENT entry (#PCDATA)>"
            "<!ATTLIST entry level CDATA #IMPLIED>")
        schema = RelationalSchema.from_dtd(dtd)
        document = parse_document(
            '<log><entry level="info">started</entry>'
            "<entry>plain</entry></log>")
        database = shred(document, schema)
        rebuilt = reconstruct(database, schema, "log")
        assert serialize(rebuilt) == serialize(document)

    def test_empty_document(self, relational_schema):
        document = parse_document("<dblp/>")
        database = shred(document, relational_schema)
        rebuilt = reconstruct(database, relational_schema, "dblp")
        assert serialize(rebuilt) == serialize(document)

    def test_generated_corpus_round_trip(self, small_corpus,
                                         relational_schema):
        pub_doc, rev_doc = small_corpus
        database = shred(rev_doc, relational_schema)
        rebuilt = reconstruct(database, relational_schema, "review")
        assert serialize(rebuilt) == serialize(rev_doc)
