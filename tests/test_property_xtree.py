"""Property-based tests for the XML substrate (hypothesis)."""

import string

from hypothesis import given, strategies as st

from repro.xtree import parse_document, serialize
from repro.xtree.node import Document, Element, Text

_tag = st.sampled_from(["a", "b", "c", "item", "node", "x-y", "q_r"])
_text = st.text(
    alphabet=string.ascii_letters + string.digits + " &<>'\"éλ",
    min_size=1, max_size=12).filter(lambda s: s.strip())
_attr_name = st.sampled_from(["k", "key", "id", "kind"])
_attr_value = st.text(
    alphabet=string.ascii_letters + " &<'\"", max_size=8)


def _elements(depth: int):
    children = st.lists(
        st.one_of(
            st.builds(Text, _text),
            _elements(depth - 1) if depth > 0 else st.builds(Text, _text),
        ),
        max_size=3,
    )
    return st.builds(
        lambda tag, attrs, kids: _build(tag, attrs, kids),
        _tag,
        st.dictionaries(_attr_name, _attr_value, max_size=2),
        children,
    )


def _build(tag, attrs, kids):
    element = Element(tag, attrs)
    for kid in kids:
        element.append(kid)
    return element


documents = _elements(3).map(Document)


class TestRoundTrip:
    @given(documents)
    def test_serialize_parse_preserves_structure(self, document):
        reparsed = parse_document(serialize(document),
                                  keep_whitespace=True)
        assert _shape(reparsed.root) == _shape(document.root)

    @given(documents)
    def test_serialization_is_stable(self, document):
        once = serialize(document)
        again = serialize(parse_document(once, keep_whitespace=True))
        assert once == again


def _shape(node):
    """Structural fingerprint; adjacent text children are merged, as
    serialization necessarily coalesces them."""
    if isinstance(node, Text):
        return ("#text", node.value)
    children = []
    for child in node.children:
        if isinstance(child, Text) and children \
                and children[-1][0] == "#text":
            children[-1] = ("#text", children[-1][1] + child.value)
        else:
            children.append(_shape(child))
    return (node.tag, tuple(sorted(node.attributes.items())),
            tuple(children))


class TestIdentityInvariants:
    @given(documents)
    def test_ids_unique_and_preorder(self, document):
        ids = [element.node_id
               for element in document.root.iter_elements()]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    @given(documents)
    def test_positions_consistent_with_children(self, document):
        for element in document.root.iter_elements():
            children = element.element_children()
            for expected, child in enumerate(children, start=1):
                assert child.child_position == expected

    @given(documents)
    def test_location_paths_unique(self, document):
        paths = [element.location_path()
                 for element in document.root.iter_elements()]
        assert len(set(paths)) == len(paths)
