"""Unit tests for terms, literals, substitutions and unification."""

import pytest

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Arithmetic,
    Atom,
    Comparison,
    Constant,
    Denial,
    Parameter,
    Substitution,
    Variable,
    fresh_variable,
    is_anonymous,
    match_terms,
    negate_comparison,
    unify_atoms,
    unify_terms,
)
from repro.datalog.atoms import comparison_truth
from repro.datalog.terms import evaluate_arithmetic

V, C, P = Variable, Constant, Parameter


class TestTerms:
    def test_constant_rendering(self):
        assert str(C("x")) == '"x"'
        assert str(C(3)) == "3"
        assert str(C(None)) == "null"

    def test_anonymous_variables_render_as_underscore(self):
        assert str(V("_foo")) == "_"
        assert str(V("X")) == "X"

    def test_fresh_variables_are_unique(self):
        names = {fresh_variable("X").name for _ in range(100)}
        assert len(names) == 100

    def test_fresh_underscore_is_anonymous(self):
        assert is_anonymous(fresh_variable("_"))

    def test_arithmetic_folding(self):
        term = Arithmetic("-", C(10), C(4))
        assert evaluate_arithmetic(term) == C(6)

    def test_arithmetic_with_parameter_stays_symbolic(self):
        term = Arithmetic("-", P("c"), C(1))
        assert evaluate_arithmetic(term) == term


class TestComparison:
    def test_negation(self):
        assert negate_comparison(Comparison("eq", V("X"), C(1))).op == "ne"
        assert negate_comparison(Comparison("lt", V("X"), C(1))).op == "ge"

    def test_swapped(self):
        swapped = Comparison("lt", V("X"), V("Y")).swapped()
        assert swapped == Comparison("gt", V("Y"), V("X"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("like", V("X"), C(1))

    @pytest.mark.parametrize("comparison, expected", [
        (Comparison("eq", C(1), C(1)), True),
        (Comparison("eq", C(1), C(2)), False),
        (Comparison("ne", C("a"), C("a")), False),
        (Comparison("lt", C(1), C(2)), True),
        (Comparison("ge", C("b"), C("a")), True),
        (Comparison("eq", V("X"), V("X")), True),
        (Comparison("ne", P("t"), P("t")), False),
        (Comparison("lt", V("X"), V("X")), False),
        (Comparison("eq", V("X"), V("Y")), None),
        (Comparison("eq", P("a"), P("b")), None),
        (Comparison("eq", P("a"), C(1)), None),
        (Comparison("lt", C("a"), C(1)), None),
    ])
    def test_comparison_truth(self, comparison, expected):
        assert comparison_truth(comparison) is expected


class TestAggregates:
    def test_rendering(self):
        aggregate = Aggregate("cnt", True, None, (),
                              (Atom("sub", (V("S"), V("Q"), V("Ir"),
                                            V("T"))),))
        condition = AggregateCondition(aggregate, "gt", C(4))
        assert str(condition) == "CntD(sub(S,Q,Ir,T)) > 4"

    def test_group_by_rendering(self):
        aggregate = Aggregate("cnt", True, V("It"), (V("R"),),
                              (Atom("track", (V("It"), V("A"), V("B"),
                                              V("N"))),))
        assert "[R]" in str(aggregate)

    def test_sum_requires_term(self):
        with pytest.raises(ValueError):
            Aggregate("sum", False, None, (), ())

    def test_local_variables(self):
        aggregate = Aggregate("cnt", True, V("Is"), (V("R"),),
                              (Atom("sub", (V("Is"), V("Q"), V("Ir"),
                                            V("T"))),))
        locals_ = aggregate.local_variables()
        assert V("R") not in locals_
        assert V("Is") in locals_ and V("Ir") in locals_


class TestSubstitution:
    def test_apply_to_atom(self):
        theta = Substitution({V("X"): C(1)})
        atom = Atom("p", (V("X"), V("Y")))
        assert theta.apply_atom(atom) == Atom("p", (C(1), V("Y")))

    def test_bind_keeps_solved_form(self):
        theta = Substitution({V("X"): V("Y")})
        theta = theta.bind(V("Y"), C(5))
        assert theta.apply_term(V("X")) == C(5)

    def test_compose(self):
        first = Substitution({V("X"): V("Y")})
        second = Substitution({V("Y"): C(1)})
        composed = first.compose(second)
        assert composed.apply_term(V("X")) == C(1)
        assert composed.apply_term(V("Y")) == C(1)

    def test_restricted(self):
        theta = Substitution({V("X"): C(1), V("Y"): C(2)})
        restricted = theta.restricted({V("X")})
        assert V("X") in restricted and V("Y") not in restricted

    def test_apply_folds_arithmetic(self):
        theta = Substitution({V("X"): C(3)})
        term = Arithmetic("+", V("X"), C(4))
        assert theta.apply_term(term) == C(7)


class TestUnify:
    def test_variable_binds_constant(self):
        theta = unify_terms(V("X"), C(1))
        assert theta is not None and theta[V("X")] == C(1)

    def test_parameter_is_rigid(self):
        assert unify_terms(P("a"), P("b")) is None
        assert unify_terms(P("a"), C(1)) is None
        assert unify_terms(P("a"), P("a")) is not None

    def test_variable_binds_parameter(self):
        theta = unify_terms(V("X"), P("a"))
        assert theta is not None and theta[V("X")] == P("a")

    def test_atom_unification(self):
        theta = unify_atoms(Atom("p", (V("X"), C(1))),
                            Atom("p", (C(2), V("Y"))))
        assert theta is not None
        assert theta[V("X")] == C(2) and theta[V("Y")] == C(1)

    def test_atom_mismatch(self):
        assert unify_atoms(Atom("p", (V("X"),)),
                           Atom("q", (V("X"),))) is None
        assert unify_atoms(Atom("p", (V("X"),)),
                           Atom("p", (V("X"), V("Y")))) is None

    def test_repeated_variable_consistency(self):
        theta = unify_atoms(Atom("p", (V("X"), V("X"))),
                            Atom("p", (C(1), C(2))))
        assert theta is None


class TestMatch:
    def test_one_way_matching_binds_pattern_only(self):
        theta = match_terms(V("X"), C(1))
        assert theta is not None

    def test_bindable_restriction(self):
        # Y is a target variable flowing into the image: must not bind
        theta = match_terms(V("X"), V("Y"), bindable={V("X")})
        assert theta is not None
        followup = match_terms(V("Y"), C(1), theta, bindable={V("X")})
        assert followup is None


class TestDenial:
    def test_requires_nonempty_body(self):
        with pytest.raises(ValueError):
            Denial(())

    def test_variables_and_parameters(self):
        denial = Denial((Atom("p", (V("X"), P("a"))),
                         Comparison("ne", V("X"), V("Y"))))
        assert denial.variables() == {V("X"), V("Y")}
        assert denial.parameters() == {P("a")}

    def test_rename_apart_preserves_shape(self):
        denial = Denial((Atom("p", (V("X"), V("Y"))),
                         Comparison("ne", V("X"), V("Y"))))
        renamed = denial.rename_apart()
        assert renamed.variables().isdisjoint(denial.variables())
        assert denial.equivalent_to(renamed)

    def test_deduplicated(self):
        atom = Atom("p", (V("X"),))
        assert Denial((atom, atom)).deduplicated() == Denial((atom,))

    def test_display_names_shared_anonymous_joins(self):
        shared = fresh_variable("_")
        denial = Denial((Atom("p", (shared, V("X"))),
                         Atom("q", (shared,))))
        text = str(denial)
        assert "X1" in text and text.count("X1") == 2

    def test_predicates_includes_aggregate_bodies(self):
        aggregate = Aggregate("cnt", False, None, (),
                              (Atom("sub", (V("S"), V("Q"), V("I"),
                                            V("T"))),))
        denial = Denial((Atom("rev", (V("I"), V("A"), V("B"), V("R"))),
                        AggregateCondition(aggregate, "gt", C(1))))
        assert denial.predicates() == {"rev", "sub"}
