"""Tests for views (Horn rules with heads, section 3.1) and their
unfolding into constraints."""

import pytest

from repro.core import ConstraintSchema, IntegrityGuard
from repro.datagen.running_example import (
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from repro.datalog import Atom, Denial, Parameter as P, Variable as V
from repro.errors import CompilationError, XPathLogError
from repro.xpathlog import (
    compile_constraint,
    compile_rule,
    parse_constraint,
    parse_rule,
)

COAUTHOR = ("coauthor(A, B) <- //pub[/aut/name/text() -> A "
            "/\\ aut/name/text() -> B]")


class TestRuleParsing:
    def test_head_and_body(self):
        rule = parse_rule(COAUTHOR)
        assert rule.head_name == "coauthor"
        assert rule.head_params == ("A", "B")

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(XPathLogError):
            parse_rule("v(A, A) <- //pub/title/text() -> A")

    def test_zero_parameter_view(self):
        rule = parse_rule("any_pub() <- //pub")
        assert rule.head_params == ()

    def test_call_in_constraint(self):
        constraint = parse_constraint("<- coauthor(A, A)")
        from repro.xpathlog.ast import PredicateCall
        assert isinstance(constraint.body, PredicateCall)


class TestRuleCompilation:
    def test_view_body_literals(self, relational_schema):
        view = compile_rule(parse_rule(COAUTHOR), relational_schema)
        assert [a.predicate for a in view.literals] \
            == ["pub", "aut", "aut"]

    def test_unbound_head_parameter_rejected(self, relational_schema):
        with pytest.raises(CompilationError):
            compile_rule(parse_rule("v(A, B) <- //pub/title/text() -> A"),
                         relational_schema)

    def test_disjunctive_body_rejected(self, relational_schema):
        with pytest.raises(CompilationError):
            compile_rule(
                parse_rule("v(A) <- //pub/title/text() -> A "
                           "\\/ //sub/title/text() -> A"),
                relational_schema)

    def test_view_may_use_earlier_view(self, relational_schema):
        views = {}
        views["coauthor"] = compile_rule(parse_rule(COAUTHOR),
                                         relational_schema, views)
        self_coauthor = compile_rule(
            parse_rule("self_co(A) <- coauthor(A, A)"),
            relational_schema, views)
        assert len(self_coauthor.literals) == 3

    def test_duplicate_view_rejected(self, relational_schema):
        views = {}
        views["coauthor"] = compile_rule(parse_rule(COAUTHOR),
                                         relational_schema, views)
        with pytest.raises(CompilationError):
            compile_rule(parse_rule(COAUTHOR), relational_schema, views)


class TestUnfolding:
    def test_constraint_over_view_equals_direct_form(self,
                                                     relational_schema):
        views = {"coauthor": compile_rule(parse_rule(COAUTHOR),
                                          relational_schema)}
        layered = compile_constraint(
            parse_constraint(
                "<- //rev[/name/text() -> R]/sub/auts/name/text() -> A "
                "/\\ coauthor(A, R)"),
            relational_schema, views)
        direct = compile_constraint(
            parse_constraint(CONFLICT_OF_INTEREST), relational_schema)
        # the layered constraint equals the second disjunct of example 1
        assert len(layered) == 1
        assert layered[0].equivalent_to(direct[1])

    def test_constant_argument(self, relational_schema):
        views = {"coauthor": compile_rule(parse_rule(COAUTHOR),
                                          relational_schema)}
        denials = compile_constraint(
            parse_constraint('<- coauthor(A, "Alice")'),
            relational_schema, views)
        constants = [
            arg for atom in denials[0].atoms() for arg in atom.args
            if getattr(arg, "value", None) == "Alice"
        ]
        assert constants

    def test_two_calls_rename_apart(self, relational_schema):
        views = {"coauthor": compile_rule(parse_rule(COAUTHOR),
                                          relational_schema)}
        denials = compile_constraint(
            parse_constraint("<- coauthor(A, B) /\\ coauthor(B, C) "
                             "/\\ A != C"),
            relational_schema, views)
        auts = [a for a in denials[0].atoms() if a.predicate == "aut"]
        # two independent unfoldings: four aut atoms over two distinct
        # publication parents (the pub atoms themselves are pruned as
        # schema-implied)
        assert len(auts) == 4
        parents = {atom.args[2] for atom in auts}
        assert len(parents) == 2

    def test_unknown_view_rejected(self, relational_schema):
        with pytest.raises(CompilationError):
            compile_constraint(parse_constraint("<- mystery(A)"),
                               relational_schema, {})

    def test_negated_view(self, relational_schema):
        views = {"registered": compile_rule(
            parse_rule("registered(N) <- //aut/name/text() -> N"),
            relational_schema)}
        denials = compile_constraint(
            parse_constraint(
                "<- //sub/auts/name/text() -> A /\\ not(registered(A))"),
            relational_schema, views)
        assert denials[0].negations()
        inner = denials[0].negations()[0]
        assert [a.predicate for a in inner.atoms()] == ["aut"]


class TestEndToEnd:
    def test_schema_with_views(self, documents):
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            [
                "<- //rev[/name/text() -> R]/sub/auts/name/text() -> R",
                "<- //rev[/name/text() -> R]/sub/auts/name/text() -> A "
                "/\\ coauthor(A, R)",
            ],
            names=["no_self_review", "no_coauthor_review"],
            views=[COAUTHOR],
        )
        schema.register_pattern(submission_xupdate(1, 1, "x", "y"))
        guard = IntegrityGuard(schema, documents)
        # Bob coauthored "Duckburg tales" with reviewer Alice
        decision = guard.try_execute(
            submission_xupdate(1, 1, "Sneaky", "Bob"))
        assert not decision.legal
        assert decision.violated == ["no_coauthor_review"]

    def test_simplification_through_views(self, documents):
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            ["<- //rev[/name/text() -> R]/sub/auts/name/text() -> A "
             "/\\ coauthor(A, R)"],
            names=["no_coauthor_review"],
            views=[COAUTHOR],
        )
        signature = schema.register_pattern(
            submission_xupdate(1, 1, "x", "y"))
        checks = schema.checks_for(signature)
        assert checks is not None and not checks.fallback
        simplified = checks.optimized[0].simplified
        # the paper's example 6 second denial, via the view
        assert len(simplified) == 1
        expected = Denial((
            Atom("rev", (P("ir"), V("_1"), V("_2"), V("R"))),
            Atom("aut", (V("_3"), V("_4"), V("Ip"), P("n"))),
            Atom("aut", (V("_5"), V("_6"), V("Ip"), V("R"))),
        ))
        assert simplified[0].equivalent_to(expected)
