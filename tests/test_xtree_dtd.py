"""Unit tests for DTD parsing, cardinalities and validation."""

import pytest

from repro.errors import DTDError, ValidationError
from repro.xtree import parse_document, parse_dtd, validate
from repro.xtree.dtd import (
    UNBOUNDED,
    iter_validation_errors,
)


SIMPLE = """
<!ELEMENT review (track)+>
<!ELEMENT track (name, rev+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT rev (name, sub*)>
<!ELEMENT sub (title, auts+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT auts (name)>
"""


class TestParsing:
    def test_element_declarations(self):
        dtd = parse_dtd(SIMPLE)
        assert set(dtd.elements) == {
            "review", "track", "name", "rev", "sub", "title", "auts"}

    def test_pcdata_detection(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd.is_pcdata_only("name")
        assert not dtd.is_pcdata_only("rev")

    def test_root_detection(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd.root() == "review"

    def test_parents_of(self):
        dtd = parse_dtd(SIMPLE)
        assert sorted(dtd.parents_of("name")) \
            == ["auts", "rev", "track"]

    def test_duplicate_element_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a (#PCDATA)><!ELEMENT a (#PCDATA)>")

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert dtd.is_empty("a")
        assert not dtd.is_empty("b")

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>")
        assert dtd.child_cardinalities("a") == {"b": (0, UNBOUNDED)}

    def test_malformed_rejected(self):
        for text in ["<!ELEMENT a >", "<!ELEMENT a (b,|c)>",
                     "<!WRONG a b>", "<!ELEMENT a (b | c, d)>"]:
            with pytest.raises(DTDError):
                parse_dtd(text)

    def test_comments_between_declarations(self):
        dtd = parse_dtd("<!-- c --><!ELEMENT a (#PCDATA)><!-- d -->")
        assert dtd.is_pcdata_only("a")


class TestCardinalities:
    def test_sequence_cardinalities(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd.child_cardinalities("sub") \
            == {"title": (1, 1), "auts": (1, UNBOUNDED)}

    def test_star_is_zero_to_unbounded(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd.child_cardinalities("rev")["sub"] == (0, UNBOUNDED)

    def test_optional(self):
        dtd = parse_dtd("<!ELEMENT a (b?, c)><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        cards = dtd.child_cardinalities("a")
        assert cards["b"] == (0, 1)
        assert cards["c"] == (1, 1)

    def test_choice_cardinalities(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        cards = dtd.child_cardinalities("a")
        assert cards["b"] == (0, 1)
        assert cards["c"] == (0, 1)

    def test_nested_group_scaling(self):
        dtd = parse_dtd("<!ELEMENT a ((b, c)+)><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        cards = dtd.child_cardinalities("a")
        assert cards["b"] == (1, UNBOUNDED)

    def test_repeated_name_in_sequence(self):
        dtd = parse_dtd("<!ELEMENT a (b, b)><!ELEMENT b EMPTY>")
        assert dtd.child_cardinalities("a")["b"] == (2, 2)


class TestValidation:
    def test_valid_document(self):
        dtd = parse_dtd(SIMPLE)
        document = parse_document(
            "<review><track><name>DB</name><rev><name>A</name></rev>"
            "</track></review>")
        validate(document, dtd)  # should not raise

    def test_missing_required_child(self):
        dtd = parse_dtd(SIMPLE)
        document = parse_document(
            "<review><track><rev><name>A</name></rev></track></review>")
        with pytest.raises(ValidationError):
            validate(document, dtd)

    def test_wrong_order(self):
        dtd = parse_dtd(SIMPLE)
        document = parse_document(
            "<review><track><rev><name>A</name></rev><name>DB</name>"
            "</track></review>")
        with pytest.raises(ValidationError):
            validate(document, dtd)

    def test_text_in_element_content(self):
        dtd = parse_dtd(SIMPLE)
        document = parse_document(
            "<review>stray<track><name>DB</name><rev><name>A</name>"
            "</rev></track></review>")
        with pytest.raises(ValidationError):
            validate(document, dtd)

    def test_element_in_pcdata_content(self):
        dtd = parse_dtd(SIMPLE)
        document = parse_document(
            "<review><track><name><rev/></name><rev><name>A</name></rev>"
            "</track></review>")
        with pytest.raises(ValidationError):
            validate(document, dtd)

    def test_empty_content_model(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        with pytest.raises(ValidationError):
            validate(parse_document("<a>x</a>"), dtd)

    def test_iter_validation_errors_collects_all(self):
        dtd = parse_dtd(SIMPLE)
        document = parse_document(
            "<review><track><rev/><rev/></track></review>")
        errors = list(iter_validation_errors(document, dtd))
        assert len(errors) >= 2

    def test_choice_model_accepts_either_branch(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)+><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        validate(parse_document("<a><b/><c/><b/></a>"), dtd)
        with pytest.raises(ValidationError):
            validate(parse_document("<a/>"), dtd)


class TestAttributes:
    DTD = """
    <!ELEMENT a EMPTY>
    <!ATTLIST a
        id ID #REQUIRED
        kind (x | y) "x"
        fixed CDATA #FIXED "f">
    """

    def test_attlist_parsed(self):
        dtd = parse_dtd(self.DTD)
        defs = {d.name: d for d in dtd.attribute_defs("a")}
        assert defs["id"].required
        assert defs["kind"].enum_values == ("x", "y")
        assert defs["fixed"].default_value == "f"

    def test_required_attribute_enforced(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(ValidationError):
            validate(parse_document("<a/>"), dtd)

    def test_enum_value_enforced(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(ValidationError):
            validate(parse_document('<a id="1" kind="z"/>'), dtd)

    def test_fixed_value_enforced(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(ValidationError):
            validate(parse_document('<a id="1" fixed="g"/>'), dtd)

    def test_undeclared_attribute_rejected(self):
        dtd = parse_dtd(self.DTD)
        with pytest.raises(ValidationError):
            validate(parse_document('<a id="1" other="v"/>'), dtd)

    def test_valid_attributes(self):
        dtd = parse_dtd(self.DTD)
        validate(parse_document('<a id="1" kind="y" fixed="f"/>'), dtd)
