"""Shared fixtures: the paper's running example, small documents.

Also registers the hypothesis *settings profiles* used across the
property-test suite.  ``HYPOTHESIS_PROFILE`` selects one:

* ``dev`` (default) — 50 examples, quick local iteration;
* ``ci`` — 100 examples, what the tier-1 CI job runs;
* ``nightly`` — 500 examples, for scheduled deep runs.

All profiles disable the per-example deadline: corpus-backed
properties routinely blow the 200 ms default on shared runners.
Individual tests only override ``max_examples`` when their generator
is too expensive for even the dev budget (the planner and atomicity
suites); everything else inherits the profile unmodified.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.datagen import (
    CorpusSpec,
    generate_corpus,
    make_schema,
)
from repro.datagen.running_example import PUB_DTD, REV_DTD
from repro.relational import RelationalSchema
from repro.xtree import parse_document, parse_dtd

settings.register_profile("dev", max_examples=50, deadline=None)
settings.register_profile("ci", max_examples=100, deadline=None)
settings.register_profile("nightly", max_examples=500, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def pub_dtd():
    return parse_dtd(PUB_DTD)


@pytest.fixture(scope="session")
def rev_dtd():
    return parse_dtd(REV_DTD)


@pytest.fixture(scope="session")
def relational_schema(pub_dtd, rev_dtd) -> RelationalSchema:
    return RelationalSchema.from_dtds([pub_dtd, rev_dtd])


@pytest.fixture(scope="session")
def constraint_schema():
    """The fully compiled running-example schema (both constraints,
    submission patterns registered)."""
    return make_schema()


PUB_XML = """<dblp>
 <pub><title>Duckburg tales</title>
   <aut><name>Alice</name></aut><aut><name>Bob</name></aut></pub>
 <pub><title>Mouseton stories</title>
   <aut><name>Carol</name></aut></pub>
 <pub><title>Calisota chronicles</title>
   <aut><name>Carol</name></aut><aut><name>Dan</name></aut></pub>
</dblp>"""

REV_XML = """<review>
 <track><name>Databases</name>
  <rev><name>Alice</name>
   <sub><title>Streams</title><auts><name>Erin</name></auts></sub>
   <sub><title>Joins</title><auts><name>Frank</name></auts></sub>
  </rev>
  <rev><name>Grace</name>
   <sub><title>Views</title><auts><name>Erin</name></auts>
        <auts><name>Heidi</name></auts></sub>
  </rev>
 </track>
 <track><name>Theory</name>
  <rev><name>Alice</name>
   <sub><title>Automata</title><auts><name>Ivan</name></auts></sub>
  </rev>
 </track>
</review>"""


@pytest.fixture()
def pub_doc():
    return parse_document(PUB_XML)


@pytest.fixture()
def rev_doc():
    return parse_document(REV_XML)


@pytest.fixture()
def documents(pub_doc, rev_doc):
    return [pub_doc, rev_doc]


@pytest.fixture()
def small_corpus():
    spec = CorpusSpec(tracks=3, revs_per_track=4, subs_per_rev=3, pubs=20,
                      busy_reviewers=1, seed=42)
    return generate_corpus(spec)


@pytest.fixture()
def rng():
    return random.Random(20060328)


@pytest.fixture(autouse=True, scope="session")
def _no_lock_order_violations():
    """When the run is sanitizer-armed (``REPRO_LOCK_SANITIZER=1`` on
    the stress/faultcheck CI legs), the whole session must end with
    zero recorded ordering violations.  Tests that provoke violations
    on purpose clear them before returning."""
    yield
    from repro.analysis.concurrency import sanitizer
    leftover = sanitizer.violations()
    assert not leftover, "lock ordering violations leaked:\n" + \
        "\n".join(violation.render() for violation in leftover)
