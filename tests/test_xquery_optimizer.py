"""Unit tests for the quantified-expression join optimizer."""

import pytest

from repro.xquery.optimizer import (
    JoinPlan,
    conjuncts,
    free_variables,
    hash_keys,
    plan_for,
    probe_keys,
)
from repro.xquery.parser import parse_query
from repro.xquery.values import UntypedAtomic


class TestConjuncts:
    def test_flattens_and_tree(self):
        expression = parse_query("1 = 1 and 2 = 2 and 3 = 3")
        assert len(conjuncts(expression)) == 3

    def test_or_is_one_factor(self):
        expression = parse_query("(1 = 1 or 2 = 2) and 3 = 3")
        assert len(conjuncts(expression)) == 2


class TestFreeVariables:
    def test_varrefs_collected(self):
        assert free_variables(parse_query("$a/b/text() = $c")) \
            == {"a", "c"}

    def test_predicates_collected(self):
        assert free_variables(parse_query("//rev[name = $r]/sub")) \
            == {"r"}

    def test_flwor_binding_shadows(self):
        expression = parse_query(
            "for $x in $src return $x/text() = $y")
        assert free_variables(expression) == {"src", "y"}

    def test_quantifier_binding_shadows(self):
        expression = parse_query(
            "some $x in //a satisfies $x = $outer")
        assert free_variables(expression) == {"outer"}

    def test_function_arguments(self):
        assert free_variables(parse_query("count($d) > $n")) \
            == {"d", "n"}


class TestHashKeys:
    def test_numbers_normalize(self):
        assert hash_keys(3) == [("num", 3.0)]
        assert hash_keys(3.0) == [("num", 3.0)]

    def test_booleans_are_numeric(self):
        assert hash_keys(True) == [("num", 1.0)]

    def test_nan_never_matches(self):
        assert hash_keys(float("nan")) == []

    def test_typed_string(self):
        assert hash_keys("abc") == [("str", "abc")]

    def test_untyped_gets_both_readings(self):
        keys = hash_keys(UntypedAtomic("42"))
        assert ("str", "42") in keys and ("num", 42.0) in keys

    def test_untyped_non_numeric(self):
        assert hash_keys(UntypedAtomic("abc")) == [("str", "abc")]

    def test_untyped_matches_number_key(self):
        # the invariant the hash join relies on: items that can compare
        # equal share a key
        assert set(hash_keys(UntypedAtomic("2"))) \
            & set(hash_keys(2)) == {("num", 2.0)}

    def test_probe_keys_union(self):
        keys = probe_keys(["a", 1])
        assert ("str", "a") in keys and ("num", 1.0) in keys


class TestJoinPlan:
    def _plan(self, text):
        expression = parse_query(text)
        return JoinPlan(expression), expression

    def test_correlation_detection(self):
        plan, _ = self._plan(
            "some $r in //rev, $s in $r/sub, $p in //pub "
            "satisfies $s/title/text() = $p/title/text()")
        assert plan.correlated == [False, True, False]

    def test_factor_scheduled_at_last_variable(self):
        plan, _ = self._plan(
            "some $a in //x, $b in //y "
            "satisfies $a/v/text() = 1 and $b/w/text() = $a/v/text()")
        assert len(plan.checks_after[0]) == 1
        assert len(plan.checks_after[1]) == 1

    def test_hash_join_detected(self):
        plan, _ = self._plan(
            "some $a in //aut, $b in //rev "
            "satisfies $b/name/text() = $a/name/text()")
        assert plan.equality_for[1] is not None

    def test_no_hash_join_for_correlated_source(self):
        plan, _ = self._plan(
            "some $r in //rev, $s in $r/sub "
            "satisfies $s/title/text() = 'x'")
        assert plan.equality_for[1] is None

    def test_constant_side_counts_as_bound(self):
        plan, _ = self._plan(
            "some $a in //aut satisfies $a/name/text() = 'Bob'")
        assert plan.equality_for[0] is not None

    def test_plan_cache_by_value(self):
        _, first = self._plan("some $a in //x satisfies $a = 1")
        second = parse_query("some $a in //x satisfies $a = 1")
        assert plan_for(first) is plan_for(second)


class TestJoinSemantics:
    """The optimized path must agree with naive semantics."""

    @pytest.fixture()
    def doc(self):
        from repro.xtree import parse_document
        return parse_document(
            "<r>"
            "<a><v>1</v></a><a><v>2</v></a><a><v>3</v></a>"
            "<b><w>2</w></b><b><w>3</w></b><b><w>9</w></b>"
            "</r>")

    def test_hash_join_matches(self, doc):
        from repro.xquery.engine import query_truth
        assert query_truth(
            "some $a in //a, $b in //b "
            "satisfies $a/v/text() = $b/w/text()", doc)
        assert not query_truth(
            "some $a in //a, $b in //b "
            "satisfies $a/v/text() = $b/w/text() and $a/v/text() = '9'",
            doc)

    def test_empty_source_short_circuits(self, doc):
        from repro.xquery.engine import query_truth
        assert not query_truth(
            "some $a in //missing, $b in //b satisfies true()", doc)

    def test_disjunctive_condition_unaffected(self, doc):
        from repro.xquery.engine import query_truth
        assert query_truth(
            "some $a in //a satisfies $a/v/text() = '9' "
            "or $a/v/text() = '3'", doc)

    def test_outer_variable_in_equality(self, doc):
        from repro.xquery.engine import evaluate_query
        result = evaluate_query(
            "some $b in //b satisfies $b/w/text() = $probe", doc,
            {"probe": ["9"]})
        assert result == [True]


class TestIndexCache:
    """The document-revision-keyed hash-index cache must never serve
    stale data."""

    def test_cache_invalidated_by_mutation(self):
        from repro.xquery.engine import query_truth
        from repro.xtree import parse_document
        from repro.xtree.node import Element, Text

        doc = parse_document("<r><a><v>1</v></a><b><w>2</w></b></r>")
        query = ("some $b in //b satisfies "
                 "not(some $a in //a satisfies "
                 "$a/v/text() = $b/w/text())")
        # no a with v=2 → the negation holds for b
        assert query_truth(query, doc)
        new_a = Element("a")
        value = Element("v")
        value.append(Text("2"))
        new_a.append(value)
        doc.root.append(new_a)
        # now an a with v=2 exists; a stale index would still say True
        assert not query_truth(query, doc)
        doc.root.remove(new_a)
        assert query_truth(query, doc)

    def test_revision_counter_bumps(self):
        from repro.xtree import parse_document
        from repro.xtree.node import Element

        doc = parse_document("<r><a/></r>")
        before = doc.revision
        child = Element("b")
        doc.root.append(child)
        assert doc.revision > before
        middle = doc.revision
        doc.root.remove(child)
        assert doc.revision > middle
