"""Property-based soundness of the simplification (Theorem 1).

For any consistent database state D and any instance of the update
pattern U: ``Simp^U_Δ(Γ)`` holds in D **iff** Γ holds in D^U.  We check
this over randomized relational states of the running example, with the
Datalog evaluator as semantics oracle — independently of the XQuery
path, so the two halves of the system cross-validate.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, strategies as st

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    FactDatabase,
    Parameter as P,
    Variable as V,
    denial_holds,
)
from repro.datalog.subst import ParameterBinding
from repro.simplify import UpdatePattern, freshness_hypotheses, simp

NAMES = ["Ann", "Bob", "Cid", "Dee"]

# -- randomized relational states of the running-example schema -------------


@st.composite
def review_states(draw):
    """A small shredded rev.xml-like state plus a pub.xml-like state."""
    db = FactDatabase()
    next_id = [1]

    def fresh():
        next_id[0] += 1
        return next_id[0]

    tracks = draw(st.integers(1, 3))
    for _ in range(tracks):
        track_id = fresh()
        db.add("track", (track_id, 1, 1, f"T{track_id}"))
        for _ in range(draw(st.integers(0, 2))):
            rev_id = fresh()
            name = draw(st.sampled_from(NAMES))
            db.add("rev", (rev_id, 1, track_id, name))
            for _ in range(draw(st.integers(0, 3))):
                sub_id = fresh()
                db.add("sub", (sub_id, 1, rev_id, f"S{sub_id}"))
                for _ in range(draw(st.integers(1, 2))):
                    auts_id = fresh()
                    db.add("auts", (auts_id, 1, sub_id,
                                    draw(st.sampled_from(NAMES))))
    for _ in range(draw(st.integers(0, 3))):
        pub_id = fresh()
        db.add("pub", (pub_id, 1, 1, f"P{pub_id}"))
        for _ in range(draw(st.integers(1, 2))):
            aut_id = fresh()
            db.add("aut", (aut_id, 1, pub_id,
                           draw(st.sampled_from(NAMES))))
    return db, next_id[0]


GAMMA = [
    Denial((
        Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
        Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
        Atom("auts", (V("_5"), V("_6"), V("Is"), V("R"))),
    )),
    Denial((
        Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
        Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
        Atom("auts", (V("_5"), V("_6"), V("Is"), V("A"))),
        Atom("aut", (V("_7"), V("_8"), V("Ip"), V("R"))),
        Atom("aut", (V("_9"), V("_10"), V("Ip"), V("A"))),
    )),
    Denial((
        Atom("rev", (V("Ir"), V("_1"), V("_2"), V("_3"))),
        AggregateCondition(
            Aggregate("cnt", True, None, (),
                      (Atom("sub", (V("S1"), V("S2"), V("Ir"),
                                    V("S3"))),)),
            "gt", C(2)),
    )),
]

UPDATE = UpdatePattern(
    (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),
     Atom("auts", (P("ia"), P("pa"), P("is"), P("n")))),
    frozenset({P("is"), P("ia")}))

# the full Δ of example 6 (freshness of ids, childlessness of the new
# sub); equals freshness_hypotheses(UPDATE, schema) for the running
# example's relational schema
DELTA = freshness_hypotheses(UPDATE) + [
    Denial((Atom("auts", (V("_d1"), V("_d2"), P("is"), V("_d3"))),)),
]

SIMPLIFIED = simp(GAMMA, UPDATE, DELTA)


def _instantiate(denials, values):
    binder = ParameterBinding({P(k): C(v) for k, v in values.items()})
    return [
        Denial(tuple(binder.apply_literal(literal)
                     for literal in denial.body))
        for denial in denials
    ]


def _state_consistent(db):
    return all(denial_holds(denial, db) for denial in GAMMA)


class TestTheoremOne:
    @given(review_states(), st.sampled_from(NAMES + ["Zoe"]))
    def test_simp_agrees_with_post_check(self, state, author):
        db, max_id = state
        assume(_state_consistent(db))
        rev_rows = db.rows("rev")
        assume(rev_rows)
        target = rev_rows[0]
        values = {
            "is": max_id + 1,
            "ia": max_id + 2,
            "ir": target[0],
            "ps": 9,
            "pa": 2,
            "t": "NewSub",
            "n": author,
        }
        # optimized verdict: simplified checks evaluated BEFORE the update
        optimized_ok = all(
            denial_holds(denial, db)
            for denial in _instantiate(SIMPLIFIED, values))
        # ground truth: apply the update, evaluate the full constraints
        db.add("sub", (values["is"], values["ps"], values["ir"],
                       values["t"]))
        db.add("auts", (values["ia"], values["pa"], values["is"],
                        values["n"]))
        ground_truth_ok = _state_consistent(db)
        assert optimized_ok == ground_truth_ok

    @given(review_states())
    def test_delta_holds_for_fresh_ids(self, state):
        db, max_id = state
        values = {"is": max_id + 1, "ia": max_id + 2}
        binder = ParameterBinding({P(k): C(v) for k, v in values.items()})
        for hypothesis_denial in DELTA:
            instantiated = Denial(tuple(
                binder.apply_literal(literal)
                for literal in hypothesis_denial.body))
            assert denial_holds(instantiated, db)


class TestSimplifiedShape:
    def test_simplified_set_is_smaller(self):
        assert len(SIMPLIFIED) == 3
        assert sum(len(d.body) for d in SIMPLIFIED) \
            < sum(len(d.body) for d in GAMMA)

    def test_simplified_set_is_instantiated(self):
        for denial in SIMPLIFIED:
            assert P("ir") in denial.parameters()

    def test_no_fresh_ids_survive(self):
        for denial in SIMPLIFIED:
            assert not (denial.parameters()
                        & UPDATE.fresh_parameters)
