"""Unit tests for the denial → XQuery translation (section 6)."""

import pytest

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Parameter as P,
    Variable as V,
)
from repro.errors import CompilationError
from repro.xquery import translate_denial
from repro.xquery.engine import query_truth
from repro.xtree.node import Element


class TestStructural:
    def test_simple_atom(self, relational_schema):
        denial = Denial((Atom("pub", (V("Ip"), V("_1"), V("_2"),
                                      C("Duckburg tales"))),))
        query = translate_denial(denial, relational_schema)
        assert "some $Ip in //pub" in query.text
        assert 'title/text() = "Duckburg tales"' in query.text

    def test_child_join_becomes_nested_path(self, relational_schema):
        denial = Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
        ))
        query = translate_denial(denial, relational_schema)
        assert "$Is in $Ir/sub" in query.text

    def test_shared_parent_defined_once(self, relational_schema):
        # two aut atoms with the same pub parent, as in example 3
        denial = Denial((
            Atom("aut", (V("Ia"), V("_1"), V("Ip"), V("A"))),
            Atom("aut", (V("Ib"), V("_2"), V("Ip"), V("B"))),
            Comparison("ne", V("A"), V("B")),
        ))
        query = translate_denial(denial, relational_schema)
        assert query.text.count("/..") == 1
        assert "$Ip/aut" in query.text

    def test_unused_columns_not_defined(self, relational_schema):
        denial = Denial((Atom("sub", (V("Is"), V("_1"), V("_2"),
                                      V("_3"))),))
        query = translate_denial(denial, relational_schema)
        assert "position" not in query.text
        assert "title" not in query.text

    def test_position_column(self, relational_schema):
        denial = Denial((
            Atom("pub", (V("Ip"), V("Pos"), V("_1"), V("_2"))),
            Comparison("le", V("Pos"), C(3)),
        ))
        query = translate_denial(denial, relational_schema)
        assert "position()" in query.text
        assert "<= 3" in query.text

    def test_node_identity_comparison(self, relational_schema):
        denial = Denial((
            Atom("aut", (V("Ia"), V("_1"), V("Ip"), V("_2"))),
            Atom("aut", (V("Ib"), V("_3"), V("Ip"), V("_4"))),
            Comparison("ne", V("Ia"), V("Ib")),
        ))
        query = translate_denial(denial, relational_schema)
        assert "count(($Ia | $Ib)) = 2" in query.text

    def test_unsafe_comparison_variable_rejected(self, relational_schema):
        denial = Denial((
            Atom("pub", (V("Ip"), V("_1"), V("_2"), V("_3"))),
            Comparison("eq", V("Loose"), C(1)),
        ))
        with pytest.raises(CompilationError):
            translate_denial(denial, relational_schema)


class TestParameters:
    def test_node_parameter_placeholder(self, relational_schema):
        denial = Denial((Atom("rev", (P("ir"), V("_1"), V("_2"), P("n"))),))
        query = translate_denial(denial, relational_schema)
        assert query.parameters == {"ir": "node", "n": "value"}
        assert "%{ir}" in query.text and "%{n}" in query.text

    def test_instantiate_with_node_and_value(self, relational_schema,
                                             rev_doc):
        denial = Denial((Atom("rev", (P("ir"), V("_1"), V("_2"), P("n"))),))
        query = translate_denial(denial, relational_schema)
        target = next(rev_doc.iter_elements("rev"))
        text = query.instantiate({"ir": target, "n": "Alice"})
        assert "%{" not in text
        assert target.location_path() in text
        assert query_truth(text, rev_doc)  # first reviewer is Alice

    def test_instantiate_missing_binding_rejected(self, relational_schema):
        denial = Denial((Atom("rev", (P("ir"), V("_1"), V("_2"),
                                      V("_3"))),))
        query = translate_denial(denial, relational_schema)
        with pytest.raises(CompilationError):
            query.instantiate({})

    def test_instantiate_node_kind_requires_element(self, relational_schema):
        denial = Denial((Atom("rev", (P("ir"), V("_1"), V("_2"),
                                      V("_3"))),))
        query = translate_denial(denial, relational_schema)
        with pytest.raises(CompilationError):
            query.instantiate({"ir": "not-an-element"})

    def test_numeric_value_parameter(self, relational_schema, rev_doc):
        denial = Denial((Atom("sub", (V("Is"), P("ps"), V("_1"),
                                      V("_2"))),))
        query = translate_denial(denial, relational_schema)
        text = query.instantiate({"ps": 2})
        assert "= 2" in text
        assert query_truth(text, rev_doc)


class TestAggregateTranslation:
    def test_single_atom_count(self, relational_schema):
        denial = Denial((
            Atom("rev", (P("ir"), V("_1"), V("_2"), V("_3"))),
            AggregateCondition(
                Aggregate("cnt", True, None, (),
                          (Atom("sub", (V("S1"), V("S2"), P("ir"),
                                        V("S3"))),)),
                "gt", C(3)),
        ))
        query = translate_denial(denial, relational_schema)
        assert "count(%{ir}/sub) > 3" in query.text

    def test_chain_body_with_group(self, relational_schema):
        aggregate = Aggregate(
            "cnt", True, V("Is"), (V("R"),),
            (Atom("rev", (V("Iv"), V("_1"), V("_2"), V("R"))),
             Atom("sub", (V("Is"), V("_3"), V("Iv"), V("_4"))),))
        denial = Denial((AggregateCondition(aggregate, "gt", C(10)),))
        query = translate_denial(denial, relational_schema)
        assert "distinct-values(//rev/name/text())" in query.text
        assert "count(//rev[name/text() = $R]/sub) > 10" in query.text

    def test_branch_becomes_predicate(self, relational_schema):
        aggregate = Aggregate(
            "cnt", True, V("It"), (V("R"),),
            (Atom("track", (V("It"), V("_1"), V("_2"), V("_3"))),
             Atom("rev", (V("Iv"), V("_4"), V("It"), V("R"))),))
        denial = Denial((AggregateCondition(aggregate, "ge", C(3)),))
        query = translate_denial(denial, relational_schema)
        assert "count(//track[rev[name/text() = $R]]) >= 3" in query.text

    def test_value_target_uses_distinct_values(self, relational_schema):
        aggregate = Aggregate(
            "cnt", True, V("N"), (),
            (Atom("auts", (V("Ia"), V("_1"), V("_2"), V("N"))),))
        denial = Denial((AggregateCondition(aggregate, "gt", C(5)),))
        query = translate_denial(denial, relational_schema)
        assert "count(distinct-values(//auts/name/text())) > 5" \
            in query.text

    def test_multi_atom_row_count_rejected(self, relational_schema):
        aggregate = Aggregate(
            "cnt", False, None, (),
            (Atom("rev", (V("Iv"), V("_1"), V("_2"), V("_3"))),
             Atom("sub", (V("Is"), V("_4"), V("Iv"), V("_5"))),))
        denial = Denial((AggregateCondition(aggregate, "gt", C(1)),))
        with pytest.raises(CompilationError):
            translate_denial(denial, relational_schema)

    def test_arithmetic_bound(self, relational_schema):
        from repro.datalog import Arithmetic
        denial = Denial((
            AggregateCondition(
                Aggregate("cnt", True, V("Is"), (),
                          (Atom("sub", (V("Is"), V("_1"), V("_2"),
                                        V("_3"))),)),
                "gt", Arithmetic("-", P("c"), C(1))),
        ))
        query = translate_denial(denial, relational_schema)
        assert "(%{c} - 1)" in query.text


class TestEndToEndEvaluation:
    def test_conflict_detected_via_translation(self, relational_schema,
                                               documents):
        # Alice reviews a sub by Bob; Alice and Bob coauthored a pub
        denial = Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
            Atom("auts", (V("_5"), V("_6"), V("Is"), V("A"))),
            Atom("aut", (V("_7"), V("_8"), V("Ip"), V("R"))),
            Atom("aut", (V("_9"), V("_10"), V("Ip"), V("A"))),
        ))
        query = translate_denial(denial, relational_schema)
        assert not query_truth(query.text, documents)

    def test_self_review_query(self, relational_schema, documents):
        denial = Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("R"))),
            Atom("sub", (V("Is"), V("_3"), V("Ir"), V("_4"))),
            Atom("auts", (V("_5"), V("_6"), V("Is"), V("R"))),
        ))
        query = translate_denial(denial, relational_schema)
        assert not query_truth(query.text, documents)
