"""Differential atomicity tests: failed updates leave no trace.

The paper's headline guarantee is that consistency never depends on
rollback working halfway: an illegal or failing update must restore the
*exact* pre-call state.  These tests seed every failure mode we know —
a later operation's select resolving nowhere, an ambiguous select, a
violation mid-sequence, an exception injected via a listener — into
every checker, and compare the serialized documents before and after
the failed ``try_execute`` byte for byte.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BruteForceChecker, IntegrityGuard
from repro.datagen.running_example import make_schema
from repro.errors import (
    AmbiguousSelectError,
    SchemaError,
    UpdateApplicationError,
)
from repro.xtree import parse_document, serialize
from repro.xupdate import TransactionLog, parse_modifications
from repro.xupdate.apply import AppliedOperation, resolve_select
from tests.conftest import PUB_XML, REV_XML

CHECKERS = [IntegrityGuard, BruteForceChecker]


def multi_update(*operations: str) -> str:
    return ('<xupdate:modifications version="1.0" '
            'xmlns:xupdate="http://www.xmldb.org/xupdate">'
            + "".join(operations) + "</xupdate:modifications>")


def append_sub(select: str, title: str, author: str) -> str:
    return (f'<xupdate:append select="{select}">'
            f'<sub><title>{title}</title>'
            f'<auts><name>{author}</name></auts></sub>'
            '</xupdate:append>')


GOOD = "/review/track[1]/rev[1]"
NOWHERE = "/review/track[9]/rev[9]"
AMBIGUOUS = "//rev[1]"  # first rev of *each* track — two matches


@pytest.fixture(scope="module")
def schema():
    return make_schema()


@pytest.fixture(params=CHECKERS, ids=lambda c: c.__name__)
def checker(request, schema):
    documents = [parse_document(PUB_XML), parse_document(REV_XML)]
    return request.param(schema, documents)


def snapshot(checker) -> list[str]:
    return [serialize(document) for document in checker.documents]


class TestSeededFailures:
    def test_bad_select_on_later_operation(self, checker):
        update = multi_update(
            append_sub(GOOD, "First", "Someone New"),
            append_sub(NOWHERE, "Second", "Someone Else"))
        before = snapshot(checker)
        with pytest.raises(UpdateApplicationError):
            checker.try_execute(update)
        assert snapshot(checker) == before

    def test_ambiguous_select_on_later_operation(self, checker):
        update = multi_update(
            append_sub(GOOD, "First", "Someone New"),
            append_sub(AMBIGUOUS, "Second", "Someone Else"))
        before = snapshot(checker)
        with pytest.raises(AmbiguousSelectError):
            checker.try_execute(update)
        assert snapshot(checker) == before

    def test_violation_mid_sequence_rolls_back_earlier(self, checker):
        # the second operation makes reviewer Alice review her own
        # paper → conflict_of_interest; the legal first operation must
        # be rolled back with it
        update = multi_update(
            append_sub(GOOD, "Legal", "Someone New"),
            append_sub(GOOD, "Self Review", "Alice"))
        before = snapshot(checker)
        decision = checker.try_execute(update)
        assert not decision.legal
        assert "conflict_of_interest" in decision.violated
        assert not decision.applied
        assert snapshot(checker) == before

    def test_listener_exception_rolls_back_legal_update(self, checker):
        class Boom(RuntimeError):
            pass

        def listener(update, decision):
            raise Boom("injected listener failure")

        checker.subscribe(listener)
        before = snapshot(checker)
        with pytest.raises(Boom):
            checker.try_execute(
                multi_update(append_sub(GOOD, "Legal", "Someone New")))
        assert snapshot(checker) == before

    def test_rollback_never_runs_twice_per_record(self, checker,
                                                  monkeypatch):
        counts: dict[int, int] = {}
        original = AppliedOperation.rollback

        def counting(self):
            counts[id(self)] = counts.get(id(self), 0) + 1
            return original(self)

        monkeypatch.setattr(AppliedOperation, "rollback", counting)
        failures = [
            multi_update(append_sub(GOOD, "A", "Someone New"),
                         append_sub(NOWHERE, "B", "Someone Else")),
            multi_update(append_sub(GOOD, "C", "Someone New"),
                         append_sub(GOOD, "D", "Alice")),
        ]
        for update in failures:
            try:
                checker.try_execute(update)
            except UpdateApplicationError:
                pass
        assert counts  # something was rolled back...
        assert set(counts.values()) == {1}  # ...exactly once each

    @settings(max_examples=40)
    @given(data=st.data())
    def test_any_failure_position_restores_state(self, schema, data):
        """Property: wherever the failure lands in a multi-operation
        update, and whichever checker runs it, the serialized documents
        are byte-identical before and after the failed call."""
        checker_cls = data.draw(st.sampled_from(CHECKERS))
        total = data.draw(st.integers(min_value=1, max_value=4))
        fail_at = data.draw(st.integers(min_value=0, max_value=total - 1))
        fail_kind = data.draw(st.sampled_from(
            ["nowhere", "ambiguous", "violation"]))
        operations = []
        for index in range(total):
            if index == fail_at:
                if fail_kind == "nowhere":
                    operations.append(append_sub(NOWHERE, "x", "y"))
                elif fail_kind == "ambiguous":
                    operations.append(append_sub(AMBIGUOUS, "x", "y"))
                else:
                    operations.append(append_sub(GOOD, "x", "Alice"))
            else:
                operations.append(
                    append_sub(GOOD, f"T{index}", f"New Author {index}"))
        checker = checker_cls(
            schema, [parse_document(PUB_XML), parse_document(REV_XML)])
        before = snapshot(checker)
        try:
            decision = checker.try_execute(multi_update(*operations))
            assert not decision.legal
        except UpdateApplicationError:
            pass
        assert snapshot(checker) == before


class TestTransactionLog:
    def test_exit_without_commit_rolls_back(self, rev_doc):
        operations = parse_modifications(multi_update(
            append_sub(GOOD, "A", "B"), append_sub(GOOD, "C", "D")))
        before = serialize(rev_doc)
        with TransactionLog() as log:
            for operation in operations:
                log.apply(rev_doc, operation)
            assert serialize(rev_doc) != before
        assert serialize(rev_doc) == before
        assert log.state == "rolled-back"

    def test_commit_keeps_operations(self, rev_doc):
        operation = parse_modifications(
            multi_update(append_sub(GOOD, "A", "B")))[0]
        with TransactionLog() as log:
            log.apply(rev_doc, operation)
            log.commit()
        assert len(log) == 1
        titles = [s.first_child("title").text()
                  for s in rev_doc.iter_elements("sub")]
        assert "A" in titles

    def test_explicit_rollback_then_exit_is_safe(self, rev_doc):
        operation = parse_modifications(
            multi_update(append_sub(GOOD, "A", "B")))[0]
        before = serialize(rev_doc)
        with TransactionLog() as log:
            log.apply(rev_doc, operation)
            log.rollback()
        assert serialize(rev_doc) == before

    def test_double_rollback_rejected(self, rev_doc):
        operation = parse_modifications(
            multi_update(append_sub(GOOD, "A", "B")))[0]
        log = TransactionLog()
        log.apply(rev_doc, operation)
        log.rollback()
        with pytest.raises(UpdateApplicationError):
            log.rollback()

    def test_apply_after_commit_rejected(self, rev_doc):
        operation = parse_modifications(
            multi_update(append_sub(GOOD, "A", "B")))[0]
        log = TransactionLog()
        log.commit()
        with pytest.raises(UpdateApplicationError):
            log.apply(rev_doc, operation)

    def test_adopted_record_is_rolled_back(self, rev_doc):
        from repro.xupdate import apply_operation
        operation = parse_modifications(
            multi_update(append_sub(GOOD, "A", "B")))[0]
        before = serialize(rev_doc)
        with TransactionLog() as log:
            log.record(apply_operation(rev_doc, operation))
        assert serialize(rev_doc) == before


class TestAmbiguousSelect:
    def test_multi_match_select_rejected(self, rev_doc):
        with pytest.raises(AmbiguousSelectError):
            resolve_select(rev_doc, AMBIGUOUS)

    def test_unique_select_still_resolves(self, rev_doc):
        anchor = resolve_select(rev_doc, GOOD)
        assert anchor.tag == "rev"

    def test_apply_of_ambiguous_select_changes_nothing(self, rev_doc):
        from repro.xupdate import apply_text
        before = serialize(rev_doc)
        with pytest.raises(AmbiguousSelectError):
            apply_text(rev_doc, multi_update(append_sub(AMBIGUOUS,
                                                        "T", "A")))
        assert serialize(rev_doc) == before


class TestDuplicateRoots:
    @pytest.mark.parametrize("checker_cls", CHECKERS,
                             ids=lambda c: c.__name__)
    def test_shared_root_tag_rejected(self, schema, checker_cls):
        documents = [parse_document(REV_XML), parse_document(REV_XML)]
        with pytest.raises(SchemaError):
            checker_cls(schema, documents)
