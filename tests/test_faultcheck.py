"""Crash-consistency harness: fault matrix, equivalence, mutations.

Three layers:

* the (seed x schedule) matrix must pass the invariant battery *and*
  actually fire faults (no vacuous passes);
* with zero sites armed the instrumented pipeline must behave — and
  serialize — byte-identically to the fault-free oracle;
* mutation checks: deliberately reverting a crash-consistency fix
  (rollback-on-exit, guard checking) must make the harness fail, or
  the battery proves nothing.
"""

from __future__ import annotations

import pytest

from repro.core.guard import BruteForceChecker, IntegrityGuard
from repro.core.guard import UpdateDecision
from repro.service.store import CheckingService
from repro.testing.failpoints import fail
from repro.testing.harness import (
    SCHEDULES,
    InvariantViolation,
    run_matrix,
    run_scenario,
)
from repro.xtree.serializer import serialize
from repro.xupdate.apply import TransactionLog

pytestmark = pytest.mark.fault


class TestFaultMatrix:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed", [1, 2])
    def test_schedule_passes_battery_and_fires(self, schedule, seed):
        report = run_scenario(seed, schedule, ops=30)
        assert report.faults_fired > 0, \
            f"schedule {schedule!r} never fired — vacuous pass"
        assert report.accepted > 0
        assert report.rejected > 0

    def test_raw_spec_schedule(self):
        report = run_scenario(
            5, "xupdate.apply.post_op=every:9", ops=25)
        assert report.faults_fired > 0
        assert "xupdate.apply.post_op" in report.site_counts

    def test_run_matrix_collects_reports(self):
        seen = []
        reports = run_matrix([1], ["apply", "service"], ops=20,
                             progress=seen.append)
        assert len(reports) == 2 == len(seen)

    def test_report_repro_command(self):
        report = run_scenario(7, "apply", ops=20)
        assert report.repro_command == \
            "python -m repro faultcheck --seed 7 " \
            "--schedule apply --ops 20"
        assert "seed=7" in report.summary()


class TestFaultFreeEquivalence:
    def test_zero_armed_sites_fire_nothing(self):
        report = run_scenario(11, {}, ops=30)
        assert report.faults_fired == 0
        assert report.site_counts == {}
        assert report.accepted > 0

    def test_instrumented_path_is_byte_identical(self, documents,
                                                 constraint_schema):
        """Unarmed failpoints must not perturb the pipeline at all.

        The same update sequence through the instrumented
        ``CheckingService``/``IntegrityGuard`` stack and through the
        plain ``BruteForceChecker`` oracle (the pre-instrumentation
        reference path) must leave byte-identical documents.
        """
        from repro.datagen.running_example import submission_xupdate

        assert fail.active_sites() == {}
        updates = [
            submission_xupdate(1, 2, "Fresh Streams", "Zoe"),
            submission_xupdate(2, 1, "Fresh Automata", "Yann"),
            submission_xupdate(1, 1, "Conflicted", "Alice"),  # illegal
            submission_xupdate(1, 1, "Fresh Joins", "Xavier"),
        ]
        service = CheckingService(constraint_schema, documents)
        verdicts = [service.try_execute(u).applied for u in updates]

        from repro.xtree import parse_document
        from tests.conftest import PUB_XML, REV_XML
        oracle_docs = [parse_document(PUB_XML), parse_document(REV_XML)]
        oracle = BruteForceChecker(constraint_schema, oracle_docs)
        oracle_verdicts = [oracle.try_execute(u).applied
                           for u in updates]

        assert verdicts == oracle_verdicts == [True, True, False, True]
        assert service.snapshot() == \
            [serialize(document) for document in oracle_docs]


class TestMutations:
    """Reverted fixes must be caught, or the battery is toothless."""

    def test_dropping_rollback_on_exit_is_caught(self, monkeypatch):
        # revert the abort-by-default exit: a mid-update fault now
        # leaves the partial update in place
        monkeypatch.setattr(
            TransactionLog, "__exit__",
            lambda self, exc_type, exc, tb: False)
        with pytest.raises(InvariantViolation) as info:
            run_scenario(1, "apply", ops=40)
        assert "reproduce with:" in str(info.value)

    def test_partial_rollback_is_caught(self, monkeypatch):
        # revert to a rollback that forgets the oldest record: every
        # abort — including the apply-check-rollback probes — leaves
        # its first operation applied
        def partial_abort(self):
            for record in reversed(self._records[1:]):
                if not record.rolled_back:
                    record.rollback()
            self._state = "rolled-back"

        monkeypatch.setattr(TransactionLog, "_abort", partial_abort)
        with pytest.raises(InvariantViolation):
            run_scenario(1, "rollback", ops=40)

    def test_skipping_the_guard_check_is_caught(self, monkeypatch):
        # revert early detection entirely: every update is declared
        # legal without checking, so illegal ones get applied and the
        # brute-force oracle disagrees
        monkeypatch.setattr(
            IntegrityGuard, "_check_one",
            lambda self, operation: UpdateDecision(True,
                                                   optimized=True))
        with pytest.raises(InvariantViolation) as info:
            run_scenario(1, {}, ops=30)
        assert "verdict-agreement" in str(info.value)


class TestFaultcheckCli:
    def _main(self, argv):
        from repro.cli import main
        return main(argv)

    def test_passing_run(self, capsys):
        code = self._main(["faultcheck", "--seed", "1",
                           "--schedule", "apply", "--ops", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "faultcheck passed" in out

    def test_list_sites(self, capsys):
        assert self._main(["faultcheck", "--list-sites"]) == 0
        assert "xupdate.apply.pre_op" in capsys.readouterr().out

    def test_list_schedules(self, capsys):
        assert self._main(["faultcheck", "--list-schedules"]) == 0
        out = capsys.readouterr().out
        for name in SCHEDULES:
            assert name in out

    def test_bad_schedule_spec(self, capsys):
        code = self._main(["faultcheck", "--seed", "1",
                           "--schedule", "no.such.site=count:1"])
        assert code == 2
        assert "unknown failpoint site" in capsys.readouterr().err

    def test_failure_writes_repro_file(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.setattr(
            TransactionLog, "__exit__",
            lambda self, exc_type, exc, tb: False)
        repro_file = tmp_path / "repro.txt"
        code = self._main(["faultcheck", "--seed", "1",
                           "--schedule", "apply", "--ops", "40",
                           "--repro-file", str(repro_file)])
        assert code == 1
        assert "FAULTCHECK FAILED" in capsys.readouterr().err
        command = repro_file.read_text().strip()
        assert "repro faultcheck --seed 1" in command

    def test_crash_restart_single_site(self, capsys):
        code = self._main(["faultcheck", "--crash-restart",
                           "--seed", "1",
                           "--site", "service.store.pre_commit_append",
                           "--ops", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restart-and-replay" in out
        assert "faultcheck passed" in out

    def test_site_without_crash_restart_rejected(self, capsys):
        code = self._main(["faultcheck", "--seed", "1",
                           "--site", "persistence.pre_fsync"])
        assert code == 2
        assert "--crash-restart" in capsys.readouterr().err
