"""Properties of the consistent-hash ring behind the sharded service.

The ring carries two load-bearing promises:

* **single ownership** — every uid maps to exactly one live worker,
  deterministically, on every process that builds the same ring (the
  router and every worker re-derive it independently and must agree);
* **minimal movement** — growing the ring from N to N+1 workers moves
  keys *only onto the new worker*, and only about 1/(N+1) of them.

The first group are exact properties (hypothesis); the movement
*fraction* is statistical, so it is pinned on fixed seeds with slack.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service.net import HashRing
from repro.service.net.ring import DEFAULT_REPLICAS

uids = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="\x00"),
    min_size=1, max_size=40)


@given(st.lists(uids, min_size=1, max_size=50, unique=True),
       st.integers(min_value=1, max_value=8))
def test_every_uid_has_exactly_one_owner(keys, workers):
    ring = HashRing(range(workers))
    owners = {uid: ring.owner(uid) for uid in keys}
    assert all(0 <= owner < workers for owner in owners.values())
    # the bulk helper agrees with per-uid lookups, key for key
    assert ring.assignment(keys) == owners


@given(st.lists(uids, min_size=1, max_size=50),
       st.integers(min_value=1, max_value=8))
def test_independent_rings_agree(keys, workers):
    """The router and every worker build the ring separately; routing
    only works if all of them derive the same owner for every uid."""
    first = HashRing(range(workers))
    second = HashRing(range(workers))
    for uid in keys:
        assert first.owner(uid) == second.owner(uid)


@given(st.lists(uids, min_size=1, max_size=50),
       st.integers(min_value=1, max_value=8))
def test_resize_moves_keys_only_to_the_new_node(keys, workers):
    """Exact (not statistical) minimal-movement property: adding one
    node never reshuffles keys between the old nodes."""
    before = HashRing(range(workers))
    after = HashRing(range(workers + 1))
    for uid in keys:
        old, new = before.owner(uid), after.owner(uid)
        if old != new:
            assert new == workers, (
                f"{uid!r} moved {old} -> {new}, not to the new node")


@given(st.integers(min_value=1, max_value=8))
def test_ring_accessors(workers):
    ring = HashRing(range(workers))
    assert ring.node_count == workers
    assert ring.nodes() == list(range(workers))
    assert ring.replicas == DEFAULT_REPLICAS


def test_empty_ring_is_rejected():
    with pytest.raises(ValueError):
        HashRing([])


@pytest.mark.parametrize("workers", [1, 2, 3, 4, 7])
def test_resize_moves_about_one_over_n_plus_one(workers):
    """Statistical half of minimal movement: the moved fraction tracks
    the ideal 1/(N+1).  With the default replica count the measured
    ratio stays within ~±15% of ideal; the bounds leave 2x slack."""
    rng = random.Random(0xEDB7 + workers)
    sample = [f"uid-{rng.randrange(10 ** 12)}" for _ in range(4000)]
    before = HashRing(range(workers))
    after = HashRing(range(workers + 1))
    moved = sum(1 for uid in sample
                if before.owner(uid) != after.owner(uid))
    ideal = 1 / (workers + 1)
    fraction = moved / len(sample)
    assert fraction <= 1.5 * ideal, (
        f"resize {workers}->{workers + 1} moved {fraction:.3f} of the "
        f"sample; ideal is {ideal:.3f}")
    assert fraction >= 0.5 * ideal, (
        f"resize {workers}->{workers + 1} moved only {fraction:.3f}; "
        "the new node is starving")


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_load_spread_is_roughly_even(workers):
    """No worker hoards or starves: with the default virtual-node
    count every node's share of a large sample stays within a factor
    of ~2 of fair."""
    rng = random.Random(0x2006 + workers)
    sample = [f"tenant-{rng.randrange(10 ** 12)}" for _ in range(4000)]
    ring = HashRing(range(workers))
    counts = {node: 0 for node in range(workers)}
    for uid in sample:
        counts[ring.owner(uid)] += 1
    fair = len(sample) / workers
    for node, count in counts.items():
        assert 0.4 * fair <= count <= 2.0 * fair, (
            f"worker {node} owns {count} of {len(sample)} "
            f"(fair share {fair:.0f})")
