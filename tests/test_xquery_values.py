"""Unit tests for the XDM value model (repro.xquery.values)."""

import pytest

from repro.errors import XQueryEvaluationError
from repro.xquery.values import (
    UntypedAtomic,
    atomize,
    compare_atomics,
    effective_boolean_value,
    general_compare,
    string_value,
    to_number,
)
from repro.xtree.node import Element, Text


class TestStringValue:
    def test_element_string_value_is_descendant_text(self):
        inner = Element("name", children=[Text("Ada")])
        outer = Element("aut", children=[inner, Text("!")])
        assert string_value(outer) == "Ada!"

    def test_booleans(self):
        assert string_value(True) == "true"
        assert string_value(False) == "false"

    def test_integral_float(self):
        assert string_value(3.0) == "3"
        assert string_value(3.5) == "3.5"


class TestAtomize:
    def test_nodes_become_untyped(self):
        element = Element("v", children=[Text("42")])
        atoms = atomize([element, "typed", 7])
        assert isinstance(atoms[0], UntypedAtomic)
        assert atoms[1] == "typed" and not isinstance(atoms[1],
                                                      UntypedAtomic)
        assert atoms[2] == 7


class TestEffectiveBooleanValue:
    def test_empty_is_false(self):
        assert effective_boolean_value([]) is False

    def test_node_first_is_true(self):
        assert effective_boolean_value([Element("a"), "x"]) is True

    def test_singleton_values(self):
        assert effective_boolean_value([True]) is True
        assert effective_boolean_value([0]) is False
        assert effective_boolean_value([0.5]) is True
        assert effective_boolean_value([""]) is False
        assert effective_boolean_value(["x"]) is True

    def test_nan_is_false(self):
        assert effective_boolean_value([float("nan")]) is False

    def test_multi_atomic_is_error(self):
        with pytest.raises(XQueryEvaluationError):
            effective_boolean_value([1, 2])


class TestToNumber:
    def test_parses_strings(self):
        assert to_number(" 42 ") == 42.0
        assert to_number("1.5") == 1.5

    def test_non_numeric_is_nan(self):
        assert to_number("abc") != to_number("abc")

    def test_booleans(self):
        assert to_number(True) == 1.0


class TestCompareAtomics:
    def test_untyped_vs_number_is_numeric(self):
        assert compare_atomics("=", UntypedAtomic("02"), 2)
        assert compare_atomics("<", UntypedAtomic("9"), 10)

    def test_untyped_vs_untyped_is_textual(self):
        assert not compare_atomics("=", UntypedAtomic("02"),
                                   UntypedAtomic("2"))
        assert compare_atomics("<", UntypedAtomic("10"),
                               UntypedAtomic("9"))  # string order

    def test_typed_string_vs_number_never_equal(self):
        assert not compare_atomics("=", "2", 2)
        assert compare_atomics("!=", "2", 2)

    def test_typed_string_vs_number_not_ordered(self):
        with pytest.raises(XQueryEvaluationError):
            compare_atomics("<", "2", 2)

    def test_booleans_not_ordered(self):
        with pytest.raises(XQueryEvaluationError):
            compare_atomics("<", True, False)


class TestGeneralCompare:
    def test_existential_semantics(self):
        assert general_compare("=", [1, 2, 3], [5, 3])
        assert not general_compare("=", [1, 2], [5, 3])

    def test_empty_sequences_never_compare(self):
        assert not general_compare("=", [], [1])
        assert not general_compare("!=", [1], [])

    def test_nodes_atomized(self):
        element = Element("v", children=[Text("7")])
        assert general_compare("=", [element], [7])
