"""Unit tests for the fact database and the denial evaluator."""

import pytest

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    FactDatabase,
    Parameter as P,
    Variable as V,
    denial_holds,
    denial_violations,
)
from repro.errors import DatalogEvaluationError


@pytest.fixture()
def review_db():
    db = FactDatabase()
    db.add("track", (1, 1, 0, "DB"))
    db.add("track", (2, 2, 0, "IR"))
    db.add("rev", (10, 2, 1, "Alice"))
    db.add("rev", (11, 3, 1, "Bob"))
    db.add("rev", (12, 2, 2, "Alice"))
    for index in range(3):
        db.add("sub", (20 + index, index + 2, 10, f"T{index}"))
    db.add("sub", (30, 2, 11, "S0"))
    return db


class TestFactDatabase:
    def test_add_and_rows(self, review_db):
        assert review_db.count("rev") == 3
        assert review_db.contains("rev", (10, 2, 1, "Alice"))

    def test_lookup_by_column(self, review_db):
        rows = list(review_db.lookup("rev", {3: "Alice"}))
        assert {row[0] for row in rows} == {10, 12}

    def test_lookup_multiple_columns(self, review_db):
        rows = list(review_db.lookup("rev", {2: 1, 3: "Alice"}))
        assert [row[0] for row in rows] == [10]

    def test_lookup_unknown_predicate(self, review_db):
        assert list(review_db.lookup("nope", {0: 1})) == []

    def test_index_maintained_after_add(self, review_db):
        list(review_db.lookup("rev", {3: "Alice"}))  # build index
        review_db.add("rev", (13, 4, 2, "Alice"))
        rows = list(review_db.lookup("rev", {3: "Alice"}))
        assert {row[0] for row in rows} == {10, 12, 13}

    def test_remove_updates_index(self, review_db):
        list(review_db.lookup("rev", {3: "Alice"}))
        assert review_db.remove("rev", (10, 2, 1, "Alice"))
        rows = list(review_db.lookup("rev", {3: "Alice"}))
        assert {row[0] for row in rows} == {12}

    def test_remove_missing_returns_false(self, review_db):
        assert not review_db.remove("rev", (99, 9, 9, "Nobody"))

    def test_total_facts(self, review_db):
        assert review_db.total_facts() == 9


class TestConjunctiveEvaluation:
    def test_join_through_parent(self, review_db):
        # reviewers with at least one sub
        denial = Denial((
            Atom("rev", (V("I"), V("A"), V("B"), V("R"))),
            Atom("sub", (V("S"), V("C"), V("I"), V("T"))),
        ))
        names = {s[V("R")].value for s in denial_violations(denial,
                                                            review_db)}
        assert names == {"Alice", "Bob"}

    def test_constants_filter(self, review_db):
        denial = Denial((Atom("rev", (V("I"), V("A"), V("B"), C("Bob"))),))
        assert len(denial_violations(denial, review_db)) == 1

    def test_comparison_pruning(self, review_db):
        denial = Denial((
            Atom("rev", (V("I"), V("Pos"), V("B"), V("R"))),
            Comparison("gt", V("Pos"), C(2)),
        ))
        violations = denial_violations(denial, review_db)
        assert [s[V("I")].value for s in violations] == [11]

    def test_equality_can_bind(self, review_db):
        denial = Denial((
            Comparison("eq", V("R"), C("Alice")),
            Atom("rev", (V("I"), V("A"), V("B"), V("R"))),
        ))
        assert len(denial_violations(denial, review_db)) == 2

    def test_limit_stops_early(self, review_db):
        denial = Denial((Atom("rev", (V("I"), V("A"), V("B"), V("R"))),))
        assert len(denial_violations(denial, review_db, limit=1)) == 1

    def test_holds(self, review_db):
        ok = Denial((Atom("rev", (V("I"), V("A"), V("B"), C("Zoe"))),))
        assert denial_holds(ok, review_db)

    def test_same_variable_twice_in_atom(self, review_db):
        db = FactDatabase()
        db.add("p", (1, 1))
        db.add("p", (1, 2))
        denial = Denial((Atom("p", (V("X"), V("X"))),))
        assert len(denial_violations(denial, db)) == 1

    def test_unbound_parameter_rejected(self, review_db):
        denial = Denial((Atom("rev", (P("ir"), V("A"), V("B"), V("R"))),))
        with pytest.raises(DatalogEvaluationError):
            denial_violations(denial, review_db)

    def test_unsafe_comparison_rejected(self, review_db):
        denial = Denial((Comparison("ne", V("X"), V("Y")),))
        with pytest.raises(DatalogEvaluationError):
            denial_violations(denial, review_db)

    def test_mixed_type_comparison_is_false_not_error(self, review_db):
        denial = Denial((
            Atom("rev", (V("I"), V("A"), V("B"), V("R"))),
            Comparison("lt", V("R"), C(5)),  # name < number
        ))
        assert denial_holds(denial, review_db)


class TestAggregateEvaluation:
    def _count_subs(self, parent, distinct=True, op="gt", bound=2):
        aggregate = Aggregate("cnt", distinct, None, (),
                              (Atom("sub", (V("S"), V("C"), parent,
                                            V("T"))),))
        return AggregateCondition(aggregate, op, C(bound))

    def test_pinned_group_count(self, review_db):
        denial = Denial((
            Atom("rev", (V("I"), V("A"), V("B"), V("R"))),
            self._count_subs(V("I")),
        ))
        violations = denial_violations(denial, review_db)
        assert [s[V("R")].value for s in violations] == ["Alice"]

    def test_zero_count_group(self, review_db):
        denial = Denial((
            Atom("rev", (V("I"), V("A"), V("B"), C("Alice"))),
            Atom("track", (V("B"), V("D"), V("E"), C("IR"))),
            self._count_subs(V("I"), op="lt", bound=1),
        ))
        # Alice in IR has no subs: count 0 < 1 → violation
        assert not denial_holds(denial, review_db)

    def test_group_by_enumeration(self, review_db):
        aggregate = Aggregate(
            "cnt", True, V("I"), (V("R"),),
            (Atom("rev", (V("I"), V("A"), V("B"), V("R"))),))
        denial = Denial((AggregateCondition(aggregate, "ge", C(2)),))
        violations = denial_violations(denial, review_db)
        assert [s[V("R")].value for s in violations] == ["Alice"]

    def test_two_correlated_aggregates(self, review_db):
        tracks = Aggregate(
            "cnt", True, V("It"), (V("R"),),
            (Atom("rev", (V("Iv"), V("A"), V("It"), V("R"))),))
        subs = Aggregate(
            "cnt", True, V("Is"), (V("R"),),
            (Atom("rev", (V("I2"), V("B"), V("C"), V("R"))),
             Atom("sub", (V("Is"), V("D"), V("I2"), V("T"))),))
        denial = Denial((
            AggregateCondition(tracks, "ge", C(2)),
            AggregateCondition(subs, "gt", C(2)),
        ))
        violations = denial_violations(denial, review_db)
        assert [s[V("R")].value for s in violations] == ["Alice"]

    def test_sum_aggregate(self):
        db = FactDatabase()
        db.add("sale", (1, "east", 10))
        db.add("sale", (2, "east", 20))
        db.add("sale", (3, "west", 5))
        aggregate = Aggregate(
            "sum", False, V("Amount"), (V("Region"),),
            (Atom("sale", (V("Id"), V("Region"), V("Amount"))),))
        denial = Denial((AggregateCondition(aggregate, "gt", C(25)),))
        violations = denial_violations(denial, db)
        assert [s[V("Region")].value for s in violations] == ["east"]

    def test_distinct_value_count(self):
        db = FactDatabase()
        db.add("aut", (1, 1, 1, "Ann"))
        db.add("aut", (2, 2, 1, "Ann"))
        db.add("aut", (3, 3, 1, "Ben"))
        aggregate = Aggregate(
            "cnt", True, V("N"), (),
            (Atom("aut", (V("I"), V("P"), V("Q"), V("N"))),))
        denial = Denial((AggregateCondition(aggregate, "gt", C(2)),))
        assert denial_holds(denial, db)  # only 2 distinct names

    def test_max_min_avg(self):
        db = FactDatabase()
        for index, value in enumerate([3, 9, 6]):
            db.add("m", (index, value))
        for func, op, bound, violated in [
                ("max", "gt", 8, True), ("min", "lt", 2, False),
                ("avg", "ge", 6, True)]:
            aggregate = Aggregate(func, False, V("X"), (),
                                  (Atom("m", (V("I"), V("X"))),))
            denial = Denial((AggregateCondition(aggregate, op, C(bound)),))
            assert (not denial_holds(denial, db)) is violated
