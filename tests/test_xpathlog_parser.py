"""Unit tests for the XPathLog lexer/parser and DNF normalization."""

import pytest

from repro.errors import XPathLogError
from repro.xpathlog import parse_constraint, parse_path
from repro.xpathlog.ast import (
    AggregateComparison,
    AndCondition,
    ComparisonCondition,
    OrCondition,
    PathCondition,
    normalize_disjuncts,
)


class TestPaths:
    def test_absolute_descendant(self):
        path = parse_path("//rev/sub")
        assert path.absolute
        assert path.descendant_flags == (True, False)
        assert [s.nodetest for s in path.steps] == ["rev", "sub"]

    def test_text_and_position_steps(self):
        path = parse_path("//pub/title/text()")
        assert path.steps[-1].axis == "text"
        path = parse_path("//pub/position()")
        assert path.steps[-1].axis == "position"

    def test_parent_and_attribute(self):
        path = parse_path("//aut/../@kind")
        assert path.steps[1].axis == "parent"
        assert path.steps[2].axis == "attribute"
        assert path.steps[2].nodetest == "kind"

    def test_binding(self):
        path = parse_path("//rev/name/text() -> R")
        assert path.steps[-1].binding == "R"

    def test_unicode_arrow(self):
        path = parse_path("//rev/name/text() → R")
        assert path.steps[-1].binding == "R"

    def test_qualifier(self):
        path = parse_path('//pub[title = "X"]/aut')
        assert len(path.steps[0].qualifiers) == 1

    def test_positional_qualifier_sugar(self):
        path = parse_path("/review/track[2]")
        qualifier = path.steps[1].qualifiers[0]
        assert isinstance(qualifier, ComparisonCondition)

    def test_unknown_node_function_rejected(self):
        with pytest.raises(XPathLogError):
            parse_path("//pub/last()")


class TestConstraints:
    def test_conjunction(self):
        constraint = parse_constraint("<- //pub /\\ //rev")
        assert isinstance(constraint.body, AndCondition)

    def test_keywords_and_or(self):
        constraint = parse_constraint("<- //pub and //rev or //track")
        assert isinstance(constraint.body, OrCondition)

    def test_unicode_connectives(self):
        constraint = parse_constraint("← //pub ∧ //rev")
        assert isinstance(constraint.body, AndCondition)

    def test_comparison_operand_kinds(self):
        constraint = parse_constraint('<- A = "x" /\\ B != 3 /\\ C <= D')
        items = constraint.body.items
        assert all(isinstance(item, ComparisonCondition) for item in items)

    def test_variable_alone_rejected(self):
        with pytest.raises(XPathLogError):
            parse_constraint("<- A")

    def test_missing_arrow_head_rejected(self):
        with pytest.raises(XPathLogError):
            parse_constraint("//pub")

    def test_aggregate(self):
        constraint = parse_constraint(
            "<- Cnt_D{[R]; //rev[/name/text() -> R]/sub} > 10")
        body = constraint.body
        assert isinstance(body, AggregateComparison)
        assert body.func == "cnt" and body.distinct
        assert body.group_by == ("R",)
        assert body.bound == 10

    def test_aggregate_with_term(self):
        constraint = parse_constraint(
            "<- Sum{X [R]; //rev[/name/text() -> R]/sub/position() -> X} > 5")
        assert constraint.body.term == "X"

    def test_aggregate_without_bound_rejected(self):
        with pytest.raises(XPathLogError):
            parse_constraint("<- Cnt_D{[R]; //rev}")

    def test_source_preserved(self):
        text = "<- //pub"
        assert parse_constraint(text).source == text


class TestNormalization:
    def test_top_level_disjunction_splits(self):
        constraint = parse_constraint('<- //pub /\\ (A = "x" \\/ A = "y")')
        dnf = normalize_disjuncts(constraint.body)
        assert len(dnf) == 2
        assert all(len(conjunct) == 2 for conjunct in dnf)

    def test_nested_disjunction_distributes(self):
        constraint = parse_constraint(
            '<- (//pub \\/ //rev) /\\ (//track \\/ //sub)')
        assert len(normalize_disjuncts(constraint.body)) == 4

    def test_qualifier_disjunction_hoisted(self):
        constraint = parse_constraint(
            '<- //pub[title = "X" \\/ title = "Y"]/aut')
        dnf = normalize_disjuncts(constraint.body)
        assert len(dnf) == 2
        for conjunct in dnf:
            assert isinstance(conjunct[0], PathCondition)
            assert len(conjunct[0].path.steps[0].qualifiers) == 1

    def test_conjunction_flattens(self):
        constraint = parse_constraint("<- //pub /\\ //rev /\\ //track")
        dnf = normalize_disjuncts(constraint.body)
        assert len(dnf) == 1 and len(dnf[0]) == 3

    def test_paper_example_1_has_two_disjuncts(self):
        from repro.datagen.running_example import CONFLICT_OF_INTEREST
        constraint = parse_constraint(CONFLICT_OF_INTEREST)
        assert len(normalize_disjuncts(constraint.body)) == 2
