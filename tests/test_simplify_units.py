"""Unit tests for After, Optimize and the update-pattern machinery."""

import pytest

from repro.datalog import (
    Aggregate,
    AggregateCondition,
    Arithmetic,
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Parameter as P,
    Variable as V,
)
from repro.errors import SimplificationError
from repro.simplify import (
    UpdatePattern,
    after,
    freshness_hypotheses,
    normalize_denial,
    optimize,
    simp,
)
from repro.simplify.optimize import ALWAYS_VIOLATED_BODY, always_violated


class TestUpdatePattern:
    def test_requires_ground_atoms(self):
        with pytest.raises(SimplificationError):
            UpdatePattern((Atom("p", (V("X"),)),))

    def test_parameters_collected(self):
        pattern = UpdatePattern((Atom("p", (P("a"), C(1))),))
        assert pattern.parameters() == {P("a")}

    def test_additions_for(self):
        pattern = UpdatePattern((Atom("p", (P("a"),)),
                                 Atom("q", (P("b"),))))
        assert len(pattern.additions_for("p")) == 1
        assert pattern.additions_for("r") == ()


class TestFreshnessHypotheses:
    def test_without_schema_only_id_hypotheses(self):
        pattern = UpdatePattern(
            (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),),
            frozenset({P("is")}))
        delta = freshness_hypotheses(pattern)
        assert len(delta) == 1
        assert delta[0].atoms()[0].args[0] == P("is")

    def test_non_fresh_parameters_get_no_hypotheses(self):
        pattern = UpdatePattern(
            (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),))
        assert freshness_hypotheses(pattern) == []

    def test_schema_adds_child_hypotheses(self, relational_schema):
        pattern = UpdatePattern(
            (Atom("rev", (P("iv"), P("pv"), P("it"), P("n"))),),
            frozenset({P("iv")}))
        delta = freshness_hypotheses(pattern, relational_schema)
        predicates = sorted(d.atoms()[0].predicate for d in delta)
        assert predicates == ["rev", "sub"]  # rev id + sub children


class TestAfterAtoms:
    def test_two_updated_atoms_give_product(self):
        constraint = Denial((
            Atom("p", (V("X"),)),
            Atom("q", (V("X"),)),
        ))
        update = UpdatePattern((Atom("p", (P("a"),)),
                                Atom("q", (P("b"),))))
        assert len(after([constraint], update)) == 4

    def test_two_additions_same_predicate(self):
        constraint = Denial((Atom("p", (V("X"),)),))
        update = UpdatePattern((Atom("p", (P("a"),)),
                                Atom("p", (P("b"),))))
        assert len(after([constraint], update)) == 3

    def test_arity_mismatch_rejected(self):
        constraint = Denial((Atom("p", (V("X"),)),))
        update = UpdatePattern((Atom("p", (P("a"), P("b"))),))
        with pytest.raises(SimplificationError):
            after([constraint], update)


class TestAfterAggregates:
    def _workload(self, op="gt", bound=4, func="cnt", distinct=True):
        return Denial((
            Atom("rev", (V("Ir"), V("_1"), V("_2"), V("_3"))),
            AggregateCondition(
                Aggregate(func, distinct, None, (),
                          (Atom("sub", (V("S1"), V("S2"), V("Ir"),
                                        V("S3"))),)),
                op, C(bound)),
        ))

    def _update(self, fresh=True):
        params = frozenset({P("is")}) if fresh else frozenset()
        return UpdatePattern(
            (Atom("sub", (P("is"), P("ps"), P("ir"), P("t"))),), params)

    def test_case_split_produces_original_plus_match(self):
        cases = after([self._workload()], self._update())
        assert len(cases) == 2

    def test_bound_adjusted_in_match_case(self):
        cases = after([self._workload()], self._update())
        adjusted = cases[1].aggregate_conditions()[0]
        assert adjusted.bound == C(3)

    def test_group_instantiated_in_match_case(self):
        cases = after([self._workload()], self._update())
        rev_atom = cases[1].atoms()[0]
        assert rev_atom.args[0] == P("ir")

    def test_non_monotone_op_rejected(self):
        with pytest.raises(SimplificationError):
            after([self._workload(op="lt")], self._update())

    def test_distinct_count_requires_fresh_id(self):
        with pytest.raises(SimplificationError):
            after([self._workload()], self._update(fresh=False))

    def test_plain_count_does_not_require_freshness(self):
        cases = after([self._workload(distinct=False)],
                      self._update(fresh=False))
        assert len(cases) == 2

    def test_untouched_aggregate_left_alone(self):
        constraint = self._workload()
        update = UpdatePattern((Atom("pub", (P("i"), P("p"), P("d"),
                                             P("t"))),))
        assert after([constraint], update) == [constraint]

    def test_residual_atoms_hoisted(self):
        constraint = Denial((
            AggregateCondition(
                Aggregate("cnt", True, V("Is"), (V("R"),),
                          (Atom("rev", (V("Iv"), V("_1"), V("_2"),
                                        V("R"))),
                           Atom("sub", (V("Is"), V("_3"), V("Iv"),
                                        V("_4"))),)),
                "gt", C(10)),
        ))
        cases = after([constraint], self._update())
        match = cases[1]
        hoisted = [a for a in match.atoms() if a.predicate == "rev"]
        assert hoisted and hoisted[0].args[0] == P("ir")

    def test_sum_contribution_adjusts_bound_symbolically(self):
        constraint = Denial((
            AggregateCondition(
                Aggregate("sum", False, V("Amt"), (),
                          (Atom("sale", (V("I"), V("Amt"))),)),
                "gt", C(100)),
        ))
        update = UpdatePattern((Atom("sale", (P("i"), P("v"))),),
                               frozenset({P("i")}))
        cases = after([constraint], update)
        bound = cases[1].aggregate_conditions()[0].bound
        assert isinstance(bound, Arithmetic)

    def test_self_join_on_updated_predicate_rejected(self):
        constraint = Denial((
            AggregateCondition(
                Aggregate("cnt", True, V("A"), (),
                          (Atom("sub", (V("A"), V("_1"), V("_2"),
                                        V("_3"))),
                           Atom("sub", (V("B"), V("_4"), V("_5"),
                                        V("_6"))),)),
                "gt", C(1)),
        ))
        with pytest.raises(SimplificationError):
            after([constraint], self._update())


class TestNormalize:
    def test_equality_substitution(self):
        denial = Denial((
            Atom("p", (V("X"), V("Y"))),
            Comparison("eq", V("X"), C(1)),
        ))
        assert normalize_denial(denial) == Denial((
            Atom("p", (C(1), V("Y"))),))

    def test_contradiction_drops_denial(self):
        denial = Denial((
            Atom("p", (V("X"),)),
            Comparison("eq", V("X"), C(1)),
            Comparison("eq", V("X"), C(2)),
        ))
        assert normalize_denial(denial) is None

    def test_parameter_self_inequality_is_contradiction(self):
        denial = Denial((Comparison("ne", P("t"), P("t")),))
        assert normalize_denial(denial) is None

    def test_residual_parameter_equality_kept(self):
        denial = Denial((Atom("p", (P("a"),)),
                         Comparison("eq", P("a"), P("b"))))
        normal = normalize_denial(denial)
        assert normal is not None and len(normal.comparisons()) == 1

    def test_empty_body_becomes_always_violated(self):
        denial = Denial((Comparison("eq", C(1), C(1)),))
        normal = normalize_denial(denial)
        assert normal is not None and always_violated(normal)

    def test_duplicates_removed(self):
        atom = Atom("p", (V("X"),))
        assert normalize_denial(Denial((atom, atom))) == Denial((atom,))

    def test_trivial_aggregate_bounds(self):
        aggregate = Aggregate("cnt", False, None, (),
                              (Atom("p", (V("X"),)),))
        trivially_true = Denial((
            Atom("q", (V("Y"),)),
            AggregateCondition(aggregate, "ge", C(0)),
        ))
        assert normalize_denial(trivially_true) == Denial((
            Atom("q", (V("Y"),)),))
        impossible = Denial((AggregateCondition(aggregate, "lt", C(0)),))
        assert normalize_denial(impossible) is None


class TestOptimize:
    def test_trusted_removes_copies(self):
        constraint = Denial((Atom("p", (V("X"),)),))
        assert optimize([constraint], [constraint]) == []

    def test_variants_collapse(self):
        first = Denial((Atom("p", (V("X"), P("i"))),))
        second = Denial((Atom("p", (V("Y"), P("i"))),))
        assert len(optimize([first, second])) == 1

    def test_stronger_denial_wins(self):
        strong = Denial((Atom("p", (V("X"),)),))
        weak = Denial((Atom("p", (V("Y"),)), Atom("q", (V("Y"),))))
        result = optimize([weak, strong])
        assert result == [strong]

    def test_always_violated_short_circuits(self):
        result = optimize([
            Denial(ALWAYS_VIOLATED_BODY),
            Denial((Atom("p", (V("X"),)),)),
        ])
        assert len(result) == 1 and always_violated(result[0])


class TestSimpSoundnessCorner:
    def test_insertion_violating_unconditionally(self):
        # a constraint forbidding any p-tuple at all
        constraint = Denial((Atom("p", (V("X"),)),))
        update = UpdatePattern((Atom("p", (P("a"),)),))
        result = simp([constraint], update)
        assert len(result) == 1 and always_violated(result[0])
