"""Integration tests for the design-time schema and the run-time guards."""

import pytest

from repro.core import BruteForceChecker, DatalogChecker, IntegrityGuard
from repro.datagen.running_example import submission_xupdate
from repro.datagen.workload import illegal_submission, legal_submission
from repro.errors import IntegrityViolationError
from repro.xtree import parse_document, serialize


class TestConstraintSchema:
    def test_constraints_compiled(self, constraint_schema):
        names = [c.name for c in constraint_schema.constraints]
        assert names == ["conflict_of_interest", "conference_workload"]
        conflict = constraint_schema.constraint("conflict_of_interest")
        assert len(conflict.denials) == 2
        assert len(conflict.full_queries) == 2

    def test_patterns_registered(self, constraint_schema):
        assert len(constraint_schema.patterns) == 2
        for checks in constraint_schema.patterns.values():
            assert not checks.fallback
            assert len(checks.optimized) == 2

    def test_optimized_checks_have_parameters(self, constraint_schema):
        checks = next(iter(constraint_schema.patterns.values()))
        for check in checks.optimized:
            for query in check.queries:
                assert "ir" in query.parameters

    def test_registering_same_pattern_twice_is_idempotent(
            self, constraint_schema):
        count = len(constraint_schema.patterns)
        constraint_schema.register_pattern(
            submission_xupdate(2, 2, "again", "someone"))
        assert len(constraint_schema.patterns) == count

    def test_describe_mentions_simplified_checks(self, constraint_schema):
        text = constraint_schema.describe()
        assert "rev(ir,_,_,n)" in text
        assert "brute-force" not in text


class TestIntegrityGuard:
    def test_legal_update_applied(self, constraint_schema, documents, rng):
        guard = IntegrityGuard(constraint_schema, documents)
        rev_doc = documents[1]
        before = len(list(rev_doc.iter_elements("sub")))
        decision = guard.try_execute(legal_submission(rev_doc, rng))
        assert decision.legal and decision.applied and decision.optimized
        assert len(list(rev_doc.iter_elements("sub"))) == before + 1

    def test_illegal_update_never_applied(self, constraint_schema,
                                          documents, rng):
        guard = IntegrityGuard(constraint_schema, documents)
        rev_doc = documents[1]
        snapshot = serialize(rev_doc)
        decision = guard.try_execute(
            illegal_submission(rev_doc, rng, "conflict"))
        assert not decision.legal
        assert decision.violated == ["conflict_of_interest"]
        assert not decision.applied and not decision.rolled_back
        assert serialize(rev_doc) == snapshot

    def test_coauthor_conflict_detected(self, constraint_schema,
                                        documents):
        # Alice reviews in track 1; Bob coauthored "Duckburg tales"
        # with Alice — submitting Bob's paper to Alice is a conflict.
        guard = IntegrityGuard(constraint_schema, documents)
        update = submission_xupdate(1, 1, "Sneaky", "Bob")
        decision = guard.try_execute(update)
        assert not decision.legal
        assert decision.violated == ["conflict_of_interest"]

    def test_execute_raises_on_violation(self, constraint_schema,
                                         documents, rng):
        guard = IntegrityGuard(constraint_schema, documents)
        with pytest.raises(IntegrityViolationError):
            guard.execute(illegal_submission(documents[1], rng, "conflict"))

    def test_workload_threshold(self, constraint_schema, small_corpus):
        pub_doc, rev_doc = small_corpus
        guard = IntegrityGuard(constraint_schema, [pub_doc, rev_doc])
        from repro.datagen.workload import busy_reviewer_targets
        track, rev, _ = busy_reviewer_targets(rev_doc)[0]
        # the busy reviewer holds exactly 10 subs in 3 tracks: one more
        # violates
        update = submission_xupdate(track, rev, "Eleventh", "Fresh One")
        decision = guard.try_execute(update)
        assert decision.violated == ["conference_workload"]

    def test_unrecognized_update_falls_back(self, constraint_schema,
                                            documents):
        guard = IntegrityGuard(constraint_schema, documents)
        # inserting a whole reviewer was never registered as a pattern
        update = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]">
            <rev><name>Zoe</name>
              <sub><title>N</title><auts><name>Quinn</name></auts></sub>
            </rev>
          </xupdate:append>
        </xupdate:modifications>"""
        decision = guard.try_execute(update)
        assert decision.legal and decision.applied
        assert not decision.optimized  # brute-force path

    def test_unrecognized_illegal_update_rejected(self, constraint_schema,
                                                  documents):
        guard = IntegrityGuard(constraint_schema, documents)
        rev_doc = documents[1]
        snapshot = serialize(rev_doc)
        update = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]">
            <rev><name>Zoe</name>
              <sub><title>N</title><auts><name>Zoe</name></auts></sub>
            </rev>
          </xupdate:append>
        </xupdate:modifications>"""
        decision = guard.try_execute(update)
        assert not decision.legal
        assert serialize(rev_doc) == snapshot

    def test_remove_needs_no_check_for_monotone_constraints(
            self, constraint_schema, documents):
        # both running-example constraints are deletion-safe: removing
        # nodes can only remove violations, so the guard accepts the
        # removal without evaluating anything
        guard = IntegrityGuard(constraint_schema, documents)
        before = len(list(documents[1].iter_elements("sub")))
        update = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:remove select="/review/track[1]/rev[1]/sub[1]"/>
        </xupdate:modifications>"""
        decision = guard.try_execute(update)
        assert decision.legal and decision.optimized and decision.applied
        assert len(list(documents[1].iter_elements("sub"))) == before - 1


class TestBruteForceChecker:
    def test_legal_update_applied(self, constraint_schema, documents, rng):
        checker = BruteForceChecker(constraint_schema, documents)
        decision = checker.try_execute(legal_submission(documents[1], rng))
        assert decision.legal and decision.applied
        assert not decision.optimized

    def test_illegal_update_rolled_back(self, constraint_schema,
                                        documents, rng):
        checker = BruteForceChecker(constraint_schema, documents)
        rev_doc = documents[1]
        snapshot = serialize(rev_doc)
        decision = checker.try_execute(
            illegal_submission(rev_doc, rng, "conflict"))
        assert not decision.legal and decision.rolled_back
        assert serialize(rev_doc) == snapshot

    def test_check_only_on_consistent_corpus(self, constraint_schema,
                                             documents):
        checker = BruteForceChecker(constraint_schema, documents)
        assert checker.check_only() == []

    def test_check_only_detects_seeded_violation(self, constraint_schema):
        pub_doc = parse_document(
            "<dblp><pub><title>T</title><aut><name>Eve</name></aut>"
            "</pub></dblp>")
        rev_doc = parse_document(
            "<review><track><name>T1</name><rev><name>Eve</name>"
            "<sub><title>S</title><auts><name>Eve</name></auts></sub>"
            "</rev></track></review>")
        checker = BruteForceChecker(constraint_schema, [pub_doc, rev_doc])
        assert checker.check_only() == ["conflict_of_interest"]


class TestGuardAgreesWithBruteForce:
    def test_same_verdicts_on_workload_mix(self, constraint_schema,
                                           small_corpus, rng):
        import copy
        pub_doc, rev_doc = small_corpus
        updates = (
            [legal_submission(rev_doc, rng) for _ in range(4)]
            + [illegal_submission(rev_doc, rng, "conflict")
               for _ in range(2)]
            + [illegal_submission(rev_doc, rng, "workload")]
        )
        for update in updates:
            guard = IntegrityGuard(constraint_schema, [pub_doc, rev_doc])
            brute = BruteForceChecker(constraint_schema,
                                      [pub_doc, rev_doc])
            optimized_verdict = guard.try_execute(update)
            if optimized_verdict.applied:
                # undo so both strategies see the same state
                pass
            # run brute force on the post-guard state only when the
            # guard rejected (state unchanged); otherwise compare on a
            # fresh corpus
            if optimized_verdict.legal:
                from repro.datagen import generate_corpus, CorpusSpec
                pub_doc, rev_doc = generate_corpus(
                    CorpusSpec(tracks=3, revs_per_track=4, subs_per_rev=3,
                               pubs=20, busy_reviewers=1, seed=42))
                brute = BruteForceChecker(constraint_schema,
                                          [pub_doc, rev_doc])
            brute_verdict = brute.try_execute(update)
            assert brute_verdict.legal == optimized_verdict.legal
            assert sorted(brute_verdict.violated) \
                == sorted(optimized_verdict.violated)


class TestDatalogChecker:
    def test_consistent_corpus(self, constraint_schema, documents):
        checker = DatalogChecker(constraint_schema, documents)
        assert checker.violated_constraints() == []

    def test_detects_violation_after_mirroring_insert(
            self, constraint_schema, documents):
        from repro.xupdate import apply_text
        rev_doc = documents[1]
        checker = DatalogChecker(constraint_schema, documents)
        applied = apply_text(
            rev_doc, submission_xupdate(1, 1, "Bad", "Alice"))
        checker.mirror_insert(applied[0].inserted[0])
        assert checker.violated_constraints() == ["conflict_of_interest"]

    def test_mirror_remove_restores(self, constraint_schema, documents):
        from repro.xupdate import apply_text
        rev_doc = documents[1]
        checker = DatalogChecker(constraint_schema, documents)
        applied = apply_text(
            rev_doc, submission_xupdate(1, 1, "Bad", "Alice"))
        facts = checker.mirror_insert(applied[0].inserted[0])
        checker.mirror_remove(facts)
        assert checker.violated_constraints() == []

    def test_simplified_denials_with_bindings(self, constraint_schema,
                                              documents):
        checker = DatalogChecker(constraint_schema, documents)
        checks = next(iter(constraint_schema.patterns.values()))
        conflict = checks.optimized[0]
        rev_doc = documents[1]
        alice = next(rev_doc.iter_elements("rev"))
        bindings = {"ir": alice, "n": "Alice", "t": "x", "ps": 4, "pa": 2}
        assert checker.check_denials(conflict.simplified, bindings)
        bindings["n"] = "Unrelated Person"
        assert not checker.check_denials(conflict.simplified, bindings)
