"""Differential testing: the XQuery engine against the Datalog evaluator.

Both engines implement the same semantics for translated constraints
(section 6 claims the translation preserves meaning); any disagreement
on a random corpus is a bug in one of them.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core import DatalogChecker
from repro.datagen import CorpusSpec, generate_corpus
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.xquery.engine import query_truth
from repro.xtree.node import Document, Element, Text


SCHEMA = make_schema()


def _text_el(tag, value):
    element = Element(tag)
    element.append(Text(value))
    return element


@st.composite
def random_corpora(draw):
    """Small random corpora, *not* guaranteed consistent — disagreement
    hunting needs violating states too."""
    names = ["Ann", "Bob", "Cid"]
    review = Element("review")
    for track_index in range(draw(st.integers(1, 2))):
        track = Element("track")
        track.append(_text_el("name", f"T{track_index}"))
        for _ in range(draw(st.integers(1, 2))):
            rev = Element("rev")
            rev.append(_text_el("name", draw(st.sampled_from(names))))
            for _ in range(draw(st.integers(1, 3))):
                sub = Element("sub")
                sub.append(_text_el("title", "S"))
                for _ in range(draw(st.integers(1, 2))):
                    auts = Element("auts")
                    auts.append(_text_el(
                        "name", draw(st.sampled_from(names))))
                    sub.append(auts)
                rev.append(sub)
            track.append(rev)
        review.append(track)
    dblp = Element("dblp")
    for _ in range(draw(st.integers(0, 3))):
        pub = Element("pub")
        pub.append(_text_el("title", "P"))
        for _ in range(draw(st.integers(1, 2))):
            aut = Element("aut")
            aut.append(_text_el("name", draw(st.sampled_from(names))))
            pub.append(aut)
        dblp.append(pub)
    return Document(dblp), Document(review)


class TestFullConstraintAgreement:
    @given(random_corpora())
    def test_engines_agree_per_constraint(self, corpus):
        pub_doc, rev_doc = corpus
        documents = [pub_doc, rev_doc]
        datalog = DatalogChecker(SCHEMA, documents)
        datalog_verdict = set(datalog.violated_constraints())
        xquery_verdict = set()
        for constraint in SCHEMA.constraints:
            if any(query_truth(query.text, documents)
                   for query in constraint.full_queries):
                xquery_verdict.add(constraint.name)
        assert datalog_verdict == xquery_verdict


class TestOptimizedCheckAgreement:
    @given(random_corpora(), st.sampled_from(["Ann", "Bob", "Zoe"]),
           st.integers(0, 7))
    def test_simplified_checks_agree(self, corpus, author, pick):
        pub_doc, rev_doc = corpus
        documents = [pub_doc, rev_doc]
        revs = list(rev_doc.iter_elements("rev"))
        target = revs[pick % len(revs)]
        track = target.parent
        update = submission_xupdate(
            track.sibling_position, target.sibling_position,
            "New", author)
        from repro.xupdate import parse_modifications
        from repro.xupdate.analyze import signature_of
        operation = parse_modifications(update)[0]
        checks = SCHEMA.checks_for(
            signature_of(operation, SCHEMA.relational))
        assert checks is not None
        bindings = checks.analyzed.bind(rev_doc, operation)
        datalog = DatalogChecker(SCHEMA, documents)
        for check in checks.optimized:
            xquery_violated = any(
                query_truth(query.instantiate(bindings), documents)
                for query in check.queries)
            datalog_violated = datalog.check_denials(
                check.simplified, bindings)
            assert xquery_violated == datalog_violated


class TestGeneratedCorpusAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_engines_agree_on_generated_corpora(self, seed):
        spec = CorpusSpec(tracks=3, revs_per_track=3, subs_per_rev=2,
                          pubs=15, busy_reviewers=1, seed=seed)
        documents = list(generate_corpus(spec))
        datalog = DatalogChecker(SCHEMA, documents)
        assert datalog.violated_constraints() == []
        for constraint in SCHEMA.constraints:
            for query in constraint.full_queries:
                assert not query_truth(query.text, documents)
