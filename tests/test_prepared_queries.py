"""Prepared check plans: differential, no-reparse and index tests.

The prepared path (compile-once AST, parameters bound as external
XQuery variables, per-tag document indexes) must be *observationally
identical* to the legacy instantiate-text path — same decisions on the
same workload — while never parsing query text at update time and
while handling parameter values the text path cannot quote.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IntegrityGuard
from repro.core.schema import ConstraintSchema
from repro.datagen import generate_corpus, spec_for_size
from repro.datagen.running_example import (
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    make_schema,
    submission_xupdate,
)
from repro.datagen.workload import (
    _normal_reviewer_targets,
    busy_reviewer_targets,
    illegal_submission,
    legal_submission,
)
from repro.errors import CompilationError
from repro.xquery import engine, parser
from repro.xquery.engine import _IndexLRU
from repro.xquery.translate import PARAM_VARIABLE_PREFIX
from repro.xtree import parse_document, serialize
from repro.xupdate import parse_modifications
from repro.xupdate.analyze import signature_of
from repro.xupdate.apply import apply_text


def _strip_prepared(schema) -> None:
    """Force every translated query onto the instantiate-text path."""
    queries = [query for compiled in schema.constraints
               for query in compiled.full_queries]
    for checks in schema.patterns.values():
        for check in checks.optimized:
            queries.extend(check.queries)
    for checks in schema.transaction_patterns.values():
        for check in checks.optimized:
            queries.extend(check.queries)
    for query in queries:
        query.prepared = None


def _two_subs(track: int, rev: int, first: str, second: str) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/review/track[{track}]/rev[{rev}]">
        <sub><title>{first}</title><auts><name>A One</name></auts></sub>
      </xupdate:append>
      <xupdate:append select="/review/track[{track}]/rev[{rev}]">
        <sub><title>{second}</title><auts><name>A Two</name></auts></sub>
      </xupdate:append>
    </xupdate:modifications>"""


def _removal(track: int, rev: int) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:remove select="/review/track[{track}]/rev[{rev}]/sub[1]"/>
    </xupdate:modifications>"""


_PUB_APPEND = """<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/dblp">
    <pub><title>New Book</title><aut><name>Brand New</name></aut></pub>
  </xupdate:append>
</xupdate:modifications>"""


def _make_guard(strip: bool) -> IntegrityGuard:
    schema = make_schema()
    schema.register_pattern(_two_subs(1, 1, "x", "y"))
    if strip:
        _strip_prepared(schema)
    documents = list(generate_corpus(spec_for_size(32 * 1024)))
    return IntegrityGuard(schema, documents)


class TestDifferential:
    """Prepared and text paths decide the running-example workload
    identically, update for update."""

    def test_workload_decisions_match(self):
        prepared_guard = _make_guard(strip=False)
        text_guard = _make_guard(strip=True)
        rev_doc = prepared_guard.documents[1]
        rng = random.Random(361)
        normal = _normal_reviewer_targets(rev_doc)
        busy = busy_reviewer_targets(rev_doc)

        updates = [
            legal_submission(rev_doc, rng),
            legal_submission(rev_doc, rng, kind="after"),
            illegal_submission(rev_doc, rng, "conflict"),
            illegal_submission(rev_doc, rng, "workload"),
            # legal and illegal (busy-reviewer) two-sub transactions
            _two_subs(*normal[0][:2], "Fresh T One", "Fresh T Two"),
            _two_subs(*busy[0][:2], "Over T One", "Over T Two"),
            # removal: both constraints are deletion-safe
            _removal(*normal[1][:2]),
            # unregistered pattern: brute-force fallback
            _PUB_APPEND,
        ]
        outcomes = []
        for update in updates:
            left = prepared_guard.try_execute(update)
            right = text_guard.try_execute(update)
            assert left == right, f"decisions diverge for: {update}"
            outcomes.append(left)
        # the workload exercised both verdicts and both strategies
        assert {decision.legal for decision in outcomes} == {True, False}
        assert {decision.optimized for decision in outcomes} == {True,
                                                                 False}
        # both guards hold identical documents afterwards
        for ours, theirs in zip(prepared_guard.documents,
                                text_guard.documents):
            assert serialize(ours) == serialize(theirs)

    def test_transaction_decisions_match(self):
        prepared_guard = _make_guard(strip=False)
        text_guard = _make_guard(strip=True)
        rev_doc = prepared_guard.documents[1]
        track, rev, _ = _normal_reviewer_targets(rev_doc)[2]
        update = _two_subs(track, rev, "Deferred A", "Deferred B")
        left = prepared_guard.try_execute(update)
        right = text_guard.try_execute(update)
        assert left == right
        assert left.legal and left.optimized and left.applied


class TestNoReparse:
    def test_pattern_checks_have_prepared_plans(self):
        schema = make_schema()
        for checks in schema.patterns.values():
            for check in checks.optimized:
                for query in check.queries:
                    assert query.prepared is not None
                    for name, variable in query.variable_names.items():
                        assert variable == PARAM_VARIABLE_PREFIX + name
        for compiled in schema.constraints:
            for query in compiled.full_queries:
                assert query.prepared is not None

    def test_no_query_parse_for_pattern_matched_updates(self):
        """Acceptance gate: after warm-up, pattern-matched updates go
        through ``try_execute`` without a single ``parse_query`` call
        (no check re-parsing, select served from its cache)."""
        guard = _make_guard(strip=False)
        rev_doc = guard.documents[1]
        track, rev, _ = _normal_reviewer_targets(rev_doc)[0]
        guard.try_execute(
            submission_xupdate(track, rev, "Warm-up", "Warm Author"))
        before = parser.parse_calls()
        for index in range(10):
            decision = guard.try_execute(submission_xupdate(
                track, rev, f"Title {index}", f"Fresh Author {index}"))
            assert decision.legal and decision.optimized
        assert parser.parse_calls() == before

    def test_text_path_does_reparse(self):
        """The stripped guard really is the re-parsing baseline."""
        guard = _make_guard(strip=True)
        rev_doc = guard.documents[1]
        track, rev, _ = _normal_reviewer_targets(rev_doc)[0]
        guard.try_execute(
            submission_xupdate(track, rev, "Warm-up", "Warm Author"))
        before = parser.parse_calls()
        guard.try_execute(
            submission_xupdate(track, rev, "Another", "Other Author"))
        assert parser.parse_calls() > before


class TestQuoting:
    def test_both_quote_characters_bind_as_variables(self):
        """A value the text path cannot render as a literal flows
        through variable binding untouched."""
        guard = _make_guard(strip=False)
        rev_doc = guard.documents[1]
        track, rev, _ = _normal_reviewer_targets(rev_doc)[0]
        author = 'Miles "Mo" O\'Brien'
        update = submission_xupdate(track, rev, "Quoted", author)
        operation = parse_modifications(update)[0]
        checks = guard.schema.checks_for(
            signature_of(operation, guard.schema.relational))
        bindings = checks.analyzed.bind(rev_doc, operation)
        assert author in bindings.values()
        value_queries = [
            query for check in checks.optimized
            for query in check.queries
            if "value" in query.parameters.values()]
        assert value_queries
        for query in value_queries:
            with pytest.raises(CompilationError):
                query.instantiate(bindings)
            assert query.truth(guard.documents, bindings) is False
        decision = guard.try_execute(update)
        assert decision.legal and decision.optimized and decision.applied

    def test_both_quote_conflict_still_detected(self):
        """The quoting fix must not weaken detection: a conflicting
        author with both quote characters is still rejected."""
        schema = ConstraintSchema(
            dtds=[PUB_DTD, REV_DTD],
            constraints=[CONFLICT_OF_INTEREST],
            names=["conflict_of_interest"])
        schema.register_pattern(submission_xupdate(1, 1, "x", "y"))
        reviewer = 'Miles "Mo" O\'Brien'
        documents = [
            parse_document("<dblp><pub><title>t</title>"
                           "<aut><name>Solo</name></aut></pub></dblp>"),
            parse_document(
                f"<review><track><name>T</name><rev><name>{reviewer}"
                "</name><sub><title>s</title><auts><name>Other</name>"
                "</auts></sub></rev></track></review>"),
        ]
        guard = IntegrityGuard(schema, documents)
        decision = guard.try_execute(
            submission_xupdate(1, 1, "Self Review", reviewer))
        assert not decision.legal
        assert decision.violated == ["conflict_of_interest"]
        assert decision.optimized


class TestTagIndex:
    def _expected(self, document, tag):
        return [node for node in document.root.iter()
                if getattr(node, "tag", None) == tag]

    def test_index_matches_iteration_after_apply_and_rollback(self):
        document = parse_document(
            "<review><track><name>T</name><rev><name>R</name>"
            "<sub><title>a</title><auts><name>A</name></auts></sub>"
            "</rev></track></review>")
        for tag in ("track", "rev", "sub", "name"):
            assert document.elements_by_tag(tag) \
                == self._expected(document, tag)
        revision = document.tag_revision("sub")
        records = apply_text(
            document, submission_xupdate(1, 1, "New", "Author"))
        assert document.tag_revision("sub") > revision
        for tag in ("sub", "auts", "name", "title"):
            assert document.elements_by_tag(tag) \
                == self._expected(document, tag)
        for record in reversed(records):
            record.rollback()
        for tag in ("sub", "auts", "name", "title"):
            assert document.elements_by_tag(tag) \
                == self._expected(document, tag)

    def test_unrelated_tag_revision_untouched(self):
        document = parse_document(
            "<review><track><name>T</name><rev><name>R</name>"
            "<sub><title>a</title><auts><name>A</name></auts></sub>"
            "</rev></track></review>")
        track_revision = document.tag_revision("track")
        apply_text(document, submission_xupdate(1, 1, "New", "Author"))
        assert document.tag_revision("track") == track_revision


class TestIndexCache:
    def test_lru_is_bounded_and_recency_ordered(self):
        cache = _IndexLRU(capacity=4)
        for number in range(8):
            cache.put(("key", number), {})
        assert len(cache) == 4
        assert cache.get(("key", 0)) is None   # evicted
        assert cache.get(("key", 4)) is not None
        # touching an entry protects it from the next eviction
        cache.get(("key", 5))
        cache.put(("key", 8), {})
        assert cache.get(("key", 5)) is not None
        assert cache.get(("key", 6)) is None

    def test_value_index_survives_unrelated_updates(self):
        schema = make_schema()
        documents = list(generate_corpus(spec_for_size(32 * 1024)))
        # the coauthor denial hash-joins //aut by aut/name/text()
        query = schema.constraint("conflict_of_interest").full_queries[1]
        engine._INDEX_CACHE.clear()
        assert query.truth(documents) is False
        misses = engine._INDEX_CACHE.misses
        assert misses > 0
        assert query.truth(documents) is False
        assert engine._INDEX_CACHE.misses == misses
        hits = engine._INDEX_CACHE.hits
        assert hits > 0
        # an update touching only <title> elements keeps the index warm
        apply_text(documents[1], """<xupdate:modifications version="1.0"
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:append select="/review/track[1]/rev[1]/sub[1]">
            <xupdate:element name="title">Extra</xupdate:element>
          </xupdate:append>
        </xupdate:modifications>""")
        assert query.truth(documents) is False
        assert engine._INDEX_CACHE.misses == misses
        assert engine._INDEX_CACHE.hits > hits
        # touching a dependency tag (aut/name) rebuilds it
        apply_text(documents[0], _PUB_APPEND)
        assert query.truth(documents) is False
        assert engine._INDEX_CACHE.misses > misses


class TestDeletionSafety:
    def test_running_example_is_deletion_safe(self):
        schema = make_schema(register_submission_pattern=False)
        assert schema.deletion_unsafe_constraints() == []

    def test_negation_marks_constraint_unsafe(self):
        referential = ("<- //sub/title/text() -> T "
                       "/\\ not(//pub[/title/text() -> T])")
        schema = ConstraintSchema(
            dtds=[PUB_DTD, REV_DTD],
            constraints=[CONFLICT_OF_INTEREST, referential],
            names=["conflict", "referential"])
        assert schema.deletion_unsafe_constraints() == ["referential"]
