"""Tests for the compile-time analysis passes (``repro.analysis``).

Each seeded-bad-input case asserts the *stable* diagnostic code, so
that the codes documented in ``docs/diagnostics.md`` cannot drift
silently.  The property test at the end states the linter's contract:
a schema that lints clean compiles and evaluates without error.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.diagnostic import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    make_diagnostic,
    max_severity,
    span_of,
)
from repro.analysis.lint import lint_sources
from repro.analysis.safety import bound_variables, denial_safety_issues
from repro.core import BruteForceChecker, DatalogChecker
from repro.core.schema import ConstraintSchema
from repro.datagen.running_example import (
    CONFERENCE_WORKLOAD,
    CONFLICT_OF_INTEREST,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)
from repro.datalog.atoms import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Negation,
)
from repro.datalog.denial import Denial
from repro.datalog.terms import Constant, Variable
from repro.errors import CompilationError
from repro.xtree import parse_document


#: A small organisational DTD used to seed bad inputs: ``head`` occurs
#: at most once per ``dept`` and ``grade`` is an enumerated attribute,
#: giving the dead-check passes something to prove.
ORG_DTD = """
<!ELEMENT org (dept)*>
<!ELEMENT dept (head?, emp*)>
<!ELEMENT head (hname)>
<!ELEMENT hname (#PCDATA)>
<!ELEMENT emp (ename)>
<!ELEMENT ename (#PCDATA)>
<!ATTLIST emp grade (junior|senior) #REQUIRED>
"""

ORG_XML = """<org>
 <dept><head><hname>Ada</hname></head>
  <emp grade="junior"><ename>Bob</ename></emp>
  <emp grade="senior"><ename>Cora</ename></emp></dept>
</org>"""


def lint_org(*constraints: str, **kwargs) -> "LintReport":
    return lint_sources([ORG_DTD], list(constraints), **kwargs)


class TestDiagnosticModel:
    def test_registry_rejects_unknown_codes(self):
        with pytest.raises(ValueError):
            make_diagnostic("XIC999", "nope")

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert severity in (ERROR, WARNING, INFO)
            assert title
            assert code.startswith("XIC")

    def test_severity_ordering(self):
        diagnostic = make_diagnostic("XIC105", "dead")
        assert diagnostic.severity == WARNING
        assert diagnostic.is_at_least(WARNING)
        assert diagnostic.is_at_least(INFO)
        assert not diagnostic.is_at_least(ERROR)

    def test_max_severity(self):
        assert max_severity([]) is None
        assert max_severity([make_diagnostic("XIC404", "i"),
                             make_diagnostic("XIC101", "e")]) == ERROR

    def test_to_dict_and_render_carry_the_code(self):
        diagnostic = make_diagnostic(
            "XIC101", "unknown tag", subject="c1",
            source="<- //foo", span=(5, 8), hint="declared tags: ...")
        assert diagnostic.to_dict()["code"] == "XIC101"
        rendered = diagnostic.render()
        assert "XIC101" in rendered and "c1" in rendered

    def test_span_of(self):
        assert span_of("<- //foo/text()", "foo") == (5, 8)
        assert span_of("abc", "zzz") is None
        assert span_of(None, "x") is None


class TestPathSatisfiability:
    def test_unknown_tag_is_xic101(self):
        report = lint_org("<- //foo/text() -> T")
        assert "XIC101" in report.codes()
        assert report.count_at_least(ERROR) >= 1

    def test_unknown_attribute_is_xic102(self):
        report = lint_org("<- //emp/@salary -> S")
        assert "XIC102" in report.codes()

    def test_impossible_edge_is_xic103(self):
        # head is declared, but never a child of org
        report = lint_org("<- //org/head -> H")
        assert "XIC103" in report.codes()

    def test_no_character_data_is_xic104(self):
        # dept has element-only content
        report = lint_org("<- //dept/text() -> T")
        assert "XIC104" in report.codes()

    def test_diagnostics_carry_subject_and_hint(self):
        report = lint_org("<- //foo/text() -> T", names=["my_constraint"])
        [diagnostic] = [d for d in report.diagnostics if d.code == "XIC101"]
        assert diagnostic.subject == "my_constraint"
        assert diagnostic.hint


class TestDeadChecks:
    DEAD_CARDINALITY = ("<- //dept[/head/hname/text() -> A"
                        " /\\ /head/hname/text() -> B] /\\ A != B")
    DEAD_ENUM = '<- //emp/@grade -> G /\\ G = "manager"'

    def test_sibling_cardinality_is_xic105_and_dead(self):
        report = lint_org(self.DEAD_CARDINALITY, names=["two_heads"])
        assert "XIC105" in report.codes()
        assert report.dead_constraints == ["two_heads"]
        assert report.max_severity() == WARNING

    def test_enum_value_is_xic106_and_dead(self):
        report = lint_org(self.DEAD_ENUM, names=["manager_grade"])
        assert "XIC106" in report.codes()
        assert report.dead_constraints == ["manager_grade"]

    def test_live_constraint_is_not_dead(self):
        report = lint_org('<- //emp/@grade -> G /\\ G = "junior"')
        assert report.dead_constraints == []
        assert report.diagnostics == []

    def test_schema_marks_dead_and_checkers_skip(self):
        schema = ConstraintSchema(
            [ORG_DTD], [self.DEAD_CARDINALITY, self.DEAD_ENUM],
            names=["two_heads", "manager_grade"])
        assert all(constraint.dead for constraint in schema.constraints)
        assert {d.code for d in schema.diagnostics} >= {"XIC105", "XIC106"}
        documents = [parse_document(ORG_XML)]
        # neither checker may even evaluate the dead constraints
        BruteForceChecker(schema, documents).verify_consistency()
        assert DatalogChecker(schema, documents).violated_constraints() == []


class TestSafety:
    def test_unbound_comparison_is_xic201(self):
        report = lint_org("<- //emp/@grade -> G /\\ X > 3")
        assert "XIC201" in report.codes()
        assert report.count_at_least(ERROR) >= 1

    def test_schema_raises_compilation_error_with_code(self):
        with pytest.raises(CompilationError) as excinfo:
            ConstraintSchema([ORG_DTD], ["<- //emp/@grade -> G /\\ X > 3"])
        assert excinfo.value.code == "XIC201"

    def test_unsafe_negation_is_xic202(self):
        # T is shared between the negation and the comparison but no
        # positive literal binds it
        denial = Denial((
            Atom("emp", (Variable("I"), Variable("P"),
                         Variable("D"), Variable("N"))),
            Negation((Atom("pub", (Variable("J"), Variable("T"))),)),
            Comparison("ne", Variable("T"), Constant("x")),
        ))
        codes = [code for code, _ in denial_safety_issues(denial)]
        assert "XIC202" in codes

    def test_unsafe_aggregate_is_xic203(self):
        # the aggregate shares non-group variable X with the rest of
        # the body, but nothing binds X
        aggregate = Aggregate(func="cnt", distinct=True, term=None,
                              group_by=(),
                              body=(Atom("sub", (Variable("S"),
                                                 Variable("X"))),))
        denial = Denial((
            AggregateCondition(aggregate, "gt", Constant(2)),
            Comparison("eq", Variable("X"), Variable("X")),
        ))
        codes = [code for code, _ in denial_safety_issues(denial)]
        assert "XIC203" in codes

    def test_bound_variables_fixpoint(self):
        denial = Denial((
            Atom("emp", (Variable("I"),)),
            Comparison("eq", Variable("J"), Variable("I")),
            Comparison("gt", Variable("J"), Constant(0)),
        ))
        bound = bound_variables(denial)
        assert Variable("I") in bound
        assert Variable("J") in bound  # via the = closure
        assert denial_safety_issues(denial) == []


class TestRedundancy:
    def test_equivalent_pair_is_xic302_on_the_later(self):
        text = "<- //emp/ename/text() -> N"
        report = lint_org(text, text, names=["first", "second"])
        [diagnostic] = [d for d in report.diagnostics
                        if d.code == "XIC302"]
        assert diagnostic.subject == "second"

    def test_one_way_implication_is_xic301(self):
        general = "<- //emp/ename/text() -> N"
        specific = '<- //emp/ename/text() -> N /\\ N = "Bob"'
        report = lint_org(general, specific)
        assert "XIC301" in report.codes()
        assert "XIC302" not in report.codes()

    def test_independent_constraints_are_silent(self):
        report = lint_org("<- //emp/ename/text() -> N",
                          "<- //head/hname/text() -> H")
        assert report.diagnostics == []


def bad_submission(fragment: str) -> str:
    return f"""<?xml version="1.0"?>
<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:append select="/review/track[1]/rev[1]">
    {fragment}
  </xupdate:append>
</xupdate:modifications>"""


class TestPatternAnalysis:
    def lint_patterns(self, *patterns: str) -> "LintReport":
        return lint_sources([PUB_DTD, REV_DTD], [CONFLICT_OF_INTEREST],
                            patterns=list(patterns))

    def test_good_pattern_is_clean(self):
        report = self.lint_patterns(submission_xupdate(1, 1, "T", "A"))
        assert report.diagnostics == []

    def test_undeclared_tag_is_xic402(self):
        report = self.lint_patterns(bad_submission(
            '<xupdate:element name="chapter">x</xupdate:element>'))
        assert "XIC402" in report.codes()

    def test_wrong_parent_is_xic402(self):
        # pub is declared, but no DTD puts it under rev
        report = self.lint_patterns(bad_submission(
            '<xupdate:element name="pub">'
            "<title>T</title><aut><name>A</name></aut>"
            "</xupdate:element>"))
        assert "XIC402" in report.codes()

    def test_content_model_violation_is_xic402(self):
        # sub requires (title, auts+); an empty sub matches no valid
        # update
        report = self.lint_patterns(bad_submission(
            '<xupdate:element name="sub"></xupdate:element>'))
        assert "XIC402" in report.codes()

    def test_undeclared_attribute_is_xic401(self):
        report = self.lint_patterns(bad_submission(
            '<xupdate:element name="sub">'
            '<title lang="en">T</title><auts><name>A</name></auts>'
            "</xupdate:element>"))
        assert "XIC401" in report.codes()


class TestRunningExampleIsClean:
    def test_paper_schema_lints_clean(self):
        report = lint_sources(
            [PUB_DTD, REV_DTD],
            [CONFLICT_OF_INTEREST, CONFERENCE_WORKLOAD],
            names=["conflict_of_interest", "conference_workload"],
            patterns=[submission_xupdate(1, 1, "T", "A")])
        assert report.diagnostics == []
        assert report.dead_constraints == []
        assert report.compiled_constraints == [
            "conflict_of_interest", "conference_workload"]

    def test_paper_schema_collects_no_diagnostics(self, constraint_schema):
        severities = {d.severity for d in constraint_schema.diagnostics}
        assert ERROR not in severities
        assert WARNING not in severities


# -- property: clean lint ⟹ compiles and evaluates without error ---------

TAGS = ["review", "track", "rev", "sub", "auts", "aut", "pub",
        "name", "title", "dblp", "chapter"]


@st.composite
def random_constraints(draw):
    steps = draw(st.lists(st.sampled_from(TAGS), min_size=1, max_size=3))
    text = "<- //" + "/".join(steps) + "/text() -> A"
    tail = draw(st.sampled_from(
        ["", ' /\\ A = "x"', " /\\ A != B", " /\\ X > 3",
         ' /\\ A != "y" /\\ A = "z"']))
    return text + tail


class TestCleanLintImpliesEvaluates:
    @given(random_constraints())
    def test_clean_constraint_compiles_and_evaluates(self, text):
        report = lint_sources([PUB_DTD, REV_DTD], [text])
        if report.count_at_least(ERROR):
            return  # the linter rejected it; nothing to promise
        from tests.conftest import PUB_XML, REV_XML
        schema = ConstraintSchema([PUB_DTD, REV_DTD], [text])
        documents = [parse_document(PUB_XML), parse_document(REV_XML)]
        # may be violated, must not raise
        BruteForceChecker(schema, documents).check_only()
        DatalogChecker(schema, documents).violated_constraints()
