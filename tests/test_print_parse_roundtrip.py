"""Print → parse round-trips for the two query languages.

Every AST prints to concrete syntax that must parse back to an
equivalent AST.  This pins the pretty-printers to the grammars and
catches precedence/escaping bugs in both directions.
"""

import pytest

from repro.xpathlog.parser import parse_constraint
from repro.xquery.parser import parse_query


XPATHLOG_SOURCES = [
    "<- //sub",
    "<- //rev[/name/text() -> R]/sub/auts/name/text() -> A /\\ A = R",
    '<- //pub[title = "Duckburg tales"]/aut/name/text() -> N',
    "<- Cnt_D{[R]; //rev[/name/text() -> R]/sub} > 10",
    "<- Sum{X [R]; //rev[/name/text() -> R]/sub/position() -> X} > 5",
    "<- //pub[position() <= 3]",
    "<- //aut/../title -> T /\\ T = \"X\"",
    "<- //sub/title/text() -> T /\\ not(//pub[/title/text() -> T])",
    "<- //pub \\/ //rev /\\ //track",
    "<- (//pub \\/ //rev) /\\ //track",
]


class TestXPathLogRoundTrip:
    @pytest.mark.parametrize("source", XPATHLOG_SOURCES)
    def test_print_parse_fixpoint(self, source):
        first = parse_constraint(source)
        printed = str(first)
        second = parse_constraint(printed)
        assert str(second) == printed
        # and the ASTs agree (Constraint.source is excluded from eq)
        assert second.body == first.body


XQUERY_SOURCES = [
    "count(//sub)",
    "//rev[name/text() = 'Alice']/sub/title/text()",
    "some $x in //aut, $y in $x/.. satisfies "
    "$x/name/text() = $y/title/text()",
    "every $r in //rev satisfies count($r/sub) >= 1",
    "for $t in //track, $r in $t/rev where count($r/sub) > 2 "
    "return $r/name/text()",
    "let $all := //sub return count($all)",
    "exists(for $lr in //rev let $d := $lr/sub where count($d) > 4 "
    "return <idle/>)",
    "not(some $p in //pub satisfies $p/title/text() = 'x')",
    "1 + 2 * 3 - 4",
    "(1, 2, 3)",
    "-(2 + 3)",
    "1 to 4",
    "(//a | //b)",
    "//track[2]/rev[5]/name/text()",
    "if (count(//sub) > 3) then 'many' else 'few'",
    "distinct-values(//rev/name/text())",
    "$x[1]",
    "//sub[position() = last()]",
    "count((//a | //b)) = 2",
]


class TestXQueryRoundTrip:
    @pytest.mark.parametrize("source", XQUERY_SOURCES)
    def test_print_parse_fixpoint(self, source):
        first = parse_query(source)
        printed = str(first)
        second = parse_query(printed)
        assert str(second) == printed

    @pytest.mark.parametrize("source", XQUERY_SOURCES)
    def test_round_trip_preserves_semantics(self, source, documents):
        from repro.errors import XQueryEvaluationError
        from repro.xquery.engine import evaluate_query
        first = parse_query(source)
        second = parse_query(str(first))
        variables = {"x": [1]}
        try:
            expected = evaluate_query(first, documents, variables)
        except XQueryEvaluationError:
            with pytest.raises(XQueryEvaluationError):
                evaluate_query(second, documents, variables)
            return
        assert evaluate_query(second, documents, variables) == expected


class TestTranslatedQueriesRoundTrip:
    """Every query the translator emits must be parseable (they are,
    since we evaluate them — this pins the invariant explicitly)."""

    def test_full_and_simplified_queries_parse(self, constraint_schema):
        texts = []
        for constraint in constraint_schema.constraints:
            texts.extend(q.text for q in constraint.full_queries)
        for checks in constraint_schema.patterns.values():
            for check in checks.optimized:
                texts.extend(q.text for q in check.queries)
        for text in texts:
            neutral = text.replace("%{", "'%").replace("}", "'") \
                if "%{" in text else text
            parse_query(neutral)
