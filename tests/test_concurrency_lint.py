"""The XIC5xx lock-discipline static pass: corpus fixtures, the
self-lint over ``src/repro``, and the annotation-removal property the
CI gate relies on (deleting a ``guarded_by`` must fail the lint)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.concurrency import concurrency_diagnostics
from repro.analysis.lint import LintReport
from repro.cli import main

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
FIXTURES = REPO / "examples" / "corpus" / "concurrency"

CODES = ["XIC501", "XIC502", "XIC503", "XIC504", "XIC505"]


@pytest.mark.parametrize("code", CODES)
def test_firing_fixture_detected(code):
    path = FIXTURES / f"{code.lower()}_fires.py"
    diagnostics = concurrency_diagnostics([str(path)])
    assert code in [d.code for d in diagnostics], \
        f"{path.name} did not report {code}"


@pytest.mark.parametrize("code", CODES)
def test_clean_fixture_silent(code):
    path = FIXTURES / f"{code.lower()}_clean.py"
    diagnostics = concurrency_diagnostics([str(path)])
    assert diagnostics == [], \
        f"{path.name} reported {[d.code for d in diagnostics]}"


def test_self_lint_clean():
    """The repo is its own corpus: src/repro must lint clean."""
    assert concurrency_diagnostics([str(SRC)]) == []


def test_diagnostics_carry_location():
    diagnostics = concurrency_diagnostics(
        [str(FIXTURES / "xic501_fires.py")])
    assert all(d.file and d.line for d in diagnostics)


@pytest.mark.parametrize("module,decorator_start", [
    ("xtree/node.py", '@guarded_by("self._lock"'),
    ("service/store.py", '@guarded_by("self.lock"'),
])
def test_removing_guarded_by_fails_lint(tmp_path, module,
                                        decorator_start):
    """Deleting the Document / DocumentStore guarded_by declaration
    must make the lint fail (XIC505: the lock loses its coverage)."""
    source = (SRC / module).read_text(encoding="utf-8")
    lines = source.splitlines(keepends=True)
    start = next(index for index, line in enumerate(lines)
                 if line.startswith(decorator_start))
    end = start
    while not lines[end].rstrip().endswith(")"):
        end += 1
    stripped = "".join(lines[:start] + lines[end + 1:])
    assert stripped != source
    target = tmp_path / Path(module).name
    target.write_text(stripped, encoding="utf-8")
    codes = [d.code for d in concurrency_diagnostics([str(target)])]
    assert "XIC505" in codes


def test_cli_concurrency_clean(capsys):
    exit_code = main(["lint", "--concurrency", str(SRC)])
    assert exit_code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_concurrency_fires_with_github_format(capsys):
    path = str(FIXTURES / "xic502_fires.py")
    exit_code = main(["lint", "--concurrency", "--format=github", path])
    out = capsys.readouterr().out
    assert exit_code == 1
    line = next(entry for entry in out.splitlines() if entry)
    assert line.startswith("::error ")
    assert f"file={path}" in line and "line=" in line
    assert "title=XIC502" in line


def test_json_output_sorted_and_located():
    report = LintReport(diagnostics=concurrency_diagnostics(
        [str(FIXTURES)]))
    payload = json.loads(report.to_json())
    keys = [(d.get("file", ""), d["code"], d.get("line", 0))
            for d in payload["diagnostics"]]
    assert keys == sorted(keys)
    # every code fires; the two xic502 fixtures disagreeing on order
    # additionally forms a (correctly reported) cross-file cycle
    assert {d["code"] for d in payload["diagnostics"]} == set(CODES)


def test_fixture_inventory_complete():
    for code in CODES:
        assert (FIXTURES / f"{code.lower()}_fires.py").is_file()
        assert (FIXTURES / f"{code.lower()}_clean.py").is_file()
