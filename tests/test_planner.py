"""Cost-based check planner: correctness, statistics, and batching.

The contract under test is *verdict equivalence*: every planned,
streamed or batched evaluation returns exactly the verdict of the
unplanned engine — on the running example, on generated corpora, and
on hypothesis-generated documents and updates.  The planner may only
ever change how fast an answer arrives, never the answer.
"""

from __future__ import annotations

import gc
import random
import threading
import weakref

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.guard import IntegrityGuard
from repro.datagen import CorpusSpec, generate_corpus
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.datagen.workload import legal_submission
from repro.service.store import CheckingService
from repro.xquery import parse_query
from repro.xquery.engine import query_truth
from repro.xquery.planner import (
    Statistics,
    batch_scope,
    clear_caches,
    explain_query,
    note_batch_mutation,
    query_truth_planned,
    unplanned,
    without_columns,
)
from repro.xtree.node import Document, Element, Text
from repro.xtree.parser import parse_document
from repro.xtree.serializer import serialize
from repro.xupdate.apply import TransactionLog, apply_operation
from repro.xupdate.parser import parse_modifications

SCHEMA = make_schema()

QUERIES = [
    # the running example's conflict check (full form)
    "some $Ir in //rev, $R in $Ir/name/text(), $Is in $Ir/sub, "
    "$Ia in $Is/auts satisfies $R = $Ia/name/text()",
    # the workload check: aggregates over predicated descendant steps
    "some $R in distinct-values(//track/rev/name/text()) satisfies "
    "count(//track[rev[name/text() = $R]]) >= 3 and "
    "count(//rev[name/text() = $R]/sub) > 10",
    # hash-joinable co-author form
    "some $Ir in //rev, $R in $Ir/name/text(), $Ia2 in //aut "
    "satisfies $R = $Ia2/name/text()",
    "every $p in //pub satisfies exists($p/aut)",
    "every $r in //rev satisfies count($r/sub) >= 1",
    "count(//pub) >= 2",
    "exists(//rev[name/text() = 'Alice'])",
    "//track[name/text() = 'Theory']/rev/name/text() = 'Alice'",
    "some $x in //aut satisfies $x/name/text() = //rev/name/text()",
    "empty(//nosuch)",
    "not(exists(//track[name/text() = 'Chemistry']))",
    "some $t in //track, $r in $t/rev satisfies "
    "$t/name/text() = 'Theory' and $r/name/text() = 'Alice'",
    "//pub[aut[name/text() = 'Carol']]/title/text() = 'Mouseton stories'",
    "some $s in //sub satisfies count($s/auts) > 1",
]


def _text_el(tag, value):
    element = Element(tag)
    element.append(Text(value))
    return element


@st.composite
def random_corpora(draw):
    names = ["Ann", "Bob", "Cid"]
    review = Element("review")
    for track_index in range(draw(st.integers(1, 2))):
        track = Element("track")
        track.append(_text_el("name", f"T{track_index}"))
        for _ in range(draw(st.integers(1, 2))):
            rev = Element("rev")
            rev.append(_text_el("name", draw(st.sampled_from(names))))
            for _ in range(draw(st.integers(1, 3))):
                sub = Element("sub")
                sub.append(_text_el("title", "S"))
                for _ in range(draw(st.integers(1, 2))):
                    auts = Element("auts")
                    auts.append(_text_el(
                        "name", draw(st.sampled_from(names))))
                    sub.append(auts)
                rev.append(sub)
            track.append(rev)
        review.append(track)
    dblp = Element("dblp")
    for _ in range(draw(st.integers(0, 3))):
        pub = Element("pub")
        pub.append(_text_el("title", "P"))
        for _ in range(draw(st.integers(1, 2))):
            aut = Element("aut")
            aut.append(_text_el("name", draw(st.sampled_from(names))))
            pub.append(aut)
        dblp.append(pub)
    return Document(dblp), Document(review)


class TestDifferentialQueries:
    @pytest.mark.parametrize("query", QUERIES)
    def test_fixed_queries_agree(self, query, documents):
        expression = parse_query(query)
        assert query_truth_planned(expression, documents) \
            == query_truth(expression, documents)

    @pytest.mark.parametrize("query", QUERIES)
    def test_generated_corpus_agrees(self, query, small_corpus):
        documents = list(small_corpus)
        expression = parse_query(query)
        assert query_truth_planned(expression, documents) \
            == query_truth(expression, documents)

    @given(random_corpora())
    @settings(max_examples=40)
    def test_hypothesis_corpora_agree(self, corpus):
        documents = list(corpus)
        for query in QUERIES:
            expression = parse_query(query)
            assert query_truth_planned(expression, documents) \
                == query_truth(expression, documents), query

    @given(random_corpora())
    @settings(max_examples=25)
    def test_full_constraint_checks_agree(self, corpus):
        documents = list(corpus)
        for constraint in SCHEMA.constraints:
            for query in constraint.full_queries:
                planned = query_truth_planned(
                    query.prepared, documents)
                assert planned == query_truth(
                    query.prepared, documents), constraint.name


def _decision_key(decision):
    return (decision.legal, decision.applied, decision.rolled_back,
            tuple(decision.violated))


def _fresh_documents():
    spec = CorpusSpec(tracks=3, revs_per_track=4, subs_per_rev=3,
                      pubs=20, busy_reviewers=1, seed=42)
    return list(generate_corpus(spec))


def _update_mix(rev_doc, seed):
    rng = random.Random(seed)
    updates = [legal_submission(rev_doc, rng) for _ in range(6)]
    # same-pattern updates with a mix of legal and conflicting authors
    updates.append(submission_xupdate(1, 1, "Sneaky", "Bob"))
    updates.append(submission_xupdate(2, 1, "Fine", "Nobody Known"))
    rng.shuffle(updates)
    return updates


def _multi_submission(parts):
    """One modification document appending several submissions."""
    blocks = []
    for track, rev, title, author in parts:
        select = f"/review/track[{track}]/rev[{rev}]"
        blocks.append(
            f'  <xupdate:append select="{select}">\n'
            f'    <xupdate:element name="sub">\n'
            f'      <title>{title}</title>\n'
            f'      <auts><name>{author}</name></auts>\n'
            f'    </xupdate:element>\n'
            f'  </xupdate:append>')
    return ('<?xml version="1.0"?>\n'
            '<xupdate:modifications version="1.0"\n'
            '    xmlns:xupdate="http://www.xmldb.org/xupdate">\n'
            + "\n".join(blocks)
            + '\n</xupdate:modifications>')


class TestDifferentialUpdates:
    def test_guard_decisions_match_unplanned(self):
        planned_docs = _fresh_documents()
        planned = [
            IntegrityGuard(SCHEMA, planned_docs).try_execute(update)
            for update in _update_mix(planned_docs[1], 11)]
        with unplanned():
            baseline_docs = _fresh_documents()
            baseline = [
                IntegrityGuard(SCHEMA, baseline_docs).try_execute(update)
                for update in _update_mix(baseline_docs[1], 11)]
        assert [_decision_key(d) for d in planned] \
            == [_decision_key(d) for d in baseline]
        assert [serialize(d) for d in planned_docs] \
            == [serialize(d) for d in baseline_docs]

    def test_check_batch_matches_sequential(self):
        batch_docs = _fresh_documents()
        batched = IntegrityGuard(SCHEMA, batch_docs).check_batch(
            _update_mix(batch_docs[1], 23))
        sequential_docs = _fresh_documents()
        guard = IntegrityGuard(SCHEMA, sequential_docs)
        sequential = [guard.try_execute(update)
                      for update in _update_mix(sequential_docs[1], 23)]
        assert [_decision_key(d) for d in batched] \
            == [_decision_key(d) for d in sequential]
        assert [serialize(d) for d in batch_docs] \
            == [serialize(d) for d in sequential_docs]

    @given(st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_check_batch_matches_sequential_random(self, seed):
        batch_docs = _fresh_documents()
        batched = IntegrityGuard(SCHEMA, batch_docs).check_batch(
            _update_mix(batch_docs[1], seed))
        with unplanned():
            baseline_docs = _fresh_documents()
            guard = IntegrityGuard(SCHEMA, baseline_docs)
            baseline = [
                guard.try_execute(update)
                for update in _update_mix(baseline_docs[1], seed)]
        assert [_decision_key(d) for d in batched] \
            == [_decision_key(d) for d in baseline]
        assert [serialize(d) for d in batch_docs] \
            == [serialize(d) for d in baseline_docs]

    def test_check_batch_multi_operation_updates_match_sequential(self):
        # multi-operation updates check operation k after operations
        # 1..k-1 of the same update applied, so mid-batch index
        # rebuilds happen against a partially applied state — the
        # scenario the batch scope's settled-state bookkeeping guards
        def updates():
            return [
                _multi_submission([(1, 2, "A", "Nobody A"),
                                   (2, 1, "B", "Nobody B")]),
                submission_xupdate(1, 1, "Sneaky", "Bob"),
                _multi_submission([(1, 3, "C", "Nobody C"),
                                   (1, 1, "Own", "Bob")]),
                _multi_submission([(3, 1, "D", "Nobody D"),
                                   (3, 2, "E", "Nobody E")]),
                submission_xupdate(2, 2, "F", "Nobody F"),
                _multi_submission([(2, 1, "G", "Nobody G"),
                                   (2, 3, "H", "Nobody H")]),
            ]
        batch_docs = _fresh_documents()
        batched = IntegrityGuard(SCHEMA, batch_docs).check_batch(
            updates())
        with unplanned():
            baseline_docs = _fresh_documents()
            guard = IntegrityGuard(SCHEMA, baseline_docs)
            baseline = [guard.try_execute(update)
                        for update in updates()]
        assert [_decision_key(d) for d in batched] \
            == [_decision_key(d) for d in baseline]
        assert [serialize(d) for d in batch_docs] \
            == [serialize(d) for d in baseline_docs]

    def test_service_check_batch_commit_log(self):
        documents = _fresh_documents()
        service = CheckingService(SCHEMA, documents)
        decisions = service.check_batch(_update_mix(documents[1], 5))
        committed = service.committed_updates()
        assert len(committed) == sum(1 for d in decisions if d.applied)
        assert [c.sequence for c in committed] \
            == list(range(len(committed)))


class TestStatistics:
    def test_tag_counts_track_mutations(self, rev_doc):
        before = rev_doc.tag_count("rev")
        operation = parse_modifications(
            submission_xupdate(1, 1, "New", "Someone"))[0]
        apply_operation(rev_doc, operation)
        assert rev_doc.tag_count("sub") \
            == len(list(rev_doc.iter_elements("sub")))
        assert rev_doc.tag_count("rev") == before

    def test_distinct_count_invalidates_per_revision(self, rev_doc):
        first = rev_doc.tag_distinct_count("name")
        values = {element.text()
                  for element in rev_doc.iter_elements("name")}
        assert first == len(values)
        operation = parse_modifications(
            submission_xupdate(1, 1, "T", "Completely New Author"))[0]
        apply_operation(rev_doc, operation)
        assert rev_doc.tag_distinct_count("name") == first + 1

    def test_priors_used_for_empty_documents(self):
        empty = Document(Element("review"))
        stats = Statistics((empty,), priors={"rev": 12.0})
        assert stats.count("rev") == 12.0
        assert stats.count("sub") == 0.0

    def test_live_counts_beat_priors(self, rev_doc):
        stats = Statistics((rev_doc,), priors={"rev": 1000.0})
        assert stats.count("rev") \
            == len(list(rev_doc.iter_elements("rev")))

    def test_schema_priors_reflect_dtd_shape(self):
        priors = SCHEMA.cardinality_priors()
        assert priors.get("review") == 1.0
        # tracks contain revs contain subs: expected counts grow down
        # the containment chain
        assert priors["sub"] > priors["rev"] > 0


class TestStatisticsRace:
    """Satellite: a statistics refresh must not race a writer.

    Reader threads hammer the per-tag statistics (counts, distinct
    counts, snapshots) while a writer applies real updates through the
    tag index.  Every read must observe an internally consistent
    bucket — no exceptions, no impossible values.
    """

    def test_stats_reads_race_concurrent_writer(self):
        documents = _fresh_documents()
        rev_doc = documents[1]
        rng = random.Random(3)
        operations = [
            parse_modifications(legal_submission(rev_doc, rng))[0]
            for _ in range(40)]
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    assert rev_doc.tag_count("name") > 0
                    assert rev_doc.tag_distinct_count("name") > 0
                    # the snapshot holds the document lock across both
                    # reads, so count and distinct are consistent
                    snapshot = rev_doc.statistics_snapshot(
                        ["rev", "sub", "name"])
                    for tag, (total, unique, _) in snapshot.items():
                        assert 0 <= unique <= total, tag
                    stats = Statistics(tuple(documents))
                    assert stats.count("sub") >= 0
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for operation in operations:
                apply_operation(rev_doc, operation)
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
        assert not errors, errors
        assert not any(thread.is_alive() for thread in readers)
        # the final snapshot agrees with a full walk
        assert rev_doc.tag_count("sub") \
            == len(list(rev_doc.iter_elements("sub")))


class TestPlanCache:
    def test_plan_revalidates_after_mutation(self, documents):
        clear_caches()
        query = parse_query(QUERIES[0])
        assert query_truth_planned(query, documents) \
            == query_truth(query, documents)
        rev_doc = documents[1]
        operation = parse_modifications(
            submission_xupdate(1, 1, "T", "Alice"))[0]
        apply_operation(rev_doc, operation)  # Alice reviews herself
        assert query_truth_planned(query, documents) is True
        assert query_truth(query, documents) is True

    def test_unplanned_scope_restores(self, documents):
        with unplanned():
            from repro.xquery import planner
            assert not planner.enabled()
        from repro.xquery import planner
        assert planner.enabled()

    def test_plan_cache_holds_documents_weakly(self):
        clear_caches()
        local_docs = _fresh_documents()
        expression = parse_query("count(//pub) >= 2")
        assert query_truth_planned(expression, local_docs) \
            == query_truth(expression, local_docs)
        references = [weakref.ref(document) for document in local_docs]
        del local_docs
        gc.collect()
        # cached plan entries must not pin the document trees
        assert all(reference() is None for reference in references)


class TestPlannedErrorFallback:
    """Reordering must not surface errors the engine's order avoids."""

    def test_hoisted_factor_error_defers_to_engine(self, documents):
        # the condition has no quantifier variables, so planning hoists
        # it before the (empty) source is ever iterated; the engine
        # never evaluates it and returns a verdict
        query = parse_query("some $x in //nosuch satisfies 1 div 0 = 1")
        assert query_truth(query, documents) is False
        assert query_truth_planned(query, documents) is False

    def test_errors_the_engine_raises_still_raise(self, documents):
        from repro.errors import XQueryEvaluationError
        query = parse_query(
            "some $x in //nosuch satisfies $x/title/text() = 1 div 0")
        with pytest.raises(XQueryEvaluationError):
            query_truth(query, documents)
        with pytest.raises(XQueryEvaluationError):
            query_truth_planned(query, documents)


class TestExplain:
    def test_explain_shows_order_and_cardinalities(self, documents):
        text = explain_query(QUERIES[0], documents)
        assert "some quantifier" in text
        assert "$Ir in //rev" in text
        assert "est~" in text
        assert "examined=" in text
        assert text.endswith("verdict: false")

    def test_explain_marks_hash_joins(self, documents):
        text = explain_query(QUERIES[2], documents)
        assert "[hash join]" in text

    def test_cli_explain_runs(self, capsys):
        from repro import cli
        import os
        corpus = os.path.join(os.path.dirname(__file__), "..",
                              "examples", "corpus")
        code = cli.main([
            "explain",
            "--dtd", os.path.join(corpus, "pub.dtd"),
            "--dtd", os.path.join(corpus, "rev.dtd"),
            "--constraints-file",
            os.path.join(corpus, "constraints.txt"),
            os.path.join(corpus, "submission.xml"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "quantifier" in out
        assert "est~" in out


class TestBatchScope:
    def test_batch_scope_repairs_indexes(self):
        documents = _fresh_documents()
        guard = IntegrityGuard(SCHEMA, documents)
        updates = [submission_xupdate(1 + i % 3, 1 + i % 4,
                                      f"T{i}", f"Author {i}")
                   for i in range(8)]
        # the columnar backend serves hash joins from the attached
        # stores; disable it so the engine builds (and registers) the
        # legacy per-check index this test observes
        with without_columns(), batch_scope() as scope:
            for update in updates:
                guard.try_execute(update)
                # mirror check_batch's bookkeeping by hand: we drive
                # try_execute directly to observe the scope
                scope.note_rejected()
        # the conflict check's //aut hash join is registered once the
        # engine builds it inside the scope
        assert scope.registered >= 1

    def test_rejected_mid_update_rebuild_is_dropped(self):
        # an index rebuilt while an update is partially applied indexes
        # the inserted nodes; after the update rolls back those nodes
        # are detached, so re-filing that index would resurrect them as
        # phantom witnesses for the rest of the batch
        documents = _fresh_documents()
        rev_doc = documents[1]
        expression = parse_query(
            "some $x in //sub satisfies $x/title/text() = 'Phantom'")
        operation = parse_modifications(
            submission_xupdate(1, 1, "Phantom", "Nobody Known"))[0]
        with batch_scope() as scope:
            assert query_truth_planned(expression, documents) is False
            with TransactionLog() as log:
                note_batch_mutation()
                log.apply(rev_doc, operation)
                # mid-update rebuild: the sub tag revision moved, so
                # this check misses the cache and indexes the
                # half-applied state
                assert query_truth_planned(expression, documents) \
                    is True
                log.rollback()
            scope.note_rejected()
            assert scope.dropped >= 1
            assert query_truth(expression, documents) is False
            assert query_truth_planned(expression, documents) is False

    def test_applied_mid_update_rebuild_is_dropped(self):
        # an index rebuilt after the update's first operation already
        # contains that operation's elements; repairing it with the
        # full record list on commit would file them twice, breaking
        # the remove-first-occurrence re-key repair later on
        documents = _fresh_documents()
        rev_doc = documents[1]
        expression = parse_query(
            "some $x in //sub satisfies $x/title/text() = 'Dup'")
        operations = parse_modifications(_multi_submission([
            (1, 2, "Dup", "Nobody A"), (2, 1, "Dup", "Nobody B")]))
        with batch_scope() as scope:
            assert query_truth_planned(expression, documents) is False
            with TransactionLog() as log:
                note_batch_mutation()
                log.apply(rev_doc, operations[0])
                assert query_truth_planned(expression, documents) \
                    is True
                note_batch_mutation()
                log.apply(rev_doc, operations[1])
                records = log.records
                log.commit()
            scope.note_applied(records)
            assert scope.dropped >= 1
            for entry in scope._entries.values():
                for bucket in entry.index_map.values():
                    identities = [id(element) for element in bucket]
                    assert len(identities) == len(set(identities))
            assert query_truth_planned(expression, documents) is True
            assert query_truth(expression, documents) is True

    def test_indexed_descendant_step_matches_walk(self, documents):
        from repro.xquery.engine import evaluate_query
        indexed = evaluate_query("//rev", documents)
        walked = [element
                  for document in documents
                  for element in document.root.iter_elements("rev")]
        assert indexed == walked

    def test_indexed_predicated_step_matches_walk(self, documents):
        from repro.xquery.engine import evaluate_query
        indexed = evaluate_query(
            "//rev[name/text() = 'Alice']", documents)
        assert [element.tag for element in indexed] == ["rev", "rev"]
        walked = [element
                  for document in documents
                  for element in document.root.iter_elements("rev")
                  if any(child.text() == "Alice"
                         for child in element.children
                         if isinstance(child, Element)
                         and child.tag == "name")]
        assert indexed == walked
