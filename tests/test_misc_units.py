"""Small unit tests filling coverage gaps across modules."""

import pytest

from repro.datalog import (
    Atom,
    Comparison,
    Constant as C,
    Denial,
    Parameter as P,
    Variable as V,
)
from repro.errors import (
    IntegrityViolationError,
    ParseError,
    ReproError,
    XMLParseError,
)


class TestErrors:
    def test_parse_error_location_rendering(self):
        error = ParseError("bad thing", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"

    def test_hierarchy(self):
        assert issubclass(XMLParseError, ParseError)
        assert issubclass(ParseError, ReproError)

    def test_violation_error_lists_constraints(self):
        error = IntegrityViolationError(["a", "b"])
        assert error.violations == ["a", "b"]
        assert "a, b" in str(error)


class TestDenialHelpers:
    def test_without_removes_first_occurrence(self):
        atom = Atom("p", (V("X"),))
        other = Atom("q", (V("X"),))
        denial = Denial((atom, other))
        assert denial.without(atom) == Denial((other,))

    def test_with_literals_appends(self):
        denial = Denial((Atom("p", (V("X"),)),))
        extended = denial.with_literals((Comparison("eq", V("X"), C(1)),))
        assert len(extended.body) == 2

    def test_str_shows_parameters_plain(self):
        denial = Denial((Atom("rev", (P("ir"), V("_1"), V("_2"),
                                      P("n"))),))
        assert str(denial) == "← rev(ir,_,_,n)"


class TestConstraintSchemaExtras:
    def test_optimize_constraints_removes_redundant(self):
        from repro.core import ConstraintSchema
        from repro.datagen.running_example import PUB_DTD, REV_DTD
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            [
                # the second constraint is strictly implied by the first
                "<- //sub",
                '<- //sub[/title/text() -> T] /\\ T = "x"',
            ],
            names=["no_subs", "no_x_subs"])
        before = sum(len(c.denials) for c in schema.constraints)
        schema.optimize_constraints()
        after = sum(len(c.denials) for c in schema.constraints)
        assert after < before
        # the weaker constraint lost its denials
        assert schema.constraint("no_x_subs").denials == []

    def test_unknown_constraint_name(self, constraint_schema):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            constraint_schema.constraint("nope")


class TestUpdateDecisionDefaults:
    def test_defaults(self):
        from repro.core import UpdateDecision
        decision = UpdateDecision(True)
        assert decision.violated == []
        assert decision.optimized and not decision.applied


class TestSubstitutionParameterBinding:
    def test_parameter_binding_leaves_unknown_parameters(self):
        from repro.datalog.subst import ParameterBinding
        binder = ParameterBinding({P("a"): C(1)})
        atom = Atom("p", (P("a"), P("b")))
        result = binder.apply_literal(atom)
        assert result == Atom("p", (C(1), P("b")))

    def test_parameter_binding_folds_arithmetic(self):
        from repro.datalog.subst import ParameterBinding
        from repro.datalog.terms import Arithmetic
        binder = ParameterBinding({P("c"): C(10)})
        literal = Comparison("gt", V("X"), Arithmetic("-", P("c"), C(1)))
        result = binder.apply_literal(literal)
        assert result.right == C(9)
