"""Snapshot isolation: the MVCC-lite read path and its guarantees.

Four layers of coverage:

* :class:`~repro.xtree.node.Document.clone` — the copy-on-write
  substrate: structural equality, node-id preservation, and the
  frozen-document immutability contract;
* :class:`~repro.service.SnapshotManager` — publication, pinning,
  copy-on-write reuse, invalidation/repair and epoch reclamation;
* :class:`~repro.service.CheckingService` read paths — differential
  tests against a sequential oracle, pinned-view stability across
  commits, and the headline regression: a long-running read never
  blocks a writer and a writer holding the store lock never blocks a
  snapshot read;
* the planner's adaptive re-plan trigger — explain-observed
  cardinality drift feeds back into binding-order estimates and
  invalidates the stale cached plan.
"""

from __future__ import annotations

import string
import threading

import pytest
from hypothesis import given, strategies as st

from repro.core import IntegrityGuard
from repro.core.guard import verify_documents
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.errors import FrozenDocumentError
from repro.service import CheckingService, SnapshotManager
from repro.xquery import planner
from repro.xquery.ast import Quantified
from repro.xtree import parse_document, serialize
from repro.xtree.node import Document, Element, Text
from tests.conftest import PUB_XML, REV_XML


@pytest.fixture(scope="module")
def schema():
    return make_schema()


def fresh_documents():
    return [parse_document(PUB_XML), parse_document(REV_XML)]


# ---------------------------------------------------------------------------
# Document.clone / freeze
# ---------------------------------------------------------------------------

_tag = st.sampled_from(["a", "b", "item", "node"])
_text = st.text(alphabet=string.ascii_letters + " ",
                min_size=1, max_size=8).filter(lambda s: s.strip())


def _elements(depth: int):
    children = st.lists(
        st.one_of(
            st.builds(Text, _text),
            _elements(depth - 1) if depth > 0 else st.builds(Text, _text),
        ),
        max_size=3,
    )
    return st.builds(_build, _tag,
                     st.dictionaries(st.sampled_from(["k", "id"]),
                                     _text, max_size=2),
                     children)


def _build(tag, attrs, kids):
    element = Element(tag, attrs)
    for kid in kids:
        element.append(kid)
    return element


documents_strategy = _elements(2).map(Document)


class TestDocumentClone:
    def test_clone_serializes_identically(self):
        document = parse_document(PUB_XML)
        clone = document.clone()
        assert serialize(clone) == serialize(document)
        assert clone.frozen and not document.frozen
        assert clone.uid != document.uid

    def test_clone_preserves_node_ids(self):
        document = parse_document(REV_XML)
        clone = document.clone()
        originals = {n.node_id for n in document.root.iter()}
        copies = {n.node_id for n in clone.root.iter()}
        assert originals == copies
        # id-indexed lookup works on the clone exactly as on the source
        for node_id in originals:
            found = clone.node_by_id(node_id)
            assert found is not None
            assert found.node_id == node_id

    def test_frozen_clone_rejects_structural_mutation(self):
        clone = parse_document(PUB_XML).clone()
        with pytest.raises(FrozenDocumentError):
            clone.adopt(Element("pub"))
        with pytest.raises(FrozenDocumentError):
            clone.orphan(clone.root.element_children()[0])

    def test_unfrozen_clone_allocates_ids_above_source(self):
        document = parse_document(PUB_XML)
        clone = document.clone(freeze=False)
        high_water = max(n.node_id for n in document.root.iter())
        extra = Element("pub")
        clone.root.append(extra)
        clone.adopt(extra)
        assert extra.node_id > high_water

    @given(documents_strategy)
    def test_clone_is_equal_and_independent(self, document):
        clone = document.clone()
        before = serialize(clone)
        assert before == serialize(document)
        # mutating the source must never reach the frozen clone
        extra = Element("added")
        document.root.append(extra)
        document.adopt(extra)
        assert serialize(clone) == before


# ---------------------------------------------------------------------------
# SnapshotManager
# ---------------------------------------------------------------------------

class TestSnapshotManager:
    def test_publish_pin_unpin_lifecycle(self):
        manager = SnapshotManager()
        documents = fresh_documents()
        published = manager.publish(documents)
        pinned = manager.pin()
        assert pinned is published
        assert pinned.version == 1
        assert manager.stats()["pins"] == {1: 1}
        manager.unpin(pinned)
        stats = manager.stats()
        assert stats["pins"] == {} and stats["retired"] == 0

    def test_copy_on_write_reuses_unchanged_documents(self):
        manager = SnapshotManager()
        documents = fresh_documents()
        manager.publish(documents)
        # mutate only the publication document; the review document's
        # (uid, revision) key is unchanged and its clone is reused
        extra = Element("pub")
        documents[0].root.append(extra)
        documents[0].adopt(extra)
        second = manager.publish(documents)
        stats = manager.stats()
        assert stats["cloned"] == 3  # 2 at first publish + 1 changed
        assert stats["reused"] == 1
        first = manager.pin()
        assert first is second
        manager.unpin(first)

    def test_retired_version_survives_until_unpinned(self):
        manager = SnapshotManager()
        documents = fresh_documents()
        manager.publish(documents)
        old = manager.pin()
        manager.publish(documents)  # supersedes v1 while it is pinned
        assert manager.stats()["retired"] == 1
        assert serialize(old.documents[0])  # still fully usable
        manager.unpin(old)
        stats = manager.stats()
        assert stats["retired"] == 0
        assert stats["reclaimed"] == 1

    def test_invalidate_forces_repair(self):
        manager = SnapshotManager()
        documents = fresh_documents()
        manager.publish(documents)
        manager.invalidate()
        assert manager.pin() is None  # dirty: no lock-free snapshot
        repaired = manager.repair(documents)
        stats = manager.stats()
        assert not stats["dirty"]
        assert stats["repairs"] == 1
        assert stats["pins"] == {repaired.version: 1}
        manager.unpin(repaired)
        # clean again: the fast path is back
        assert manager.pin() is not None

    def test_repair_fast_path_pins_published(self):
        manager = SnapshotManager()
        documents = fresh_documents()
        published = manager.publish(documents)
        pinned = manager.repair(documents)
        assert pinned is published
        assert manager.stats()["repairs"] == 0
        manager.unpin(pinned)


# ---------------------------------------------------------------------------
# Service read paths
# ---------------------------------------------------------------------------

class TestServiceSnapshotReads:
    def test_reads_match_sequential_oracle(self, schema):
        service = CheckingService(schema, fresh_documents())
        oracle = IntegrityGuard(schema, fresh_documents())
        assert service.snapshot() == \
            [serialize(d) for d in oracle.documents]
        for index in range(6):
            update = submission_xupdate(
                1 + index % 2, 1, f"T{index}", f"Author {index}")
            decision = service.try_execute(update)
            assert decision.applied
            assert oracle.try_execute(update).applied
            assert service.snapshot() == \
                [serialize(d) for d in oracle.documents]
            assert service.verify_consistency() == []
            assert service.verify_consistency_locked() == []

    def test_pinned_view_is_immune_to_later_commits(self, schema):
        service = CheckingService(schema, fresh_documents())
        with service.read_view() as view:
            before = [serialize(d) for d in view.documents]
            decision = service.try_execute(
                submission_xupdate(1, 1, "New", "New Author"))
            assert decision.applied
            # the pinned view still shows the pre-commit state...
            assert [serialize(d) for d in view.documents] == before
        # ...and a fresh read sees the commit
        assert service.snapshot() != before

    def test_snapshot_documents_are_frozen(self, schema):
        service = CheckingService(schema, fresh_documents())
        with service.read_view() as view:
            with pytest.raises(FrozenDocumentError):
                view.documents[0].adopt(Element("pub"))

    def test_read_view_documents_satisfy_schema(self, schema):
        service = CheckingService(schema, fresh_documents())
        with service.read_view() as view:
            assert verify_documents(schema, list(view.documents)) == []

    def test_explain_reports_every_live_constraint(self, schema):
        service = CheckingService(schema, fresh_documents())
        reports = service.explain()
        assert reports
        assert all(report.startswith("constraint ")
                   for report in reports)

    def test_locked_mode_still_works(self, schema):
        service = CheckingService(schema, fresh_documents(),
                                  snapshot_reads=False)
        assert service.snapshots.stats()["publishes"] == 0
        decision = service.try_execute(
            submission_xupdate(1, 1, "T", "A"))
        assert decision.applied
        assert service.verify_consistency() == []
        with service.read_view() as view:
            assert len(view.documents) == 2
            assert view.version == 0  # live documents, not a snapshot

    def test_writer_fault_invalidates_then_reads_repair(self, schema):
        from repro.testing.failpoints import fail

        service = CheckingService(schema, fresh_documents())
        with fail.armed("service.store.pre_commit_append=count:1"):
            with pytest.raises(Exception):
                service.try_execute(
                    submission_xupdate(1, 1, "Doomed", "Author X"))
        assert service.snapshots.stats()["dirty"]
        # the read path repairs from the live (rolled-back) tree
        assert service.verify_consistency() == []
        stats = service.snapshots.stats()
        assert not stats["dirty"] and stats["repairs"] == 1


class TestNoBlockingRegression:
    def test_long_running_read_does_not_block_writer(self, schema):
        service = CheckingService(schema, fresh_documents())
        view_held = threading.Event()
        release = threading.Event()
        outcome: list = []

        def reader():
            with service.read_view():
                view_held.set()
                assert release.wait(timeout=10)

        def writer():
            outcome.append(service.try_execute(
                submission_xupdate(1, 1, "T", "A")))

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        assert view_held.wait(timeout=5)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # the writer must finish while the read view is still open
        writer_thread.join(timeout=5)
        assert not writer_thread.is_alive(), \
            "writer blocked behind an open read view"
        assert outcome and outcome[0].applied
        release.set()
        reader_thread.join(timeout=5)
        assert not reader_thread.is_alive()

    def test_reads_proceed_while_writer_holds_store_lock(self, schema):
        service = CheckingService(schema, fresh_documents())
        locked = threading.Event()
        release = threading.Event()

        def slow_writer():
            with service.store.write_locked():
                locked.set()
                assert release.wait(timeout=10)

        writer_thread = threading.Thread(target=slow_writer)
        writer_thread.start()
        assert locked.wait(timeout=5)
        results: list = []

        def reads():
            results.append(service.verify_consistency())
            results.append(service.snapshot())

        reader_thread = threading.Thread(target=reads)
        reader_thread.start()
        # both reads complete while the write lock is held: the
        # snapshot path never touches the store lock
        reader_thread.join(timeout=5)
        assert not reader_thread.is_alive(), \
            "snapshot read blocked behind the store write lock"
        assert results[0] == [] and len(results[1]) == 2
        release.set()
        writer_thread.join(timeout=5)


@pytest.mark.stress
@pytest.mark.slow
class TestSnapshotDifferentialStress:
    def test_concurrent_readers_see_committed_prefixes(self, schema):
        """Every concurrent view equals some sequential-oracle prefix.

        One writer applies a deterministic update sequence; each
        reader repeatedly pins a view and matches it byte-for-byte
        against the oracle state with the same number of commits —
        never a torn or intermediate state.
        """
        updates = [submission_xupdate(1 + i % 2, 1, f"T{i}", f"A {i}")
                   for i in range(30)]
        oracle = IntegrityGuard(schema, fresh_documents())
        states = {0: [serialize(d) for d in oracle.documents]}
        for count, update in enumerate(updates, start=1):
            assert oracle.try_execute(update).applied
            states[count] = [serialize(d) for d in oracle.documents]
        marker = "<title>T"  # one per committed submission

        service = CheckingService(schema, fresh_documents())
        done = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not done.is_set():
                    with service.read_view() as view:
                        serialized = [serialize(d)
                                      for d in view.documents]
                    count = sum(s.count(marker) for s in serialized)
                    assert serialized == states[count], \
                        f"view is not the {count}-commit prefix"
            except BaseException as error:  # noqa: B036 - reported
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for update in updates:
                assert service.try_execute(update).applied
        finally:
            done.set()
            for thread in readers:
                thread.join(timeout=30)
        assert not errors, errors
        assert service.snapshot() == states[len(updates)]
        stats = service.snapshots.stats()
        assert stats["pins"] == {} and stats["retired"] == 0
        assert stats["reused"] > 0  # copy-on-write did its job


@pytest.mark.fault
class TestSnapshotFaultSchedules:
    def test_mvcc_schedule_holds_invariants(self):
        from repro.testing.harness import run_scenario

        report = run_scenario(5, "mvcc", ops=30)
        assert report.faults_fired > 0

    def test_read_heavy_mix_exercises_pin_faults(self):
        from repro.testing.harness import run_scenario

        report = run_scenario(7, "mvcc", ops=30, mix="read-heavy")
        assert report.mix == "read-heavy"
        hits, fires = report.site_counts.get(
            "service.snapshots.pin", (0, 0))
        assert fires > 0
        assert "--mix read-heavy" in report.repro_command

    def test_unknown_mix_rejected(self):
        from repro.testing.harness import run_scenario

        with pytest.raises(ValueError):
            run_scenario(1, "mvcc", ops=10, mix="nope")


# ---------------------------------------------------------------------------
# Adaptive re-plan trigger
# ---------------------------------------------------------------------------

class TestAdaptiveReplan:
    def test_note_drift_feeds_estimates_until_cleared(self):
        planner.clear_caches()
        quantified = Quantified("some", (("x", "src"),), "cond")
        assert planner._feedback_estimate(quantified, 0, 2.0) == 2.0
        planner.note_drift(quantified, 0, 64)
        assert planner._feedback_estimate(quantified, 0, 2.0) == 64.0
        # the larger of estimate and observation wins
        assert planner._feedback_estimate(quantified, 0, 100.0) == 100.0
        # other bindings of the same quantifier are untouched
        assert planner._feedback_estimate(quantified, 1, 2.0) == 2.0
        planner.clear_caches()
        assert planner._feedback_estimate(quantified, 0, 2.0) == 2.0

    def test_explain_drift_corrects_the_next_plan(self, monkeypatch):
        planner.clear_caches()
        try:
            # force a gross underestimate so the profiled run drifts
            monkeypatch.setattr(planner, "_estimate_any",
                                lambda *args: (1.0, None))
            xml = ("<list>"
                   + "".join(f'<item k="{i}"/>' for i in range(24))
                   + "</list>")
            documents = [parse_document(xml)]
            # a comparison (not an equality) so the planner cannot
            # hash-join the scan away: every item is examined
            query = "some $r in //item satisfies $r/@k > 'zzz'"
            first = planner.explain_query(query, documents)
            assert "replan:" in first
            assert "cached plan invalidated" in first
            # the observed cardinality is now fed back: the re-plan
            # uses it, and the same run no longer drifts
            second = planner.explain_query(query, documents)
            assert "replan:" not in second
        finally:
            planner.clear_caches()
