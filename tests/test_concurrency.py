"""Concurrency stress harness for the thread-safe checking service.

N writer threads hammer one shared :class:`CheckingService` with a mix
of legal updates, constraint-violating updates and updates whose select
fails, while readers run full consistency checks throughout.  The
assertions are the service's whole contract:

* no torn states — every read sees either none or all of an update;
* ``verify_consistency()`` is clean at every point in time;
* the final store equals a *sequential oracle replay* of the commit
  log on fresh documents — concurrency changed nothing but the order.

Sized by ``REPRO_STRESS_THREADS`` × ``REPRO_STRESS_OPS`` (default
8 × 200, the ``make stress`` configuration).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core import IntegrityGuard
from repro.datagen.running_example import make_schema, submission_xupdate
from repro.errors import UpdateApplicationError
from repro.service import CheckingService, ReadWriteLock
from repro.xtree import parse_document, serialize
from tests.conftest import PUB_XML, REV_XML

THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "8"))
OPS = int(os.environ.get("REPRO_STRESS_OPS", "200"))


@pytest.fixture(scope="module")
def schema():
    return make_schema()


def fresh_documents():
    return [parse_document(PUB_XML), parse_document(REV_XML)]


class TestReadWriteLock:
    def test_readers_run_concurrently(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                # both readers must be inside the lock at once to
                # release the barrier; a serializing lock would block
                inside.wait()

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed: list[str] = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                time.sleep(0.05)
                observed.append("write-done")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read_locked():
                observed.append("read")

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert observed == ["write-done", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        first_reader_in = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read_locked():
                first_reader_in.set()
                writer_waiting.wait(timeout=5)
                time.sleep(0.05)
                order.append("reader1")

        def writer():
            first_reader_in.wait(timeout=5)
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(timeout=5)
            time.sleep(0.01)  # give the writer time to start waiting
            with lock.read_locked():
                order.append("reader2")

        threads = [threading.Thread(target=t)
                   for t in (first_reader, writer, late_reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        # the late reader arrived while the writer was waiting, so the
        # writer (preference) goes first
        assert order.index("writer") < order.index("reader2")

    def test_unbalanced_release_rejected(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestCheckingService:
    def test_legal_update_applies_and_logs(self, schema):
        service = CheckingService(schema, fresh_documents())
        decision = service.try_execute(
            submission_xupdate(1, 1, "New Title", "New Author"))
        assert decision.legal and decision.applied
        log = service.committed_updates()
        assert len(log) == 1 and log[0].sequence == 0

    def test_illegal_update_rejected_and_unlogged(self, schema):
        service = CheckingService(schema, fresh_documents())
        before = service.snapshot()
        decision = service.try_execute(
            submission_xupdate(1, 1, "Self Review", "Alice"))
        assert not decision.legal
        assert service.committed_updates() == []
        assert service.snapshot() == before

    def test_execute_raises_on_violation(self, schema):
        from repro.errors import IntegrityViolationError
        service = CheckingService(schema, fresh_documents())
        with pytest.raises(IntegrityViolationError):
            service.execute(submission_xupdate(1, 1, "Bad", "Alice"))

    def test_listener_exception_rolls_back_through_service(self, schema):
        service = CheckingService(schema, fresh_documents())

        def listener(update, decision):
            raise RuntimeError("injected")

        service.subscribe(listener)
        before = service.snapshot()
        with pytest.raises(RuntimeError):
            service.try_execute(submission_xupdate(1, 1, "T", "A"))
        assert service.snapshot() == before
        assert service.committed_updates() == []
        # the writer lock must have been released despite the exception
        assert service.verify_consistency() == []


@pytest.mark.stress
@pytest.mark.slow
class TestStressHarness:
    def test_mixed_workload_matches_sequential_oracle(self, schema):
        service = CheckingService(schema, fresh_documents())
        start = threading.Barrier(THREADS + 1, timeout=30)
        writers_done = threading.Event()
        errors: list[BaseException] = []

        def writer(thread_id: int):
            try:
                start.wait()
                for index in range(OPS):
                    kind = index % 4
                    if kind == 0:
                        # violates conflict_of_interest: Alice reviews
                        # her own submission
                        decision = service.try_execute(submission_xupdate(
                            1, 1, f"Bad {thread_id}-{index}", "Alice"))
                        assert not decision.legal, "illegal update passed"
                        assert not decision.applied
                    elif kind == 1:
                        # select resolves nowhere: must raise, must
                        # leave no trace
                        try:
                            service.try_execute(submission_xupdate(
                                9, 9, f"Lost {thread_id}-{index}", "X"))
                        except UpdateApplicationError:
                            pass
                        else:
                            raise AssertionError(
                                "bad select did not raise")
                    else:
                        track = 1 + (index % 2)
                        decision = service.try_execute(submission_xupdate(
                            track, 1, f"T {thread_id}-{index}",
                            f"Author {thread_id}-{index}"))
                        assert decision.legal and decision.applied
                    if index % 25 == 0:
                        assert service.verify_consistency() == [], \
                            "store inconsistent mid-stress"
            except BaseException as error:  # noqa: B036 - repropagated
                errors.append(error)

        def reader():
            try:
                start.wait()
                while not writers_done.is_set():
                    assert service.verify_consistency() == [], \
                        "reader saw an inconsistent store"
                    snapshot = service.snapshot()
                    assert len(snapshot) == 2
                    time.sleep(0.005)
            except BaseException as error:  # noqa: B036 - repropagated
                errors.append(error)

        reader_thread = threading.Thread(target=reader)
        writer_threads = [
            threading.Thread(target=writer, args=(thread_id,))
            for thread_id in range(THREADS)]
        reader_thread.start()
        for thread in writer_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=300)
        writers_done.set()
        reader_thread.join(timeout=60)
        assert not errors, f"worker failures: {errors[:3]}"
        assert not any(t.is_alive()
                       for t in writer_threads + [reader_thread])

        # every legal update committed, nothing else did
        committed = service.committed_updates()
        legal_per_thread = sum(1 for i in range(OPS) if i % 4 >= 2)
        assert len(committed) == THREADS * legal_per_thread
        assert [record.sequence for record in committed] \
            == list(range(len(committed)))

        # the final store equals a sequential replay of the commit log
        # on fresh documents — zero torn states
        oracle_documents = fresh_documents()
        oracle = IntegrityGuard(schema, oracle_documents)
        for record in committed:
            decision = oracle.try_execute(record.update)
            assert decision.legal and decision.applied
        assert [serialize(document) for document in oracle_documents] \
            == service.snapshot()
        assert service.verify_consistency() == []
