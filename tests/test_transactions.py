"""Tests for multi-operation transactions (deferred checking).

Definition 2 treats an update as a *set* of added tuples, and section 2
notes the framework "complies with the semantics of deferred integrity
checking (integrity constraints do not have to hold in intermediate
transaction states)".  A registered multi-append transaction is
simplified as one pattern and checked once, before anything executes.
"""

import pytest

from repro.core import ConstraintSchema, IntegrityGuard
from repro.datagen.running_example import PUB_DTD, REV_DTD
from repro.datalog import Parameter as P
from repro.errors import SimplificationError
from repro.xtree import parse_document, serialize
from repro.xupdate import parse_modifications
from repro.xupdate.analyze import analyze_transaction

REFERENTIAL = (
    "<- //sub/title/text() -> T /\\ not(//pub[/title/text() -> T])")


def pub_and_sub(title: str, author: str) -> str:
    """One transaction: register a publication AND assign a submission
    of the same title — legal only under deferred semantics when the
    submission precedes... here the sub comes FIRST, so per-operation
    checking would reject it while deferred checking accepts."""
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/review/track[1]/rev[1]">
        <sub><title>{title}</title><auts><name>{author}</name></auts></sub>
      </xupdate:append>
      <xupdate:append select="/dblp">
        <pub><title>{title}</title><aut><name>{author}</name></aut></pub>
      </xupdate:append>
    </xupdate:modifications>"""


def two_subs(first: str, second: str) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/review/track[1]/rev[1]">
        <sub><title>{first}</title><auts><name>A One</name></auts></sub>
      </xupdate:append>
      <xupdate:append select="/review/track[1]/rev[1]">
        <sub><title>{second}</title><auts><name>A Two</name></auts></sub>
      </xupdate:append>
    </xupdate:modifications>"""


@pytest.fixture()
def docs():
    pub = parse_document(
        "<dblp><pub><title>Streams</title>"
        "<aut><name>Author X</name></aut></pub></dblp>")
    rev = parse_document(
        "<review><track><name>T</name><rev><name>Reviewer R</name>"
        "<sub><title>Streams</title><auts><name>Author X</name></auts>"
        "</sub></rev></track></review>")
    return [pub, rev]


class TestAnalysis:
    def test_combined_pattern_renames_parameters(self, relational_schema):
        operations = parse_modifications(two_subs("a", "b"))
        analyzed = analyze_transaction(operations, relational_schema)
        names = sorted(p.name for p in analyzed.pattern.parameters())
        assert len(names) == len(set(names))
        assert len(analyzed.pattern.additions) == 4  # 2 subs + 2 auts
        assert len(analyzed.pattern.fresh_parameters) == 4

    def test_hypotheses_follow_renaming(self, relational_schema):
        operations = parse_modifications(two_subs("a", "b"))
        analyzed = analyze_transaction(operations, relational_schema)
        hypothesis_params = set()
        for denial in analyzed.hypotheses:
            hypothesis_params |= denial.parameters()
        assert hypothesis_params <= analyzed.pattern.parameters()

    def test_single_operation_rejected(self, relational_schema):
        operations = parse_modifications(two_subs("a", "b"))[:1]
        with pytest.raises(SimplificationError):
            analyze_transaction(operations, relational_schema)

    def test_non_append_rejected(self, relational_schema):
        text = """<xupdate:modifications
            xmlns:xupdate="http://www.xmldb.org/xupdate">
          <xupdate:insert-after select="//sub[1]"><sub><title>x</title>
            <auts><name>y</name></auts></sub></xupdate:insert-after>
          <xupdate:append select="//rev[1]"><sub><title>z</title>
            <auts><name>w</name></auts></sub></xupdate:append>
        </xupdate:modifications>"""
        operations = parse_modifications(text)
        with pytest.raises(SimplificationError):
            analyze_transaction(operations, relational_schema)

    def test_position_offsets_for_shared_parent(self, relational_schema,
                                                docs):
        operations = parse_modifications(two_subs("a", "b"))
        analyzed = analyze_transaction(operations, relational_schema)
        bindings = analyzed.bind(
            docs, operations,
            lambda op: docs[1])
        positions = sorted(
            value for name, value in bindings.items()
            if name.startswith("ps"))
        # the rev has name + 1 sub; the two new subs land at 3 and 4
        assert positions == [3, 4]


class TestDeferredSemantics:
    def test_deferred_accepts_what_per_op_rejects(self, docs):
        schema = ConstraintSchema([PUB_DTD, REV_DTD], [REFERENTIAL],
                                  names=["ref"])
        schema.register_pattern(pub_and_sub("x", "y"))
        guard = IntegrityGuard(schema, docs)
        # the sub's title only exists because the SAME transaction adds
        # the pub: deferred checking accepts
        decision = guard.try_execute(pub_and_sub("Fresh Title", "New A"))
        assert decision.legal and decision.applied and decision.optimized
        titles = [p.first_child("title").text()
                  for p in docs[0].iter_elements("pub")]
        assert "Fresh Title" in titles

    def test_per_op_checking_still_rejects_unregistered(self, docs):
        schema = ConstraintSchema([PUB_DTD, REV_DTD], [REFERENTIAL],
                                  names=["ref"])
        # transaction NOT registered: falls back to per-operation
        # checking, and the sub comes before its pub → rejected
        guard = IntegrityGuard(schema, docs)
        snapshot = [serialize(doc) for doc in docs]
        decision = guard.try_execute(pub_and_sub("Fresh Title", "New A"))
        assert not decision.legal
        assert [serialize(doc) for doc in docs] == snapshot

    def test_transaction_violation_applies_nothing(self, docs):
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            ["<- //rev[/name/text() -> R]/sub/auts/name/text() -> R"],
            names=["self_review"])
        schema.register_pattern(two_subs("a", "b"))
        guard = IntegrityGuard(schema, docs)
        snapshot = [serialize(doc) for doc in docs]
        bad = two_subs("ok", "bad").replace("A Two", "Reviewer R")
        decision = guard.try_execute(bad)
        assert not decision.legal
        assert decision.violated == ["self_review"]
        assert [serialize(doc) for doc in docs] == snapshot

    def test_legal_transaction_applies_all(self, docs):
        schema = ConstraintSchema(
            [PUB_DTD, REV_DTD],
            ["<- //rev[/name/text() -> R]/sub/auts/name/text() -> R"],
            names=["self_review"])
        schema.register_pattern(two_subs("a", "b"))
        guard = IntegrityGuard(schema, docs)
        decision = guard.try_execute(two_subs("First", "Second"))
        assert decision.legal and decision.applied
        subs = [s.first_child("title").text()
                for s in docs[1].iter_elements("sub")]
        assert subs == ["Streams", "First", "Second"]
