#!/usr/bin/env python3
"""Regression gate over the columnar backend ablation benchmarks.

Reads a pytest-benchmark JSON (``BENCH_columnar.json``) and enforces:

* **acceptance floors** — at the largest paper size (128 KiB groups),
  the columnar backend must beat the ablated planned-DOM arm by
  >= 2x median on both the fig1a full check and the 32-update batch;
* **baseline comparison** — with ``--baseline`` (the committed
  ``BENCH_columnar.json``), every ablation pair present in both files
  must not regress: the columnar/planned-DOM median *fraction* (a
  machine-independent measure — both arms run on the same box) may not
  exceed the baseline fraction by more than ``--tolerance`` (default
  20%) plus a small absolute slack that keeps sub-millisecond noise
  from tripping the gate.

Exit code 1 on any violation, with one line per failed check.
"""

from __future__ import annotations

import argparse
import json
import sys

#: group-prefix → minimum required median speedup (slow / fast) at the
#: largest benchmarked size
FLOORS = {
    "columnar-fig1a": 2.0,
    "columnar-batch32": 2.0,
}
FLOOR_SIZE = "128KiB"

#: substrings identifying the fast / slow arm of each ablation pair
FAST_MARKERS = ("columnar",)
SLOW_MARKERS = ("planned_dom",)


def _arm(name: str) -> str | None:
    for marker in SLOW_MARKERS:
        if marker in name:
            return "slow"
    for marker in FAST_MARKERS:
        if marker in name:
            return "fast"
    return None


def load_fractions(path: str) -> dict[str, float]:
    """group → (fast median / slow median), one entry per ablation
    pair."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    medians: dict[str, dict[str, float]] = {}
    for bench in report["benchmarks"]:
        group = bench.get("group") or ""
        arm = _arm(bench["name"])
        if not group.startswith("columnar-") or arm is None:
            continue
        medians.setdefault(group, {})[arm] = bench["stats"]["median"]
    fractions: dict[str, float] = {}
    for group, arms in sorted(medians.items()):
        if "fast" in arms and "slow" in arms and arms["slow"] > 0:
            fractions[group] = arms["fast"] / arms["slow"]
    return fractions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="benchmark JSON to check")
    parser.add_argument("--baseline",
                        help="committed baseline JSON to compare against")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression of the "
                             "columnar/planned-DOM fraction "
                             "(default 0.20)")
    parser.add_argument("--slack", type=float, default=0.02,
                        help="absolute fraction slack added on top of "
                             "the tolerance (default 0.02)")
    args = parser.parse_args(argv)

    current = load_fractions(args.current)
    if not current:
        print("gate: no columnar ablation pairs found in "
              f"{args.current}", file=sys.stderr)
        return 1
    failures: list[str] = []

    for group, fraction in current.items():
        speedup = 1.0 / fraction if fraction > 0 else float("inf")
        print(f"gate: {group}: columnar/planned-DOM fraction "
              f"{fraction:.4f} (speedup {speedup:.2f}x)")
        if not group.endswith(FLOOR_SIZE):
            continue
        for prefix, floor in FLOORS.items():
            if group.startswith(prefix) and speedup < floor:
                failures.append(
                    f"{group}: speedup {speedup:.2f}x below the "
                    f"{floor:.1f}x acceptance floor")

    if args.baseline:
        baseline = load_fractions(args.baseline)
        for group, fraction in current.items():
            reference = baseline.get(group)
            if reference is None:
                continue
            allowed = reference * (1.0 + args.tolerance) + args.slack
            if fraction > allowed:
                failures.append(
                    f"{group}: fraction {fraction:.4f} regressed past "
                    f"{allowed:.4f} (baseline {reference:.4f} "
                    f"+{args.tolerance:.0%} +{args.slack})")

    for failure in failures:
        print(f"gate FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("gate: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
