#!/usr/bin/env python3
"""Regression gate over the service load harness (BENCH_service.json).

Reads the custom JSON emitted by ``benchmarks/test_service_load.py``
and enforces the two headline properties of the MVCC-lite read path:

* **read scaling** — in the ``mix20`` scenario (snapshot mode, ~20%
  writes), read throughput at 16 readers must be at least
  ``--min-scaling`` (default 3.0) times the 1-reader throughput.
  Closed-loop clients with calibrated think time make this a test of
  reader independence, not CPU parallelism: a read path that
  serializes on a lock caps near 1x regardless of think time.
* **tail latency** — in the ``write-heavy`` scenario (batched writer
  at a ~50% duty cycle), snapshot-read p99 must be at most
  ``--max-p99-ratio`` (default 0.5) times locked-read p99: readers
  that wait out the writer's critical section inherit the batch
  length in their tail, readers on the snapshot path don't.

With ``--baseline`` (the committed ``BENCH_service.json``) the same
two figures are additionally compared against the baseline run: the
scaling factor may not drop below ``1 - tolerance`` of the baseline's,
and the p99 ratio may not exceed ``1 + tolerance`` of the baseline's.
Ratios of same-box measurements are machine-independent, which is
what makes a short CI smoke comparable to the committed full run.

Exit code 1 on any violation, with one line per failed check.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_cells(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    return report["cells"]


def _cell(cells: list[dict], scenario: str, mode: str,
          readers: int | None = None) -> dict | None:
    for cell in cells:
        if cell["scenario"] != scenario or cell["mode"] != mode:
            continue
        if readers is not None and cell["readers"] != readers:
            continue
        return cell
    return None


def read_scaling(cells: list[dict]) -> float | None:
    """mix20 snapshot read throughput at 16 readers over 1 reader."""
    one = _cell(cells, "mix20", "snapshot", readers=1)
    sixteen = _cell(cells, "mix20", "snapshot", readers=16)
    if one is None or sixteen is None:
        return None
    base = one["read"]["throughput"]
    return sixteen["read"]["throughput"] / base if base else None


def p99_ratio(cells: list[dict]) -> float | None:
    """write-heavy snapshot read p99 over locked read p99."""
    snapshot = _cell(cells, "write-heavy", "snapshot")
    locked = _cell(cells, "write-heavy", "locked")
    if snapshot is None or locked is None:
        return None
    locked_p99 = locked["read"]["p99_ms"]
    if not locked_p99:
        return None
    return snapshot["read"]["p99_ms"] / locked_p99


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("report", help="BENCH_service.json to check")
    parser.add_argument("--min-scaling", type=float, default=3.0,
                        help="minimum mix20 read-throughput scaling, "
                             "16 readers vs 1 (default: 3.0)")
    parser.add_argument("--max-p99-ratio", type=float, default=0.5,
                        help="maximum write-heavy snapshot/locked "
                             "read-p99 ratio (default: 0.5)")
    parser.add_argument("--baseline",
                        help="committed BENCH_service.json to compare "
                             "ratios against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drift vs the baseline "
                             "ratios (default: 0.25)")
    args = parser.parse_args()

    cells = load_cells(args.report)
    failures: list[str] = []

    scaling = read_scaling(cells)
    if scaling is None:
        failures.append("missing mix20 snapshot cells at 1 and 16 "
                        "readers")
    else:
        print(f"mix20 read scaling (16 vs 1 readers): {scaling:.2f}x "
              f"(floor {args.min_scaling:.2f}x)")
        if scaling < args.min_scaling:
            failures.append(
                f"read throughput scaling {scaling:.2f}x is below "
                f"the {args.min_scaling:.2f}x floor — the snapshot "
                "read path is serializing readers")

    ratio = p99_ratio(cells)
    if ratio is None:
        failures.append("missing write-heavy snapshot/locked cells")
    else:
        print(f"write-heavy read p99, snapshot/locked: {ratio:.2f} "
              f"(ceiling {args.max_p99_ratio:.2f})")
        if ratio > args.max_p99_ratio:
            failures.append(
                f"snapshot-read p99 is {ratio:.2f}x the locked-read "
                f"p99 (ceiling {args.max_p99_ratio:.2f}) — snapshot "
                "reads are not insulating tails from writers")

    if args.baseline:
        base_cells = load_cells(args.baseline)
        base_scaling = read_scaling(base_cells)
        base_ratio = p99_ratio(base_cells)
        if scaling is not None and base_scaling:
            floor = base_scaling * (1.0 - args.tolerance)
            print(f"baseline scaling {base_scaling:.2f}x -> "
                  f"regression floor {floor:.2f}x")
            if scaling < floor:
                failures.append(
                    f"read scaling {scaling:.2f}x regressed more "
                    f"than {args.tolerance:.0%} below the baseline's "
                    f"{base_scaling:.2f}x")
        if ratio is not None and base_ratio:
            ceiling = base_ratio * (1.0 + args.tolerance)
            print(f"baseline p99 ratio {base_ratio:.2f} -> "
                  f"regression ceiling {ceiling:.2f}")
            if ratio > ceiling:
                failures.append(
                    f"p99 ratio {ratio:.2f} regressed more than "
                    f"{args.tolerance:.0%} above the baseline's "
                    f"{base_ratio:.2f}")

    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("service load gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
