#!/usr/bin/env python
"""Approximate line coverage of the gated packages, without pytest-cov.

CI gates ``src/repro/xupdate``, ``src/repro/core``,
``src/repro/service``, ``src/repro/relational`` and
``src/repro/analysis`` with pytest-cov's ``--cov-fail-under``; this
script reproduces the measurement with nothing but the standard
library (a ``sys.settrace`` line collector against ``co_lines()``
executable-line sets), for environments where pytest-cov is not
installed and for re-deriving the pinned floor after refactors.

The number is an *approximation* of coverage.py's (it counts lines
reachable through code objects, coverage.py analyzes arcs), so the CI
floor should be pinned a few points below what this reports.

Usage: PYTHONPATH=src python scripts/measure_coverage.py [pytest args]
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GATED = [
    REPO / "src" / "repro" / "xupdate",
    REPO / "src" / "repro" / "core",
    REPO / "src" / "repro" / "service",
    # the incremental relational backend and the analysis passes
    # (safety datalog + XIC5xx lock discipline) joined the gate when
    # they became load-bearing; adding them moved the measured
    # baseline from ~92% to ~90%, and the CI floor from 85 to 83.
    REPO / "src" / "repro" / "relational",
    REPO / "src" / "repro" / "analysis",
]

#: mirrored from ``[tool.coverage.run] omit`` in pyproject.toml: the
#: networked service runs in worker subprocesses and is gated by the
#: service-e2e CI leg, not the unit-coverage floor
OMITTED = [REPO / "src" / "repro" / "service" / "net"]

executed: set[tuple[str, int]] = set()
_gated_files = {
    str(path) for root in GATED for path in root.rglob("*.py")
    if not any(path.is_relative_to(omit) for omit in OMITTED)}


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if filename not in _gated_files:
        return None
    if event == "line":
        executed.add((filename, frame.f_lineno))
    return _trace


def _executable_lines(path: str) -> set[int]:
    lines: set[int] = set()
    code = compile(Path(path).read_text(encoding="utf-8"), path, "exec")
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines()
                     if line is not None)
        stack.extend(const for const in obj.co_consts
                     if hasattr(const, "co_lines"))
    return lines


def main() -> int:
    import pytest

    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        exit_code = pytest.main(
            sys.argv[1:] or ["-q", str(REPO / "tests")])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); "
              "coverage numbers would be meaningless", file=sys.stderr)
        return int(exit_code)

    total_executable = total_executed = 0
    print()
    print(f"{'file':60s} {'stmts':>6s} {'miss':>6s} {'cover':>6s}")
    for filename in sorted(_gated_files):
        executable = _executable_lines(filename)
        hit = {line for name, line in executed if name == filename}
        missed = executable - hit
        total_executable += len(executable)
        total_executed += len(executable) - len(missed)
        percent = 100.0 * (len(executable) - len(missed)) \
            / len(executable) if executable else 100.0
        rel = str(Path(filename).relative_to(REPO))
        print(f"{rel:60s} {len(executable):6d} {len(missed):6d} "
              f"{percent:5.1f}%")
    percent = 100.0 * total_executed / total_executable
    print(f"{'TOTAL':60s} {total_executable:6d} "
          f"{total_executable - total_executed:6d} {percent:5.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
