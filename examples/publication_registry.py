"""A different domain: a publication registry with key constraints.

Shows the system on a schema you define yourself — a registry of books
with ISBN-like identifiers, reproducing the paper's example 4/5 (the
uniqueness denial ``← p(X,Y) ∧ p(X,Z) ∧ Y ≠ Z``) at the XML level:

* ``isbn_unique`` — two books with the same ISBN must agree on the
  title (the simplified check upon registering a book becomes
  "no existing book with this ISBN has a different title");
* ``no_future_editions`` — edition numbers are capped per ISBN with a
  ``Cnt`` aggregate.

Run with::

    python examples/publication_registry.py
"""

from repro import ConstraintSchema, IntegrityGuard, parse_document

REGISTRY_DTD = """
<!ELEMENT registry (book)*>
<!ELEMENT book (isbn, title, edition*)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT edition (year)>
<!ELEMENT year (#PCDATA)>
"""

# example 4 at the XML level: same ISBN, different titles — forbidden
ISBN_UNIQUE = """
<- //book[/isbn/text() -> I]/title/text() -> T1
   /\\ //book[/isbn/text() -> I]/title/text() -> T2
   /\\ T1 != T2
"""

# at most 4 editions of any single book
EDITION_CAP = """
<- Cnt_D{[I]; //book[/isbn/text() -> I]/edition} > 4
"""

REGISTRY_XML = """<registry>
  <book><isbn>0-201-53082-1</isbn><title>Foundations of Databases</title>
    <edition><year>1995</year></edition>
  </book>
  <book><isbn>0-321-19784-4</isbn><title>Database Systems</title>
    <edition><year>2001</year></edition>
    <edition><year>2004</year></edition>
    <edition><year>2007</year></edition>
    <edition><year>2009</year></edition>
  </book>
</registry>"""


def register_book(isbn: str, title: str) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/registry">
        <book><isbn>{isbn}</isbn><title>{title}</title></book>
      </xupdate:append>
    </xupdate:modifications>"""


def add_edition(book_index: int, year: int) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/registry/book[{book_index}]">
        <edition><year>{year}</year></edition>
      </xupdate:append>
    </xupdate:modifications>"""


def main() -> None:
    schema = ConstraintSchema(
        dtds=[REGISTRY_DTD],
        constraints=[ISBN_UNIQUE, EDITION_CAP],
        names=["isbn_unique", "edition_cap"],
    )
    schema.register_pattern(register_book("x", "y"))
    schema.register_pattern(add_edition(1, 2000))
    print(schema.describe())

    document = parse_document(REGISTRY_XML)
    guard = IntegrityGuard(schema, [document])

    print()
    scenarios = [
        ("new book", register_book("0-13-110362-8", "The C Book")),
        ("same ISBN, same title",
         register_book("0-201-53082-1", "Foundations of Databases")),
        ("same ISBN, DIFFERENT title",
         register_book("0-201-53082-1", "Pirated Databases")),
        ("5th edition of a 4-edition book", add_edition(2, 2012)),
        ("2nd edition of a 1-edition book", add_edition(1, 1996)),
    ]
    for label, update in scenarios:
        decision = guard.try_execute(update)
        verdict = "accepted" if decision.legal \
            else f"REJECTED ({', '.join(decision.violated)})"
        print(f"  {label:35} → {verdict}")

    books = len(document.root.element_children("book"))
    print(f"\nRegistry now holds {books} books "
          "(illegal registrations were never applied).")


if __name__ == "__main__":
    main()
