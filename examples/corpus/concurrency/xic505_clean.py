"""XIC505 clean fixture: both declaration forms cover their locks — a
``# guarded-by:`` comment for the module global, ``@guarded_by`` for
the class attribute."""

import threading

from repro.analysis.concurrency import guarded_by

_SHARED: dict = {}  # guarded-by: _SHARED_LOCK
_SHARED_LOCK = threading.Lock()


def mutate(key, value) -> None:
    with _SHARED_LOCK:
        _SHARED[key] = value


@guarded_by("self._lock", "_items")
class Box:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list = []

    def add(self, item) -> None:
        with self._lock:
            self._items.append(item)
