"""XIC502 firing fixture: nested ``with`` blocks acquire two ranked
locks against the canonical LOCK_ORDER (``document`` is outer to
``planner.plan_cache``)."""

from repro.analysis.concurrency import make_lock, make_rlock

_PLANS: dict = {}  # guarded-by: _PLAN_LOCK
_PLAN_LOCK = make_lock("planner.plan_cache")
_NODES: dict = {}  # guarded-by: _DOC_LOCK
_DOC_LOCK = make_rlock("document")


def invalidate(tag: str) -> None:
    # BAD: takes the (inner) plan-cache lock first, then the
    # (outer) document lock — the reverse of the canonical order
    with _PLAN_LOCK:
        with _DOC_LOCK:
            _PLANS.pop(tag, None)
            _NODES.pop(tag, None)
