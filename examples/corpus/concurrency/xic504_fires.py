"""XIC504 firing fixture: blocking work while a document-ranked lock
is held."""

import time

from repro.analysis.concurrency import guarded_by, make_rlock


@guarded_by("self._lock", "_nodes")
class Tree:
    def __init__(self) -> None:
        self._lock = make_rlock("document")
        self._nodes: dict = {}

    def checkpoint(self) -> None:
        with self._lock:
            self._nodes["checkpointed"] = True
            # BAD: every reader of the document stalls for the sleep
            time.sleep(0.1)
