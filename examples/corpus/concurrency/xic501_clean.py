"""XIC501 clean fixture: every guarded access holds the lock, either
directly or via a ``@requires_lock``-marked helper."""

import threading

from repro.analysis.concurrency import guarded_by, requires_lock


@guarded_by("self._lock", "_entries")
class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict = {}

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        with self._lock:
            return self._lookup(key)

    @requires_lock("self._lock")
    def _lookup(self, key):
        return self._entries.get(key)
