"""XIC501 firing fixture: guarded attribute touched without its lock."""

import threading

from repro.analysis.concurrency import guarded_by


@guarded_by("self._lock", "_entries")
class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict = {}

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        # BAD: reads the guarded dict with no lock held
        return self._entries.get(key)
