"""XIC503 firing fixture: a raw ``acquire()`` whose release is not
protected by an immediately following ``try/finally``."""

import threading

_LOG: list = []  # guarded-by: _LOG_LOCK
_LOG_LOCK = threading.Lock()


def append(entry) -> None:
    with _LOG_LOCK:
        _LOG.append(entry)


def flush(sink) -> None:
    # BAD: an exception in sink() leaks the lock forever
    _LOG_LOCK.acquire()
    sink("flushed")
    _LOG_LOCK.release()
