"""XIC502 clean fixture: nested acquisition follows the canonical
LOCK_ORDER (``document`` before ``planner.plan_cache``)."""

from repro.analysis.concurrency import make_lock, make_rlock

_PLANS: dict = {}  # guarded-by: _PLAN_LOCK
_PLAN_LOCK = make_lock("planner.plan_cache")
_NODES: dict = {}  # guarded-by: _DOC_LOCK
_DOC_LOCK = make_rlock("document")


def invalidate(tag: str) -> None:
    with _DOC_LOCK:
        _NODES.pop(tag, None)
        with _PLAN_LOCK:
            _PLANS.pop(tag, None)
