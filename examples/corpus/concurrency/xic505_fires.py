"""XIC505 firing fixture: a lock created without any guarded_by /
``# guarded-by:`` declaration — invisible to the discipline checks."""

import threading

# BAD: nothing says what this lock protects
_ORPHAN_LOCK = threading.Lock()


def mutate(shared: dict, key, value) -> None:
    with _ORPHAN_LOCK:
        shared[key] = value
