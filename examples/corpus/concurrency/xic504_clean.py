"""XIC504 clean fixture: the blocking work happens after the
document-ranked lock is released."""

import time

from repro.analysis.concurrency import guarded_by, make_rlock


@guarded_by("self._lock", "_nodes")
class Tree:
    def __init__(self) -> None:
        self._lock = make_rlock("document")
        self._nodes: dict = {}

    def checkpoint(self) -> None:
        with self._lock:
            self._nodes["checkpointed"] = True
        time.sleep(0.1)
