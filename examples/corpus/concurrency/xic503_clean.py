"""XIC503 clean fixture: the raw ``acquire()`` is immediately followed
by ``try``/``finally`` releasing the lock."""

import threading

_LOG: list = []  # guarded-by: _LOG_LOCK
_LOG_LOCK = threading.Lock()


def append(entry) -> None:
    with _LOG_LOCK:
        _LOG.append(entry)


def flush(sink) -> None:
    _LOG_LOCK.acquire()
    try:
        sink("flushed")
    finally:
        _LOG_LOCK.release()
