"""Quickstart: the paper's running example in ~60 lines.

Declares the two document DTDs and the conflict-of-interest constraint
(example 1), registers the single-author-submission update pattern
(example 6), and guards a few updates — legal ones go through, illegal
ones are rejected *before* touching the documents.

Run with::

    python examples/quickstart.py
"""

from repro import ConstraintSchema, IntegrityGuard, parse_document

PUB_DTD = """
<!ELEMENT dblp (pub)*>     <!ELEMENT pub (title, aut+)>
<!ELEMENT title (#PCDATA)> <!ELEMENT aut (name)>
<!ELEMENT name (#PCDATA)>
"""

REV_DTD = """
<!ELEMENT review (track)+> <!ELEMENT track (name, rev+)>
<!ELEMENT name (#PCDATA)>  <!ELEMENT rev (name, sub+)>
<!ELEMENT sub (title, auts+)> <!ELEMENT title (#PCDATA)>
<!ELEMENT auts (name)>
"""

# Example 1: nobody reviews a paper written by a coauthor or themselves.
CONFLICT_OF_INTEREST = """
<- //rev[/name/text() -> R]/sub/auts/name/text() -> A
   /\\ (A = R \\/ //pub[/aut/name/text() -> A /\\ aut/name/text() -> R])
"""

PUB_XML = """<dblp>
  <pub><title>Duckburg tales</title>
    <aut><name>Alice</name></aut><aut><name>Bob</name></aut></pub>
</dblp>"""

REV_XML = """<review>
  <track><name>Databases</name>
    <rev><name>Alice</name>
      <sub><title>Streams</title><auts><name>Erin</name></auts></sub>
    </rev>
  </track>
</review>"""


def submission(author: str, title: str) -> str:
    """An XUpdate statement assigning a new submission to Alice."""
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/review/track[1]/rev[1]">
        <xupdate:element name="sub">
          <title>{title}</title>
          <auts><name>{author}</name></auts>
        </xupdate:element>
      </xupdate:append>
    </xupdate:modifications>"""


def main() -> None:
    # -- schema design time ------------------------------------------------
    schema = ConstraintSchema(
        dtds=[PUB_DTD, REV_DTD],
        constraints=[CONFLICT_OF_INTEREST],
        names=["conflict_of_interest"],
    )
    schema.register_pattern(submission("someone", "something"))
    print("Compiled design-time artifacts")
    print("==============================")
    print(schema.describe())

    # -- run time ------------------------------------------------------------
    pub_doc = parse_document(PUB_XML)
    rev_doc = parse_document(REV_XML)
    guard = IntegrityGuard(schema, [pub_doc, rev_doc])

    print()
    print("Guarding updates")
    print("================")
    for author, title in [
        ("Newcomer", "Fresh Ideas"),   # fine
        ("Alice", "Self Review"),      # Alice reviews herself
        ("Bob", "Friendly Review"),    # Bob coauthored with Alice
    ]:
        decision = guard.try_execute(submission(author, title))
        verdict = "accepted" if decision.legal else \
            f"REJECTED ({', '.join(decision.violated)})"
        print(f"  submission by {author!r:12} → {verdict}")

    titles = [sub.first_child("title").text()
              for sub in rev_doc.iter_elements("sub")]
    print()
    print(f"Submissions now assigned to Alice: {titles}")
    assert titles == ["Streams", "Fresh Ideas"]


if __name__ == "__main__":
    main()
