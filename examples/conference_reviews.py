"""Conference review management at scale.

Generates a realistic review corpus (tracks, reviewers, submissions,
publications with coauthor lists), guards a mixed stream of assignment
updates with both strategies of the paper's evaluation, and reports
their cost side by side:

* the **optimized** strategy checks the simplified constraints *before*
  the update (illegal updates are never applied);
* the **brute-force** strategy applies the update, re-checks the full
  constraints and rolls back on violation.

Run with::

    python examples/conference_reviews.py [target_kib]
"""

import random
import sys
import time

from repro import BruteForceChecker, IntegrityGuard, parse_document, serialize
from repro.datagen import (
    corpus_size_bytes,
    generate_corpus,
    illegal_submission,
    legal_submission,
    spec_for_size,
)
from repro.datagen.running_example import make_schema


def timed(action):
    start = time.perf_counter()
    result = action()
    return result, (time.perf_counter() - start) * 1000


def copy_documents(documents):
    """Independent copies so each strategy sees the same state stream."""
    return [parse_document(serialize(document)) for document in documents]


def main() -> None:
    target_kib = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    spec = spec_for_size(target_kib * 1024)
    pub_doc, rev_doc = generate_corpus(spec)
    size_kib = corpus_size_bytes((pub_doc, rev_doc)) / 1024
    print(f"Corpus: {size_kib:.0f} KiB "
          f"({spec.tracks} tracks × {spec.revs_per_track} reviewers, "
          f"{spec.pubs} publications)")

    schema = make_schema()
    rng = random.Random(7)
    updates = [("legal", legal_submission(rev_doc, rng))
               for _ in range(6)]
    updates.append(("conflict", illegal_submission(rev_doc, rng,
                                                   "conflict")))
    updates.append(("workload", illegal_submission(rev_doc, rng,
                                                   "workload")))
    rng.shuffle(updates)

    guard = IntegrityGuard(schema, copy_documents([pub_doc, rev_doc]))
    brute = BruteForceChecker(schema, copy_documents([pub_doc, rev_doc]))

    print()
    print(f"{'update':10} {'optimized':>16} {'brute force':>16}")
    print("-" * 52)
    total_optimized = total_brute = 0.0
    for kind, update in updates:
        optimized, optimized_ms = timed(lambda: guard.try_execute(update))
        brute_verdict, brute_ms = timed(lambda: brute.try_execute(update))
        assert optimized.legal == brute_verdict.legal
        verdict = "ok" if optimized.legal else "rejected"
        print(f"{kind:10} {optimized_ms:11.1f} ms {brute_ms:13.1f} ms"
              f"   {verdict}")
        total_optimized += optimized_ms
        total_brute += brute_ms
    print("-" * 52)
    speedup = total_brute / total_optimized if total_optimized else 0
    print(f"{'total':10} {total_optimized:11.1f} ms"
          f" {total_brute:13.1f} ms   ({speedup:.1f}x faster)")

    print()
    print("Early detection: illegal updates were never applied by the")
    print("optimized guard; the brute-force checker applied and rolled")
    print("them back.")


if __name__ == "__main__":
    main()
