"""Aggregate policies: the conference-workload constraint up close.

Walks through the paper's example 2 ("a reviewer involved in three or
more tracks cannot review more than 10 papers") plus a hard per-name
cap from the same aggregate family as example 7, showing

* how the aggregate constraints compile to Datalog denials;
* how ``Simp`` lowers the aggregate bounds (``> 10`` becomes ``> 9``,
  ``> 12`` becomes ``> 11``) and pins the group to the update's target
  reviewer;
* threshold behaviour at run time: the same reviewer accepts
  submissions right up to the cap and is refused the one that crosses
  it.

Run with::

    python examples/workload_policies.py
"""

from repro import ConstraintSchema, IntegrityGuard, parse_document
from repro.datagen.running_example import (
    CONFERENCE_WORKLOAD,
    PUB_DTD,
    REV_DTD,
    submission_xupdate,
)

# a hard cap, independent of tracks: nobody reviews more than 12
# papers in total (same aggregate family as example 7)
TOTAL_CAP = """
<- Cnt_D{[R]; //rev[/name/text() -> R]/sub} > 12
"""


def build_rev_doc() -> str:
    """Prof. Busy: 3 tracks, 9 submissions.  Dr. Calm: 1 track, 12."""
    def sub(k):
        return (f"<sub><title>S{k}</title>"
                f"<auts><name>Author {k}</name></auts></sub>")

    def rev(name, first, count):
        subs = "".join(sub(k) for k in range(first, first + count))
        return f"<rev><name>{name}</name>{subs}</rev>"

    tracks = [
        ("Databases", rev("Prof. Busy", 0, 4) + rev("Dr. Calm", 100, 12)),
        ("Theory", rev("Prof. Busy", 10, 3)),
        ("Systems", rev("Prof. Busy", 20, 2)),
    ]
    body = "".join(
        f"<track><name>{name}</name>{revs}</track>"
        for name, revs in tracks)
    return f"<review>{body}</review>"


def main() -> None:
    schema = ConstraintSchema(
        dtds=[PUB_DTD, REV_DTD],
        constraints=[CONFERENCE_WORKLOAD, TOTAL_CAP],
        names=["workload", "total_cap"],
    )
    schema.register_pattern(submission_xupdate(1, 1, "x", "y"))

    print("Compiled constraints and simplified checks")
    print("==========================================")
    print(schema.describe())

    rev_doc = parse_document(build_rev_doc())
    pub_doc = parse_document("<dblp></dblp>")
    guard = IntegrityGuard(schema, [pub_doc, rev_doc])

    print()
    print("Prof. Busy: 3 tracks, 9 subs.  Dr. Calm: 1 track, 12 subs.")
    print("==========================================================")
    steps = [
        # (track, rev index within track, expectation)
        (3, 1, "Busy's 10th submission (3 tracks, 10 <= 10)"),
        (3, 1, "Busy's 11th submission (3 tracks, 11 > 10)"),
        (1, 2, "Calm's 13th submission (1 track, but 13 > 12)"),
    ]
    for number, (track, rev, note) in enumerate(steps):
        update = submission_xupdate(track, rev, f"Extra {number}",
                                    f"Someone {number}")
        decision = guard.try_execute(update)
        verdict = "accepted" if decision.legal \
            else f"REJECTED ({', '.join(decision.violated)})"
        print(f"  {note:48} → {verdict}")

    total = sum(
        len(rev.element_children("sub"))
        for rev in rev_doc.iter_elements("rev")
        if rev.first_child("name").text() == "Prof. Busy")
    print(f"\nProf. Busy ends at {total} submissions — exactly the",
          "workload cap.")


if __name__ == "__main__":
    main()
