"""Referential integrity with negated constraints (library extension).

The paper's related work singles out key/foreign-key constraints as the
class earlier XML validators handled; the general framework covers them
once denials may contain *negated subqueries* (``not(...)``), which
this library implements following [16]'s treatment of negation.

The scenario: a music catalog where

* every track on an album must credit an artist that exists in the
  artist registry (a foreign key, via ``not``);
* artist names are unique (a key);
* no album has more than 30 tracks (an aggregate).

Watch how ``Simp`` turns the foreign key into a constant-time lookup:
inserting a track only needs "does artist X exist?", and inserting an
*artist* needs no referential check at all (it can only fix things).

Run with::

    python examples/referential_integrity.py
"""

from repro import ConstraintSchema, IntegrityGuard, parse_document

CATALOG_DTD = """
<!ELEMENT catalog (artist | album)*>
<!ELEMENT artist (name, country?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT album (title, track+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT track (title, credit)>
<!ELEMENT credit (#PCDATA)>
"""

CONSTRAINTS = {
    # foreign key: every credit names a registered artist
    "credit_exists": """
        <- //track/credit/text() -> A
           /\\ not(//artist[/name/text() -> A])
    """,
    # key: artist names are unique
    "artist_unique": """
        <- //artist[/name/text() -> N]/position() -> P1
           /\\ //artist[/name/text() -> N]/position() -> P2
           /\\ P1 < P2
    """,
    # capacity: at most 30 tracks per album title
    "track_cap": """
        <- Cnt_D{[T]; //album[/title/text() -> T]/track} > 30
    """,
}

CATALOG_XML = """<catalog>
  <artist><name>Holly Golightly</name></artist>
  <artist><name>Miles Davis</name><country>US</country></artist>
  <album><title>Kind of Blue</title>
    <track><title>So What</title><credit>Miles Davis</credit></track>
  </album>
</catalog>"""


def add_track(album_index: int, title: str, credit: str) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/catalog/album[{album_index}]">
        <track><title>{title}</title><credit>{credit}</credit></track>
      </xupdate:append>
    </xupdate:modifications>"""


def add_artist(name: str) -> str:
    return f"""<xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:append select="/catalog">
        <artist><name>{name}</name></artist>
      </xupdate:append>
    </xupdate:modifications>"""


def main() -> None:
    schema = ConstraintSchema(
        dtds=[CATALOG_DTD],
        constraints=list(CONSTRAINTS.values()),
        names=list(CONSTRAINTS),
    )
    schema.register_pattern(add_track(1, "x", "y"))
    schema.register_pattern(add_artist("x"))
    print(schema.describe())

    document = parse_document(CATALOG_XML)
    guard = IntegrityGuard(schema, [document])

    audit: list[str] = []
    guard.subscribe(lambda update, decision: audit.append(
        "accepted" if decision.legal
        else f"rejected({','.join(decision.violated)})"))

    print()
    steps = [
        ("track credited to Miles Davis",
         add_track(1, "Freddie Freeloader", "Miles Davis")),
        ("track credited to an unknown artist",
         add_track(1, "Mystery Jam", "John Doe")),
        ("register John Doe first", add_artist("John Doe")),
        ("now the same track again",
         add_track(1, "Mystery Jam", "John Doe")),
        ("duplicate artist registration", add_artist("Miles Davis")),
    ]
    for label, update in steps:
        decision = guard.try_execute(update)
        verdict = "accepted" if decision.legal \
            else f"REJECTED ({', '.join(decision.violated)})"
        print(f"  {label:40} → {verdict}")

    print()
    print("Audit trail (from the subscribe hook):", ", ".join(audit))
    credits = sorted({c.text() for c in document.iter_elements("credit")})
    print(f"Track credits in the catalog: {credits}")


if __name__ == "__main__":
    main()
