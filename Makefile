PYTHON ?= python3
BENCH_SIZES ?= 32,64,128

.PHONY: install test bench bench-smoke bench-planner \
	bench-planner-smoke bench-columnar bench-columnar-smoke \
	bench-service bench-service-smoke \
	examples lint lint-concurrency stress faultcheck \
	faultcheck-restart serve-check clean

# fault-injection matrix: seeds x named schedules, each run asserting
# the crash-consistency invariant battery (see docs/testing.md)
FAULTCHECK_SEEDS ?= --seed 1 --seed 2 --seed 3
FAULTCHECK_OPS ?= 40

install:
	$(PYTHON) -m pip install -e .[test]

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_BENCH_SIZES_KIB=$(BENCH_SIZES) \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-sort=mean

# one-round smoke of the prepared-plan ablation on the smallest
# corpus; emits BENCH_prepared.json for CI artifacts/trend lines
bench-smoke:
	REPRO_BENCH_SIZES_KIB=32 \
		$(PYTHON) -m pytest benchmarks/test_prepared_queries.py \
		--benchmark-only --benchmark-min-rounds=1 \
		--benchmark-json=BENCH_prepared.json

# planner ablation (planned vs unplanned full checks, batched vs
# sequential update checking) across all sizes; emits
# BENCH_planner.json and gates on the acceptance floors
bench-planner:
	REPRO_BENCH_SIZES_KIB=$(BENCH_SIZES) \
		$(PYTHON) -m pytest benchmarks/test_planner_ablation.py \
		--benchmark-only --benchmark-min-rounds=3 \
		--benchmark-json=BENCH_planner.json
	$(PYTHON) scripts/check_planner_gate.py BENCH_planner.json

# one-round CI smoke at the smallest size, gated against the committed
# BENCH_planner.json baseline ratios (>20% regression fails)
bench-planner-smoke:
	REPRO_BENCH_SIZES_KIB=32 \
		$(PYTHON) -m pytest benchmarks/test_planner_ablation.py \
		--benchmark-only --benchmark-min-rounds=1 \
		--benchmark-json=BENCH_planner_smoke.json
	$(PYTHON) scripts/check_planner_gate.py BENCH_planner_smoke.json \
		--baseline BENCH_planner.json

# columnar backend ablation (vectorized plan steps vs the same plan
# walking the DOM, batched updates with/without column stores) across
# all sizes; emits BENCH_columnar.json and gates on the >=2x
# acceptance floors at the largest size
bench-columnar:
	REPRO_BENCH_SIZES_KIB=$(BENCH_SIZES) \
		$(PYTHON) -m pytest benchmarks/test_columnar_ablation.py \
		--benchmark-only --benchmark-min-rounds=3 \
		--benchmark-json=BENCH_columnar.json
	$(PYTHON) scripts/check_columnar_gate.py BENCH_columnar.json

# one-round CI smoke at the smallest size, gated against the committed
# BENCH_columnar.json baseline ratios (>20% regression fails)
bench-columnar-smoke:
	REPRO_BENCH_SIZES_KIB=32 \
		$(PYTHON) -m pytest benchmarks/test_columnar_ablation.py \
		--benchmark-only --benchmark-min-rounds=1 \
		--benchmark-json=BENCH_columnar_smoke.json
	$(PYTHON) scripts/check_columnar_gate.py BENCH_columnar_smoke.json \
		--baseline BENCH_columnar.json

# service load harness: closed-loop readers + paced writer against
# one CheckingService, snapshot vs locked read modes; emits
# BENCH_service.json and gates on read-throughput scaling (16 vs 1
# readers >= 3x) and tail insulation (snapshot p99 <= 0.5x locked)
bench-service:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/test_service_load.py \
		--out BENCH_service.json
	$(PYTHON) scripts/check_service_gate.py BENCH_service.json

# short-cell CI smoke with relaxed absolute floors, gated against the
# committed BENCH_service.json baseline ratios (>35% drift fails)
bench-service-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/test_service_load.py --smoke \
		--out BENCH_service_smoke.json
	$(PYTHON) scripts/check_service_gate.py BENCH_service_smoke.json \
		--min-scaling 2.5 --max-p99-ratio 0.7 \
		--baseline BENCH_service.json --tolerance 0.35

# static tooling (pip install -e .[lint]); constraint linting of the
# examples corpus runs with no extra dependencies
lint:
	$(PYTHON) -m ruff check src/
	$(PYTHON) -m mypy src/repro
	$(PYTHON) -m repro lint \
		--dtd examples/corpus/pub.dtd --dtd examples/corpus/rev.dtd \
		--constraints-file examples/corpus/constraints.txt \
		--pattern examples/corpus/submission.xml

# XIC5xx lock-discipline pass: the repo must self-lint clean, and the
# fixture corpus pins every code's firing and clean behavior (the
# corpus check proper lives in tests/test_concurrency_lint.py)
lint-concurrency:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m repro lint --concurrency src/repro
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/test_concurrency_lint.py -q

# concurrency stress harness: N writer threads x M mixed legal/illegal
# updates against one shared DocumentStore, checked against a
# sequential oracle replay.  faulthandler dumps all thread stacks on a
# wedge; pytest-timeout (when installed) enforces a hard cap on top.
STRESS_TIMEOUT := $(shell $(PYTHON) -c "import importlib.util as u; \
	print('--timeout=600' if u.find_spec('pytest_timeout') else '')")

stress:
	REPRO_STRESS_THREADS=8 REPRO_STRESS_OPS=200 \
		PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -X faulthandler -m pytest tests/test_concurrency.py \
		-q $(STRESS_TIMEOUT)

faultcheck:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m repro.cli faultcheck $(FAULTCHECK_SEEDS) \
		--ops $(FAULTCHECK_OPS) --repro-file FAULTCHECK_REPRO.txt
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m repro.cli faultcheck $(FAULTCHECK_SEEDS) \
		--schedule mvcc --mix read-heavy --ops $(FAULTCHECK_OPS) \
		--repro-file FAULTCHECK_REPRO.txt

# kill-at-failpoint restart matrix: the durable service dies at each
# instrumented seam, restarts from snapshot + write-ahead log, and the
# recovered state is checked against the sequential oracle
faultcheck-restart:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m repro.cli faultcheck --crash-restart \
		$(FAULTCHECK_SEEDS) --ops $(FAULTCHECK_OPS) \
		--repro-file FAULTCHECK_REPRO.txt

# end-to-end suite for the networked sharded service: hash-ring
# properties plus the conformance/chaos battery (spawned worker
# processes behind the asyncio HTTP edge).  pytest-timeout (when
# installed) puts a hard cap on every test so a wedged worker can
# never hang the job.
SERVE_TIMEOUT := $(shell $(PYTHON) -c "import importlib.util as u; \
	print('--timeout=300' if u.find_spec('pytest_timeout') else '')")

serve-check:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/test_hash_ring.py \
		tests/test_service_net.py -q $(SERVE_TIMEOUT)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/publication_registry.py
	$(PYTHON) examples/workload_policies.py
	$(PYTHON) examples/referential_integrity.py
	$(PYTHON) examples/conference_reviews.py 64

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
