"""DTD parsing, content models and document validation.

The paper's schema-design-time pipeline starts from a DTD (section 3.2
gives the DTDs of the two running-example documents).  This module
parses ``<!ELEMENT ...>`` and ``<!ATTLIST ...>`` declarations into
content-model ASTs, validates documents against them (content models are
compiled to epsilon-NFAs), and answers the structural questions the
relational mapping of section 4.1 asks:

* which child tags can occur under a tag, and with what cardinality
  (at-most-once children with text-only content are inlined as columns);
* which element types are text-only (``#PCDATA``);
* which element type is the document root (an element type that never
  occurs inside another content model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DTDError, ValidationError
from repro.xtree.node import Document, Element, Text

UNBOUNDED: int | None = None
"""Sentinel for an unbounded maximum cardinality."""


# ---------------------------------------------------------------------------
# Content-model AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContentModel:
    """Base class of content-model particles."""

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        """Map each child tag to its (min, max) occurrence bounds."""
        raise NotImplementedError

    def names(self) -> set[str]:
        """All child tags mentioned anywhere in the model."""
        return set(self.cardinalities())


@dataclass(frozen=True)
class EmptyContent(ContentModel):
    """``EMPTY`` — the element has no content."""

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        return {}

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class AnyContent(ContentModel):
    """``ANY`` — no constraint on content."""

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        return {}

    def __str__(self) -> str:
        return "ANY"


@dataclass(frozen=True)
class MixedContent(ContentModel):
    """``(#PCDATA)`` or ``(#PCDATA | a | b)*`` mixed content."""

    names_allowed: tuple[str, ...] = ()

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        return {name: (0, UNBOUNDED) for name in self.names_allowed}

    def __str__(self) -> str:
        if not self.names_allowed:
            return "(#PCDATA)"
        inner = " | ".join(("#PCDATA",) + self.names_allowed)
        return f"({inner})*"


_OCCURS_BOUNDS = {
    "": (1, 1),
    "?": (0, 1),
    "*": (0, UNBOUNDED),
    "+": (1, UNBOUNDED),
}


@dataclass(frozen=True)
class NameParticle(ContentModel):
    """A child-element reference with an occurrence indicator."""

    name: str
    occurs: str = ""  # "", "?", "*", "+"

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        return {self.name: _OCCURS_BOUNDS[self.occurs]}

    def __str__(self) -> str:
        return self.name + self.occurs


def _scale(bounds: tuple[int, int | None],
           occurs: str) -> tuple[int, int | None]:
    low, high = bounds
    occurs_low, occurs_high = _OCCURS_BOUNDS[occurs]
    new_low = low * occurs_low
    new_high: int | None
    if high == 0 or occurs_high == 0:
        new_high = 0
    elif high is UNBOUNDED or occurs_high is UNBOUNDED:
        new_high = UNBOUNDED
    else:
        new_high = high * occurs_high
    return new_low, new_high


@dataclass(frozen=True)
class SequenceParticle(ContentModel):
    """``(a, b, c)`` with an occurrence indicator."""

    items: tuple[ContentModel, ...]
    occurs: str = ""

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        merged: dict[str, tuple[int, int | None]] = {}
        for item in self.items:
            for name, (low, high) in item.cardinalities().items():
                old_low, old_high = merged.get(name, (0, 0))
                if old_high is UNBOUNDED or high is UNBOUNDED:
                    new_high: int | None = UNBOUNDED
                else:
                    new_high = old_high + high
                merged[name] = (old_low + low, new_high)
        return {name: _scale(bounds, self.occurs)
                for name, bounds in merged.items()}

    def __str__(self) -> str:
        inner = ", ".join(str(item) for item in self.items)
        return f"({inner}){self.occurs}"


@dataclass(frozen=True)
class ChoiceParticle(ContentModel):
    """``(a | b | c)`` with an occurrence indicator."""

    items: tuple[ContentModel, ...]
    occurs: str = ""

    def cardinalities(self) -> dict[str, tuple[int, int | None]]:
        merged: dict[str, tuple[int, int | None]] = {}
        all_names: set[str] = set()
        for item in self.items:
            all_names |= item.names()
        for name in all_names:
            lows: list[int] = []
            highs: list[int | None] = []
            for item in self.items:
                low, high = item.cardinalities().get(name, (0, 0))
                lows.append(low)
                highs.append(high)
            high: int | None
            if any(value is UNBOUNDED for value in highs):
                high = UNBOUNDED
            else:
                high = max(value for value in highs)  # type: ignore[type-var]
            merged[name] = (min(lows), high)
        return {name: _scale(bounds, self.occurs)
                for name, bounds in merged.items()}

    def __str__(self) -> str:
        inner = " | ".join(str(item) for item in self.items)
        return f"({inner}){self.occurs}"


# ---------------------------------------------------------------------------
# Attribute declarations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttributeDef:
    """One attribute declaration from an ``<!ATTLIST ...>``."""

    name: str
    att_type: str  # "CDATA", "ID", "IDREF", "NMTOKEN", ... or "enum"
    enum_values: tuple[str, ...] = ()
    default_kind: str = "#IMPLIED"  # "#REQUIRED", "#IMPLIED", "#FIXED", "value"
    default_value: str | None = None

    @property
    def required(self) -> bool:
        return self.default_kind == "#REQUIRED"


# ---------------------------------------------------------------------------
# DTD container
# ---------------------------------------------------------------------------

@dataclass
class DTD:
    """A parsed DTD: element content models plus attribute lists."""

    elements: dict[str, ContentModel] = field(default_factory=dict)
    attributes: dict[str, list[AttributeDef]] = field(default_factory=dict)

    def content_model(self, tag: str) -> ContentModel:
        try:
            return self.elements[tag]
        except KeyError:
            raise DTDError(f"no <!ELEMENT> declaration for {tag!r}") from None

    def declares(self, tag: str) -> bool:
        """True when the DTD has an ``<!ELEMENT>`` declaration for ``tag``."""
        return tag in self.elements

    def attribute_defs(self, tag: str) -> list[AttributeDef]:
        return self.attributes.get(tag, [])

    def attribute_def(self, tag: str, name: str) -> AttributeDef | None:
        """The declaration of attribute ``name`` on ``tag``, if any."""
        for definition in self.attribute_defs(tag):
            if definition.name == name:
                return definition
        return None

    def allows_text(self, tag: str) -> bool:
        """True when ``tag`` may contain character data (mixed or ANY)."""
        model = self.content_model(tag)
        return isinstance(model, (MixedContent, AnyContent))

    def content_matches(self, tag: str, child_tags: list[str]) -> bool:
        """Whether a child-tag sequence satisfies ``tag``'s content model.

        Used by the static update-pattern analysis to decide whether an
        inserted fragment can ever be part of a DTD-valid document.
        """
        model = self.content_model(tag)
        if isinstance(model, AnyContent):
            return True
        if isinstance(model, EmptyContent):
            return not child_tags
        if isinstance(model, MixedContent):
            return all(child in model.names_allowed for child in child_tags)
        return _compile_nfa(model).matches(child_tags)

    def is_pcdata_only(self, tag: str) -> bool:
        """True if ``tag`` holds character data only (``(#PCDATA)``)."""
        model = self.content_model(tag)
        return isinstance(model, MixedContent) and not model.names_allowed

    def is_empty(self, tag: str) -> bool:
        return isinstance(self.content_model(tag), EmptyContent)

    def child_cardinalities(self, tag: str) -> dict[str, tuple[int, int | None]]:
        """Occurrence bounds of each child tag under ``tag``."""
        return self.content_model(tag).cardinalities()

    def root_candidates(self) -> list[str]:
        """Element types that never occur in another content model.

        For a well-formed document DTD there is exactly one; the list is
        returned in declaration order.
        """
        referenced: set[str] = set()
        for model in self.elements.values():
            referenced |= model.names()
        return [tag for tag in self.elements if tag not in referenced]

    def root(self) -> str:
        candidates = self.root_candidates()
        if len(candidates) != 1:
            raise DTDError(
                "cannot determine a unique root element; candidates: "
                + ", ".join(candidates))
        return candidates[0]

    def parents_of(self, tag: str) -> list[str]:
        """Element types whose content model can contain ``tag``."""
        return [
            parent for parent, model in self.elements.items()
            if tag in model.names()
        ]


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

class _DTDParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> DTDError:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return DTDError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_whitespace_and_comments(self) -> None:
        while not self.at_end():
            if self.peek() in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            else:
                return

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        start = self.pos
        while not self.at_end() and (
                self.text[self.pos].isalnum()
                or self.text[self.pos] in "_:.-#"):
            self.pos += 1
        if start == self.pos:
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def read_occurs(self) -> str:
        if self.peek() in "?*+":
            char = self.peek()
            self.pos += 1
            return char
        return ""

    # -- content models ------------------------------------------------------

    def parse_content_spec(self) -> ContentModel:
        self.skip_whitespace_and_comments()
        if self.text.startswith("EMPTY", self.pos):
            self.pos += len("EMPTY")
            return EmptyContent()
        if self.text.startswith("ANY", self.pos):
            self.pos += len("ANY")
            return AnyContent()
        if self.peek() != "(":
            raise self.error("expected '(' in content model")
        return self.parse_group()

    def parse_group(self) -> ContentModel:
        self.expect("(")
        self.skip_whitespace_and_comments()
        if self.text.startswith("#PCDATA", self.pos):
            self.pos += len("#PCDATA")
            names: list[str] = []
            while True:
                self.skip_whitespace_and_comments()
                if self.peek() == "|":
                    self.pos += 1
                    self.skip_whitespace_and_comments()
                    names.append(self.read_name())
                elif self.peek() == ")":
                    self.pos += 1
                    break
                else:
                    raise self.error("malformed mixed content model")
            if names:
                self.expect("*")
            elif self.peek() == "*":
                self.pos += 1
            return MixedContent(tuple(names))
        items = [self.parse_particle()]
        separator = ""
        while True:
            self.skip_whitespace_and_comments()
            char = self.peek()
            if char == ")":
                self.pos += 1
                break
            if char not in (",", "|"):
                raise self.error("expected ',', '|' or ')' in content model")
            if separator and char != separator:
                raise self.error("cannot mix ',' and '|' in one group")
            separator = char
            self.pos += 1
            items.append(self.parse_particle())
        occurs = self.read_occurs()
        if len(items) == 1 and not occurs:
            return items[0]
        if separator == "|":
            return ChoiceParticle(tuple(items), occurs)
        return SequenceParticle(tuple(items), occurs)

    def parse_particle(self) -> ContentModel:
        self.skip_whitespace_and_comments()
        if self.peek() == "(":
            return self.parse_group()
        name = self.read_name()
        return NameParticle(name, self.read_occurs())

    # -- declarations ---------------------------------------------------------

    def parse(self) -> DTD:
        dtd = DTD()
        while True:
            self.skip_whitespace_and_comments()
            if self.at_end():
                return dtd
            if self.text.startswith("<!ELEMENT", self.pos):
                self.pos += len("<!ELEMENT")
                self.skip_whitespace_and_comments()
                name = self.read_name()
                model = self.parse_content_spec()
                self.skip_whitespace_and_comments()
                self.expect(">")
                if name in dtd.elements:
                    raise self.error(f"duplicate <!ELEMENT> for {name!r}")
                dtd.elements[name] = model
            elif self.text.startswith("<!ATTLIST", self.pos):
                self.pos += len("<!ATTLIST")
                self.skip_whitespace_and_comments()
                element_name = self.read_name()
                defs = dtd.attributes.setdefault(element_name, [])
                while True:
                    self.skip_whitespace_and_comments()
                    if self.peek() == ">":
                        self.pos += 1
                        break
                    defs.append(self.parse_attribute_def())
            else:
                raise self.error("expected <!ELEMENT> or <!ATTLIST>")

    def parse_attribute_def(self) -> AttributeDef:
        name = self.read_name()
        self.skip_whitespace_and_comments()
        enum_values: tuple[str, ...] = ()
        if self.peek() == "(":
            self.pos += 1
            values: list[str] = []
            while True:
                self.skip_whitespace_and_comments()
                values.append(self.read_name())
                self.skip_whitespace_and_comments()
                if self.peek() == "|":
                    self.pos += 1
                elif self.peek() == ")":
                    self.pos += 1
                    break
                else:
                    raise self.error("malformed enumerated attribute type")
            att_type = "enum"
            enum_values = tuple(values)
        else:
            att_type = self.read_name()
        self.skip_whitespace_and_comments()
        default_kind: str
        default_value: str | None = None
        if self.peek() == "#":
            default_kind = self.read_name()
            if default_kind == "#FIXED":
                self.skip_whitespace_and_comments()
                default_value = self.read_quoted()
        elif self.peek() in "'\"":
            default_kind = "value"
            default_value = self.read_quoted()
        else:
            raise self.error("expected attribute default")
        return AttributeDef(name, att_type, enum_values, default_kind,
                            default_value)

    def read_quoted(self) -> str:
        quote = self.peek()
        if quote not in "'\"":
            raise self.error("expected quoted value")
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end == -1:
            raise self.error("unterminated quoted value")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return value


def parse_dtd(text: str) -> DTD:
    """Parse DTD text (a sequence of declarations) into a :class:`DTD`."""
    return _DTDParser(text).parse()


# ---------------------------------------------------------------------------
# Validation: content models compiled to epsilon-NFAs
# ---------------------------------------------------------------------------

class _NFA:
    """Thompson-style NFA over child-tag alphabets."""

    def __init__(self) -> None:
        self.transitions: list[dict[str, set[int]]] = []
        self.epsilon: list[set[int]] = []
        self.start = self.new_state()
        self.accept: int = -1

    def new_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append(set())
        return len(self.transitions) - 1

    def add_edge(self, source: int, symbol: str, target: int) -> None:
        self.transitions[source].setdefault(symbol, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].add(target)

    def closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        result = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in result:
                    result.add(target)
                    stack.append(target)
        return result

    def matches(self, symbols: list[str]) -> bool:
        current = self.closure({self.start})
        for symbol in symbols:
            following: set[int] = set()
            for state in current:
                following |= self.transitions[state].get(symbol, set())
            if not following:
                return False
            current = self.closure(following)
        return self.accept in current


def _build_fragment(nfa: _NFA, model: ContentModel) -> tuple[int, int]:
    """Build an NFA fragment for ``model``; return (entry, exit) states."""
    entry = nfa.new_state()
    exit_state = nfa.new_state()
    if isinstance(model, NameParticle):
        inner_in = nfa.new_state()
        inner_out = nfa.new_state()
        nfa.add_edge(inner_in, model.name, inner_out)
        _wire_occurs(nfa, entry, exit_state, inner_in, inner_out, model.occurs)
    elif isinstance(model, SequenceParticle):
        inner_in = nfa.new_state()
        current = inner_in
        for item in model.items:
            item_in, item_out = _build_fragment(nfa, item)
            nfa.add_epsilon(current, item_in)
            current = item_out
        _wire_occurs(nfa, entry, exit_state, inner_in, current, model.occurs)
    elif isinstance(model, ChoiceParticle):
        inner_in = nfa.new_state()
        inner_out = nfa.new_state()
        for item in model.items:
            item_in, item_out = _build_fragment(nfa, item)
            nfa.add_epsilon(inner_in, item_in)
            nfa.add_epsilon(item_out, inner_out)
        _wire_occurs(nfa, entry, exit_state, inner_in, inner_out, model.occurs)
    else:
        raise DTDError(f"cannot compile content model {model!r}")
    return entry, exit_state


def _wire_occurs(nfa: _NFA, entry: int, exit_state: int, inner_in: int,
                 inner_out: int, occurs: str) -> None:
    nfa.add_epsilon(entry, inner_in)
    nfa.add_epsilon(inner_out, exit_state)
    if occurs in ("?", "*"):
        nfa.add_epsilon(entry, exit_state)
    if occurs in ("+", "*"):
        nfa.add_epsilon(inner_out, inner_in)


def _compile_nfa(model: ContentModel) -> _NFA:
    nfa = _NFA()
    entry, exit_state = _build_fragment(nfa, model)
    nfa.add_epsilon(nfa.start, entry)
    nfa.accept = exit_state
    return nfa


class _Validator:
    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self._nfas: dict[str, _NFA] = {}

    def nfa_for(self, tag: str) -> _NFA | None:
        model = self.dtd.content_model(tag)
        if isinstance(model, (EmptyContent, AnyContent, MixedContent)):
            return None
        if tag not in self._nfas:
            self._nfas[tag] = _compile_nfa(model)
        return self._nfas[tag]

    def validate_element(self, element: Element) -> None:
        tag = element.tag
        model = self.dtd.content_model(tag)
        child_tags = [child.tag for child in element.element_children()]
        has_text = any(
            isinstance(child, Text) and child.value.strip()
            for child in element.children)
        if isinstance(model, EmptyContent):
            if element.children:
                raise ValidationError(
                    f"element <{tag}> at {element.location_path()} is "
                    "declared EMPTY but has content")
        elif isinstance(model, MixedContent):
            illegal = [
                child_tag for child_tag in child_tags
                if child_tag not in model.names_allowed]
            if illegal:
                raise ValidationError(
                    f"element <{tag}> at {element.location_path()} contains "
                    f"undeclared children: {', '.join(illegal)}")
        elif isinstance(model, AnyContent):
            pass
        else:
            if has_text:
                raise ValidationError(
                    f"element <{tag}> at {element.location_path()} has "
                    "element content but contains character data")
            nfa = self.nfa_for(tag)
            assert nfa is not None
            if not nfa.matches(child_tags):
                raise ValidationError(
                    f"children of <{tag}> at {element.location_path()} "
                    f"({', '.join(child_tags) or 'none'}) do not match "
                    f"content model {model}")
        self.validate_attributes(element)

    def validate_attributes(self, element: Element) -> None:
        defs = {att.name: att for att in self.dtd.attribute_defs(element.tag)}
        for name in element.attributes:
            if name not in defs:
                raise ValidationError(
                    f"undeclared attribute {name!r} on <{element.tag}> at "
                    f"{element.location_path()}")
        for att in defs.values():
            value = element.attributes.get(att.name)
            if value is None:
                if att.required:
                    raise ValidationError(
                        f"missing required attribute {att.name!r} on "
                        f"<{element.tag}> at {element.location_path()}")
                continue
            if att.att_type == "enum" and value not in att.enum_values:
                raise ValidationError(
                    f"attribute {att.name!r} on <{element.tag}> has value "
                    f"{value!r}, not in {att.enum_values}")
            if att.default_kind == "#FIXED" and value != att.default_value:
                raise ValidationError(
                    f"attribute {att.name!r} on <{element.tag}> must have "
                    f"fixed value {att.default_value!r}")


def validate(document: Document, dtd: DTD) -> None:
    """Validate ``document`` against ``dtd``.

    Raises :class:`repro.errors.ValidationError` on the first violation
    found (in document order); returns ``None`` when valid.
    """
    validator = _Validator(dtd)
    for element in document.iter_elements():
        validator.validate_element(element)


def iter_validation_errors(document: Document,
                           dtd: DTD) -> Iterator[ValidationError]:
    """Yield every validation error instead of stopping at the first."""
    validator = _Validator(dtd)
    for element in document.iter_elements():
        try:
            validator.validate_element(element)
        except ValidationError as error:
            yield error
