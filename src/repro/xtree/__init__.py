"""Ordered XML tree model with stable node identity.

This package is the document substrate used throughout the library in
place of a native XML database.  It provides:

* :mod:`repro.xtree.node` — the DOM: :class:`Document`, :class:`Element`
  and :class:`Text` nodes with unique node identifiers, parent pointers
  and ordered children (the three properties the paper's relational
  mapping of section 4.1 exposes as ``Id``, ``Pos`` and ``IdParent``);
* :mod:`repro.xtree.parser` — a self-contained XML parser (no dependency
  on the standard-library ``xml`` package);
* :mod:`repro.xtree.serializer` — serialization back to text;
* :mod:`repro.xtree.dtd` — DTD parsing and validation of documents
  against element content models.
"""

from repro.xtree.node import Document, Element, Node, Text
from repro.xtree.parser import parse_document, parse_fragment
from repro.xtree.serializer import serialize, serialize_fragment
from repro.xtree.dtd import DTD, ContentModel, parse_dtd, validate

__all__ = [
    "Document",
    "Element",
    "Node",
    "Text",
    "parse_document",
    "parse_fragment",
    "serialize",
    "serialize_fragment",
    "DTD",
    "ContentModel",
    "parse_dtd",
    "validate",
]
