"""Serialization of the DOM back to XML text."""

from __future__ import annotations

from repro.xtree.node import Document, Element, Node, Text


def _escape_text(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _escape_attribute(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def _write_node(node: Node, parts: list[str], indent: int | None,
                level: int) -> None:
    if isinstance(node, Text):
        parts.append(_escape_text(node.value))
        return
    assert isinstance(node, Element)
    pad = "" if indent is None else "\n" + " " * (indent * level)
    attributes = "".join(
        f' {name}="{_escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attributes}/>")
        return
    only_text = all(isinstance(child, Text) for child in node.children)
    parts.append(f"{pad}<{node.tag}{attributes}>")
    for child in node.children:
        _write_node(child, parts, None if only_text else indent, level + 1)
    if indent is not None and not only_text:
        parts.append("\n" + " " * (indent * level))
    parts.append(f"</{node.tag}>")


def serialize(document: Document, indent: int | None = None,
              declaration: bool = True) -> str:
    """Serialize a document to XML text.

    Args:
        document: the document to serialize.
        indent: number of spaces per nesting level for pretty-printing, or
            ``None`` for compact output.  Elements whose children are all
            text are always kept on one line so that ``text()`` values are
            not polluted with indentation whitespace.
        declaration: prepend an ``<?xml ...?>`` declaration.
    """
    parts: list[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent is None:
            parts.append("\n")
    _write_node(document.root, parts,
                indent, 0)
    text = "".join(parts)
    return text.lstrip("\n") if indent is not None else text


def serialize_fragment(node: Node, indent: int | None = None) -> str:
    """Serialize a single (possibly detached) node to XML text."""
    parts: list[str] = []
    _write_node(node, parts, indent, 0)
    return "".join(parts).lstrip("\n")
