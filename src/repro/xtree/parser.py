"""A self-contained, non-validating XML parser.

Supports the XML subset needed by the system: elements, attributes,
character data, CDATA sections, comments, processing instructions, a
``DOCTYPE`` declaration (whose internal subset is preserved so it can be
handed to :func:`repro.xtree.dtd.parse_dtd`), and the five predefined
entities plus numeric character references.  Namespaces are not resolved;
qualified names such as ``xupdate:insert-after`` are kept verbatim as tag
names.

Whitespace-only text between elements is dropped by default — the
running-example DTDs have purely element content, where such whitespace
is insignificant — and can be retained with ``keep_whitespace=True``.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xtree.node import Document, Element, Node, Text

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _Cursor:
    """Position tracking over the input text."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def location(self) -> tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line, column)


class _Parser:
    def __init__(self, text: str, keep_whitespace: bool) -> None:
        self.cursor = _Cursor(text)
        self.keep_whitespace = keep_whitespace
        self.doctype_internal_subset: str | None = None

    # -- lexical helpers ----------------------------------------------------

    def skip_whitespace(self) -> None:
        cursor = self.cursor
        while not cursor.at_end() and cursor.peek() in " \t\r\n":
            cursor.advance()

    def expect(self, literal: str) -> None:
        if not self.cursor.startswith(literal):
            raise self.cursor.error(f"expected {literal!r}")
        self.cursor.advance(len(literal))

    def read_name(self) -> str:
        cursor = self.cursor
        if cursor.at_end() or not _is_name_start(cursor.peek()):
            raise cursor.error("expected a name")
        start = cursor.pos
        cursor.advance()
        while not cursor.at_end() and _is_name_char(cursor.peek()):
            cursor.advance()
        return cursor.text[start:cursor.pos]

    def decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        parts: list[str] = []
        index = 0
        while index < len(raw):
            char = raw[index]
            if char != "&":
                parts.append(char)
                index += 1
                continue
            end = raw.find(";", index)
            if end == -1:
                raise self.cursor.error("unterminated entity reference")
            entity = raw[index + 1: end]
            if entity.startswith("#x") or entity.startswith("#X"):
                parts.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                parts.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                parts.append(_PREDEFINED_ENTITIES[entity])
            else:
                raise self.cursor.error(f"unknown entity &{entity};")
            index = end + 1
        return "".join(parts)

    # -- grammar ------------------------------------------------------------

    def skip_misc(self) -> None:
        """Skip prolog items: XML declaration, comments, PIs, DOCTYPE."""
        cursor = self.cursor
        while True:
            self.skip_whitespace()
            if cursor.startswith("<?"):
                end = cursor.text.find("?>", cursor.pos)
                if end == -1:
                    raise cursor.error("unterminated processing instruction")
                cursor.pos = end + 2
            elif cursor.startswith("<!--"):
                self.skip_comment()
            elif cursor.startswith("<!DOCTYPE"):
                self.skip_doctype()
            else:
                return

    def skip_comment(self) -> None:
        cursor = self.cursor
        end = cursor.text.find("-->", cursor.pos + 4)
        if end == -1:
            raise cursor.error("unterminated comment")
        cursor.pos = end + 3

    def skip_doctype(self) -> None:
        cursor = self.cursor
        cursor.advance(len("<!DOCTYPE"))
        depth = 0
        subset_start: int | None = None
        while not cursor.at_end():
            char = cursor.peek()
            if char == "[":
                if depth == 0:
                    subset_start = cursor.pos + 1
                depth += 1
            elif char == "]":
                depth -= 1
                if depth == 0 and subset_start is not None:
                    self.doctype_internal_subset = \
                        cursor.text[subset_start:cursor.pos]
            elif char == ">" and depth == 0:
                cursor.advance()
                return
            cursor.advance()
        raise cursor.error("unterminated DOCTYPE declaration")

    def parse_element(self) -> Element:
        cursor = self.cursor
        self.expect("<")
        tag = self.read_name()
        attributes: dict[str, str] = {}
        while True:
            self.skip_whitespace()
            if cursor.startswith("/>"):
                cursor.advance(2)
                return Element(tag, attributes)
            if cursor.startswith(">"):
                cursor.advance()
                break
            name = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = cursor.peek()
            if quote not in ("'", '"'):
                raise cursor.error("attribute value must be quoted")
            cursor.advance()
            end = cursor.text.find(quote, cursor.pos)
            if end == -1:
                raise cursor.error("unterminated attribute value")
            if name in attributes:
                raise cursor.error(f"duplicate attribute {name!r}")
            attributes[name] = self.decode_entities(cursor.text[cursor.pos:end])
            cursor.pos = end + 1
        element = Element(tag, attributes)
        self.parse_content(element)
        self.expect("</")
        closing = self.read_name()
        if closing != tag:
            raise cursor.error(
                f"mismatched end tag: expected </{tag}>, found </{closing}>")
        self.skip_whitespace()
        self.expect(">")
        return element

    def parse_content(self, parent: Element) -> None:
        cursor = self.cursor
        text_parts: list[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            value = self.decode_entities("".join(text_parts))
            text_parts.clear()
            if value.strip() or (self.keep_whitespace and value):
                parent.append(Text(value))

        while True:
            if cursor.at_end():
                raise cursor.error(f"unterminated element <{parent.tag}>")
            if cursor.startswith("</"):
                flush_text()
                return
            if cursor.startswith("<!--"):
                flush_text()
                self.skip_comment()
            elif cursor.startswith("<![CDATA["):
                end = cursor.text.find("]]>", cursor.pos)
                if end == -1:
                    raise cursor.error("unterminated CDATA section")
                parent.append(Text(cursor.text[cursor.pos + 9: end]))
                cursor.pos = end + 3
            elif cursor.startswith("<?"):
                flush_text()
                end = cursor.text.find("?>", cursor.pos)
                if end == -1:
                    raise cursor.error("unterminated processing instruction")
                cursor.pos = end + 2
            elif cursor.startswith("<"):
                flush_text()
                parent.append(self.parse_element())
            else:
                text_parts.append(cursor.peek())
                cursor.advance()

    def parse_content_top(self, parent: Element) -> None:
        """Parse content up to end of input (for fragments)."""
        cursor = self.cursor
        text_parts: list[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            value = self.decode_entities("".join(text_parts))
            text_parts.clear()
            if value.strip() or (self.keep_whitespace and value):
                parent.append(Text(value))

        while not cursor.at_end():
            if cursor.startswith("</"):
                raise cursor.error("unexpected end tag in fragment")
            if cursor.startswith("<!--"):
                flush_text()
                self.skip_comment()
            elif cursor.startswith("<![CDATA["):
                end = cursor.text.find("]]>", cursor.pos)
                if end == -1:
                    raise cursor.error("unterminated CDATA section")
                parent.append(Text(cursor.text[cursor.pos + 9: end]))
                cursor.pos = end + 3
            elif cursor.startswith("<?"):
                flush_text()
                end = cursor.text.find("?>", cursor.pos)
                if end == -1:
                    raise cursor.error("unterminated processing instruction")
                cursor.pos = end + 2
            elif cursor.startswith("<"):
                flush_text()
                parent.append(self.parse_element())
            else:
                text_parts.append(cursor.peek())
                cursor.advance()
        flush_text()


def parse_document(text: str, keep_whitespace: bool = False) -> Document:
    """Parse a complete XML document into a :class:`Document`.

    Raises :class:`repro.errors.XMLParseError` on malformed input,
    including trailing content after the root element.
    """
    parser = _Parser(text, keep_whitespace)
    parser.skip_misc()
    if parser.cursor.at_end() or not parser.cursor.startswith("<"):
        raise parser.cursor.error("expected root element")
    root = parser.parse_element()
    parser.skip_misc()
    parser.skip_whitespace()
    if not parser.cursor.at_end():
        raise parser.cursor.error("unexpected content after root element")
    document = Document(root)
    return document


def parse_fragment(text: str, keep_whitespace: bool = False) -> list[Node]:
    """Parse a sequence of top-level nodes (elements and text).

    Useful for building update fragments in tests and examples.  The
    returned nodes are detached (no document, no node ids).
    """
    parser = _Parser(text, keep_whitespace)
    container = Element("#fragment")
    parser.parse_content_top(container)
    nodes = list(container.children)
    for node in nodes:
        container.remove(node)
    return nodes
