"""DOM node classes: ordered trees with stable node identifiers.

The model follows the needs of the paper's relational mapping (section
4.1): every node has a unique identifier within its document, a parent
pointer, and an ordered list of children.  Element order is significant;
attributes are unordered.

Nodes may exist *detached* (``document is None``) — e.g. a fragment built
by an XUpdate statement before insertion.  Attaching a subtree to a
document assigns fresh node identifiers to every node of the subtree that
does not have one yet; identifiers are never reused within a document,
which is exactly the freshness hypothesis the simplification procedure
relies on (the Δ sets of section 5.1).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.analysis.concurrency import (
    guarded_by,
    make_rlock,
    requires_lock,
)
from repro.errors import FrozenDocumentError

#: process-wide document identity counter; ``id()`` can be reused by a
#: new document after the original dies, so caches that key on
#: document identity (plan cache, value-index cache) use ``uid``
#: instead — unique for the lifetime of the process
_DOCUMENT_UIDS = itertools.count(1)


class Node:
    """Common behaviour of element and text nodes."""

    __slots__ = ("node_id", "parent", "document")

    def __init__(self) -> None:
        self.node_id: int | None = None
        self.parent: Element | None = None
        self.document: Document | None = None

    # -- tree navigation ---------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield the parent, grandparent, ... up to the root element."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the topmost node of the tree this node belongs to."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def child_position(self) -> int:
        """1-based position among *all* element siblings.

        This is the ``Pos`` attribute of the relational mapping.  Text
        nodes do not contribute to positions (the running-example DTDs
        have no mixed content), so only element siblings are counted.
        Detached nodes and the root have position 1.
        """
        if not isinstance(self, Element):
            raise TypeError("positions are defined for elements only")
        if self.parent is None:
            return 1
        position = 0
        for sibling in self.parent.children:
            if isinstance(sibling, Element):
                position += 1
                if sibling is self:
                    return position
        raise ValueError("node is not among its parent's children")

    @property
    def sibling_position(self) -> int:
        """1-based position among same-tag element siblings.

        This is the index XPath uses in steps like ``rev[5]`` and the one
        used when rendering a node as an absolute location path.
        """
        if not isinstance(self, Element) or self.parent is None:
            return 1
        position = 0
        for sibling in self.parent.children:
            if isinstance(sibling, Element) and sibling.tag == self.tag:
                position += 1
                if sibling is self:
                    return position
        raise ValueError("node is not among its parent's children")

    def location_path(self) -> str:
        """Absolute location path, e.g. ``/review/track[2]/rev[5]``.

        Used to render node-valued parameters in translated XQuery checks
        (the ``/review/track[%t]/rev[%r]`` form of section 6).
        """
        if not isinstance(self, Element):
            raise TypeError("location paths are defined for elements only")
        steps: list[str] = []
        node: Element | None = self
        while node is not None:
            if node.parent is None:
                steps.append(f"/{node.tag}")
            else:
                index = node.sibling_position
                same_tag = [
                    child for child in node.parent.children
                    if isinstance(child, Element) and child.tag == node.tag
                ]
                if len(same_tag) > 1:
                    steps.append(f"/{node.tag}[{index}]")
                else:
                    steps.append(f"/{node.tag}")
            node = node.parent
        return "".join(reversed(steps))


class Text(Node):
    """A text node.  ``value`` is the unescaped character data."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Text({self.value!r})"


class Element(Node):
    """An element node with a tag, attributes and ordered children."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: dict[str, str] | None = None,
                 children: list[Node] | None = None) -> None:
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        for child in children or []:
            self.append(child)

    # -- construction / mutation -------------------------------------------

    def append(self, child: Node) -> Node:
        """Append ``child`` as the last child and return it."""
        return self.insert(len(self.children), child)

    def insert(self, index: int, child: Node) -> Node:
        """Insert ``child`` at ``index`` in the children list.

        The child must be detached (no parent).  If this element belongs
        to a document, the whole inserted subtree is registered with it
        and receives fresh node identifiers.
        """
        if child.parent is not None:
            raise ValueError("child already has a parent; detach it first")
        self.children.insert(index, child)
        child.parent = self
        if self.document is not None:
            self.document.adopt(child)
        return child

    def insert_after(self, anchor: Node, child: Node) -> Node:
        """Insert ``child`` immediately after existing child ``anchor``."""
        index = self._child_index(anchor)
        return self.insert(index + 1, child)

    def insert_before(self, anchor: Node, child: Node) -> Node:
        """Insert ``child`` immediately before existing child ``anchor``."""
        index = self._child_index(anchor)
        return self.insert(index, child)

    def remove(self, child: Node) -> Node:
        """Detach ``child`` (and its subtree) from this element.

        The subtree keeps its node identifiers so that re-inserting it
        (e.g. during a rollback) restores the original identities, but it
        is unregistered from the document's id index.
        """
        index = self._child_index(child)
        del self.children[index]
        child.parent = None
        if self.document is not None:
            self.document.orphan(child, parent=self)
        return child

    def _child_index(self, child: Node) -> int:
        for index, candidate in enumerate(self.children):
            if candidate is child:
                return index
        raise ValueError("node is not a child of this element")

    # -- navigation ----------------------------------------------------------

    def element_children(self, tag: str | None = None) -> list["Element"]:
        """Element children in document order, optionally filtered by tag."""
        return [
            child for child in self.children
            if isinstance(child, Element) and (tag is None or child.tag == tag)
        ]

    def first_child(self, tag: str) -> "Element | None":
        """First element child with the given tag, or ``None``."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def text(self) -> str:
        """Concatenated character data of the *direct* text children.

        This is the value selected by ``text()`` in path expressions.
        """
        return "".join(
            child.value for child in self.children if isinstance(child, Text))

    def string_value(self) -> str:
        """Concatenated character data of the whole subtree."""
        parts: list[str] = []
        for node in self.iter():
            if isinstance(node, Text):
                parts.append(node.value)
        return "".join(parts)

    def iter(self) -> Iterator[Node]:
        """Yield this node and every descendant in document order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()
            else:
                yield child

    def iter_elements(self, tag: str | None = None) -> Iterator["Element"]:
        """Yield descendant-or-self elements in document order."""
        for node in self.iter():
            if isinstance(node, Element) and (tag is None or node.tag == tag):
                yield node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, id={self.node_id})"


@guarded_by("self._lock", "_next_id", "_nodes_by_id", "_elements_by_tag",
            "_tag_revisions", "_tag_order_cache", "_tag_stats_cache",
            "_mutation_listeners")
class Document:
    """An XML document: a root element plus the node-identity machinery.

    The document owns the node-id counter.  Identifiers are positive
    integers, assigned in adoption order, and never reused — a removed
    subtree keeps its ids but new nodes always get ids strictly greater
    than any ever assigned.

    The document also maintains an *incremental element-by-tag index*:
    every adopt/orphan keeps a per-tag bucket of attached elements and a
    per-tag revision counter.  Query engines use the buckets to answer
    ``//tag`` steps without walking the tree, and the tag revisions to
    invalidate derived caches only when a relevant node type changed.
    """

    __slots__ = ("root", "_next_id", "_nodes_by_id", "revision",
                 "_elements_by_tag", "_tag_revisions", "_tag_order_cache",
                 "_tag_stats_cache", "_lock", "_mutation_listeners",
                 "column_store", "uid", "_frozen", "__weakref__")

    def __init__(self, root: Element) -> None:
        if root.parent is not None:
            raise ValueError("document root must be detached")
        #: never-reused process-wide identity (see ``_DOCUMENT_UIDS``)
        self.uid = next(_DOCUMENT_UIDS)
        #: set once by :meth:`freeze` before the document is shared
        #: with reader threads; plain reads are GIL-atomic
        self._frozen = False
        #: guards the id counter, the tag index and its revision
        #: counters.  Structural mutations (adopt/orphan) must be
        #: serialized externally (e.g. the DocumentStore writer lock);
        #: this lock only makes the *derived* index state — lazy
        #: document-order fills, revision reads — safe for concurrent
        #: readers.  Reentrant: adopt() allocates ids under the lock.
        self._lock = make_rlock("document")
        self.root = root
        self._next_id = 1
        self._nodes_by_id: dict[int, Node] = {}
        #: monotone change counter; bumped by every adopt/orphan so
        #: query engines can cache derived structures safely
        self.revision = 0
        #: tag → {node_id: element} of currently attached elements
        self._elements_by_tag: dict[str, dict[int, Element]] = {}
        #: tag → monotone counter, bumped when a node of (or under) the
        #: tag is attached or detached
        self._tag_revisions: dict[str, int] = {}
        #: tag → (tag revision, document-ordered element list)
        self._tag_order_cache: dict[str, tuple[int, list[Element]]] = {}
        #: tag → (tag revision, distinct direct-text value count); the
        #: planner's per-tag statistics, recomputed lazily per revision
        self._tag_stats_cache: dict[str, tuple[int, int]] = {}
        #: callables ``(kind, node, parent)`` invoked (under the lock,
        #: after index bookkeeping) for every adopt/orphan.  Listeners
        #: must never raise: they run inside structural mutation, where
        #: an escaping error would tear the mutation itself.  The
        #: column store's listener swallows its own failures and falls
        #: back to a cold rebuild instead.
        self._mutation_listeners: list = []
        #: the attached :class:`repro.relational.incremental.ColumnStore`
        #: (or ``None``); a plain slot so the query planner can test for
        #: columnar serviceability without importing the relational layer
        self.column_store = None
        root.document = None  # adopt() sets it
        self.adopt(root)

    def adopt(self, node: Node) -> None:
        """Register ``node`` and its subtree, assigning missing ids."""
        with self._lock:
            self._adopt_locked(node)

    @requires_lock("self._lock")
    def _adopt_locked(self, node: Node) -> None:
        if self._frozen:
            raise FrozenDocumentError(
                f"cannot adopt into frozen document "
                f"<{self.root.tag}> (snapshot v-uid {self.uid})")
        self.revision += 1
        stack = [node]
        while stack:
            current = stack.pop()
            current.document = self
            if current.node_id is None:
                current.node_id = self.allocate_id()
            else:
                # keep the counter ahead of pre-assigned identifiers
                # (rollback re-insertions, reconstructed documents)
                self._next_id = max(self._next_id, current.node_id + 1)
            self._nodes_by_id[current.node_id] = current
            if isinstance(current, Element):
                self._index_element(current)
                stack.extend(reversed(current.children))
            elif isinstance(current, Text) and current.parent is not None:
                # a text change is a change to its parent's node type
                self._bump_tag(current.parent.tag)
        for listener in self._mutation_listeners:
            listener("adopt", node, node.parent)

    def orphan(self, node: Node, parent: "Element | None" = None) -> None:
        """Unregister ``node`` and its subtree from the id index.

        ``parent`` is the element the node was detached from; callers
        that null ``node.parent`` before orphaning (``Element.remove``)
        pass it so tag-revision bookkeeping and mutation listeners can
        still see where the change happened.
        """
        with self._lock:
            self._orphan_locked(node, parent)

    @requires_lock("self._lock")
    def _orphan_locked(self, node: Node,
                       parent: "Element | None" = None) -> None:
        if self._frozen:
            raise FrozenDocumentError(
                f"cannot orphan from frozen document "
                f"<{self.root.tag}> (snapshot v-uid {self.uid})")
        self.revision += 1
        if parent is None:
            parent = node.parent
        if isinstance(node, Text) and parent is not None:
            self._bump_tag(parent.tag)
        stack = [node]
        while stack:
            current = stack.pop()
            current.document = None
            if current.node_id is not None:
                self._nodes_by_id.pop(current.node_id, None)
                if isinstance(current, Element):
                    bucket = self._elements_by_tag.get(current.tag)
                    if bucket is not None:
                        bucket.pop(current.node_id, None)
                    self._bump_tag(current.tag)
            if isinstance(current, Element):
                stack.extend(reversed(current.children))
        for listener in self._mutation_listeners:
            listener("orphan", node, parent)

    # -- element-by-tag index ------------------------------------------------

    @requires_lock("self._lock")
    def _index_element(self, element: Element) -> None:
        assert element.node_id is not None
        self._elements_by_tag.setdefault(
            element.tag, {})[element.node_id] = element
        self._bump_tag(element.tag)

    @requires_lock("self._lock")
    def _bump_tag(self, tag: str) -> None:
        self._tag_revisions[tag] = self._tag_revisions.get(tag, 0) + 1
        self._tag_order_cache.pop(tag, None)
        self._tag_stats_cache.pop(tag, None)

    def tag_revision(self, tag: str) -> int:
        """Change counter for one node type (0 if never present).

        Bumped whenever an element with this tag — or a text node
        directly under one — is attached or detached.  Caches derived
        from a set of tags stay valid while all their tag revisions do.
        """
        with self._lock:
            return self._tag_revisions.get(tag, 0)

    def elements_by_tag(self, tag: str) -> list[Element]:
        """All attached elements with ``tag``, in document order.

        Served from the incremental index; the document-order sort is
        computed lazily and cached per tag revision, so repeated
        ``//tag`` steps between updates cost a dictionary lookup.
        Mutating the returned list is not allowed.
        """
        with self._lock:
            revision = self._tag_revisions.get(tag, 0)
            cached = self._tag_order_cache.get(tag)
            if cached is not None and cached[0] == revision:
                return cached[1]
            bucket = self._elements_by_tag.get(tag)
            if not bucket:
                elements: list[Element] = []
            else:
                elements = sorted(bucket.values(),
                                  key=_document_order_key)
            self._tag_order_cache[tag] = (revision, elements)
            return elements

    # -- planner statistics --------------------------------------------------

    def tag_count(self, tag: str) -> int:
        """Number of currently attached elements with ``tag``.

        Served from the incremental tag index under the document lock,
        so a planner statistics refresh can never observe a bucket that
        a concurrent index maintenance step is mid-way through filling.
        """
        with self._lock:
            bucket = self._elements_by_tag.get(tag)
            return len(bucket) if bucket else 0

    def tag_distinct_count(self, tag: str) -> int:
        """Distinct direct-text values among elements with ``tag``.

        The planner's stand-in for a value-index histogram: the
        selectivity of an equality on ``tag``'s text is estimated as
        ``1 / tag_distinct_count(tag)``.  Recomputed lazily and cached
        per tag revision (like the document-order cache), all under the
        per-document lock.
        """
        with self._lock:
            revision = self._tag_revisions.get(tag, 0)
            cached = self._tag_stats_cache.get(tag)
            if cached is not None and cached[0] == revision:
                return cached[1]
            bucket = self._elements_by_tag.get(tag)
            if not bucket:
                distinct = 0
            else:
                distinct = len({
                    element.text() for element in bucket.values()})
            self._tag_stats_cache[tag] = (revision, distinct)
            return distinct

    def element_count(self) -> int:
        """Total number of currently attached elements."""
        with self._lock:
            return sum(len(bucket)
                       for bucket in self._elements_by_tag.values())

    def statistics_snapshot(
            self, tags: "list[str]") -> dict[str, tuple[int, int, int]]:
        """Atomic ``tag → (count, distinct, tag revision)`` snapshot.

        Taken under the document lock in one critical section, so the
        per-tag numbers are mutually consistent even while a writer
        thread is between adopt/orphan calls on other documents.
        """
        with self._lock:
            return {
                tag: (self.tag_count(tag), self.tag_distinct_count(tag),
                      self._tag_revisions.get(tag, 0))
                for tag in tags
            }

    def allocate_id(self) -> int:
        """Return a fresh node identifier (never used in this document)."""
        with self._lock:
            node_id = self._next_id
            self._next_id += 1
            return node_id

    def node_by_id(self, node_id: int) -> Node | None:
        """Look up a currently attached node by identifier.

        Deliberately lock-free: a single dict read is atomic under the
        GIL, and callers only probe ids they obtained from a consistent
        snapshot — at worst a concurrently detached node reads as
        ``None``, which is the correct answer for it.
        """
        return self._nodes_by_id.get(node_id)  # lock: ignore

    def iter_elements(self, tag: str | None = None) -> Iterator[Element]:
        """Yield all elements of the document in document order."""
        return self.root.iter_elements(tag)

    # -- snapshot support ----------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether this document is an immutable snapshot clone.

        Set once by :meth:`freeze` before the clone is shared with
        reader threads; a plain read is GIL-atomic.
        """
        return self._frozen

    def freeze(self) -> None:
        """Make the document immutable.

        After freezing, any structural mutation (adopt/orphan) raises
        :class:`~repro.errors.FrozenDocumentError`.  Derived-state
        caches (tag order, statistics) still fill lazily under the
        document lock; only the tree itself is fixed.  Freezing is
        one-way.
        """
        with self._lock:
            self._frozen = True

    def clone(self, *, freeze: bool = True) -> "Document":
        """Deep-copy the document, preserving node identifiers.

        Used by the service's snapshot publisher: the copy shares no
        nodes with the source, keeps every ``node_id`` (so constraint
        violations and explain output name the same nodes either way),
        and carries the source's id counter forward so a thawed clone
        would never reuse an identifier.

        The caller must hold a lock that excludes structural mutation
        of the source (the store's writer lock, or its read lock on
        the repair path) — the tree walk itself is deliberately
        lock-free.  The source's document lock is only taken briefly
        to read the id counter, and never while the clone's own lock
        is held: nesting two "document"-rank locks would violate the
        lock order.
        """
        with self._lock:
            next_id = self._next_id
        copy = Document(_clone_subtree(self.root))
        with copy._lock:
            copy._next_id = max(copy._next_id, next_id)
        if freeze:
            copy.freeze()
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nodes = len(self._nodes_by_id)  # lock: ignore
        return f"Document(root={self.root.tag!r}, nodes={nodes})"


def _clone_subtree(root: Element) -> Element:
    """Copy a subtree, preserving node ids; parents are re-linked but
    the copies belong to no document until adopted."""
    copy_root = Element(root.tag, dict(root.attributes))
    copy_root.node_id = root.node_id
    stack = [(root, copy_root)]
    while stack:
        source, target = stack.pop()
        for child in source.children:
            if isinstance(child, Text):
                child_copy: Node = Text(child.value)
            else:
                assert isinstance(child, Element)
                child_copy = Element(child.tag, dict(child.attributes))
                stack.append((child, child_copy))
            child_copy.node_id = child.node_id
            child_copy.parent = target
            target.children.append(child_copy)
    return copy_root


def _document_order_key(element: Element) -> tuple[int, ...]:
    """Preorder sort key: the chain of child indexes from the root."""
    indexes: list[int] = []
    node: Node = element
    while node.parent is not None:
        indexes.append(node.parent._child_index(node))
        node = node.parent
    indexes.reverse()
    return tuple(indexes)
