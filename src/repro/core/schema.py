"""Design-time compilation: constraints + update patterns → checks.

Everything in this module runs once, at schema design time (section 4:
"these mappings take place statically and thus do not affect runtime
performance").  The artifacts are:

* per constraint: its Datalog denials and the *full* XQuery checks used
  by the brute-force strategy;
* per (update pattern, constraint): the simplified denials
  (``Simp^U_Δ``) and their parameterized XQuery templates, or a marker
  that this pair needs the brute-force fallback (footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostic import Diagnostic
from repro.analysis.patterns import (
    always_violated_diagnostic,
    brute_force_diagnostic,
    pattern_diagnostics,
)
from repro.analysis.redundancy import redundancy_diagnostics
from repro.analysis.safety import constraint_safety_diagnostics
from repro.analysis.satisfiability import (
    DTDView,
    constraint_path_diagnostics,
    denial_satisfiability,
)
from repro.datalog.denial import Denial
from repro.errors import CompilationError, SchemaError, SimplificationError
from repro.relational.prune import prune_denials
from repro.relational.schema import RelationalSchema
from repro.simplify import simp
from repro.simplify.optimize import always_violated, optimize
from repro.xpathlog import (compile_constraint, compile_rule,
                            parse_constraint, parse_rule)
from repro.xpathlog.ast import Constraint
from repro.xquery.translate import TranslatedQuery, translate_denials
from repro.xtree.dtd import DTD, parse_dtd
from repro.xupdate.analyze import (
    AnalyzedTransaction,
    AnalyzedUpdate,
    UpdateSignature,
    analyze_operation,
    analyze_transaction,
)
from repro.xupdate.parser import Operation, parse_modifications


@dataclass
class CompiledConstraint:
    """One XPathLog constraint with its compiled artifacts."""

    name: str
    source: Constraint
    denials: list[Denial]
    full_queries: list[TranslatedQuery]
    #: True when every denial is a dead check: no DTD-valid document can
    #: violate it, so the run-time strategies skip it entirely
    dead: bool = False

    def __str__(self) -> str:
        return f"{self.name}: {self.source}"


@dataclass
class OptimizedCheck:
    """The simplified check of one constraint w.r.t. one pattern."""

    constraint: CompiledConstraint
    simplified: list[Denial]
    queries: list[TranslatedQuery]

    @property
    def trivial(self) -> bool:
        """True when the update can never violate the constraint."""
        return not self.simplified

    @property
    def always_violated(self) -> bool:
        """True when every instance of the pattern violates it."""
        return any(always_violated(denial) for denial in self.simplified)


@dataclass
class PatternChecks:
    """Everything compiled for one update pattern."""

    analyzed: AnalyzedUpdate
    optimized: list[OptimizedCheck]
    #: constraints whose simplification failed: brute-force at run time
    fallback: list[CompiledConstraint] = field(default_factory=list)


@dataclass
class TransactionChecks:
    """Compiled checks for a multi-operation (all-append) transaction.

    The transaction is one update pattern in the sense of definition 2
    — a set of parametric additions — so Simp specializes the
    constraints once for the whole set and checking is *deferred*:
    intermediate states between the operations are never verified.
    """

    analyzed: AnalyzedTransaction
    optimized: list[OptimizedCheck]
    fallback: list[CompiledConstraint] = field(default_factory=list)


class ConstraintSchema:
    """The complete design-time artifact of the system.

    Args:
        dtds: the document DTDs (text or parsed), e.g. the ``pub.xml``
            and ``rev.xml`` DTDs of section 3.2.
        constraints: XPathLog denials (text or parsed ASTs), optionally
            named via the ``names`` list.

    Update patterns are registered afterwards with
    :meth:`register_pattern`, passing a representative XUpdate
    statement; all statements with the same signature (operation kind,
    parent node type, fragment shape) share the compiled checks.
    """

    def __init__(self, dtds: "list[DTD | str]",
                 constraints: "list[Constraint | str]",
                 names: list[str] | None = None,
                 views: "list[str] | None" = None) -> None:
        parsed_dtds = [
            dtd if isinstance(dtd, DTD) else parse_dtd(dtd) for dtd in dtds]
        self.dtds = parsed_dtds
        self.relational = RelationalSchema.from_dtds(parsed_dtds)
        self.dtd_view = DTDView(parsed_dtds)
        #: findings of the compile-time analysis passes (``XICnnn``)
        self.diagnostics: list[Diagnostic] = []
        self.views: dict = {}
        for view_text in views or []:
            rule = parse_rule(view_text)
            self.views[rule.head_name] = compile_rule(
                rule, self.relational, self.views)
        self.constraints: list[CompiledConstraint] = []
        self.patterns: dict[UpdateSignature, PatternChecks] = {}
        self.transaction_patterns: dict[
            tuple[UpdateSignature, ...], TransactionChecks] = {}
        for index, item in enumerate(constraints):
            source = item if isinstance(item, Constraint) \
                else parse_constraint(item)
            name = names[index] if names and index < len(names) \
                else f"C{index + 1}"
            denials = compile_constraint(source, self.relational,
                                         self.views)
            self.diagnostics.extend(constraint_path_diagnostics(
                source, self.dtd_view, name))
            safety = constraint_safety_diagnostics(
                name, source.source, denials)
            if safety:
                # unsafe constraints would only fail later, at run time,
                # inside the Datalog evaluator; surface them here so
                # DatalogEvaluationError stays unreachable for compiled
                # schemas
                self.diagnostics.extend(safety)
                raise CompilationError(
                    f"constraint {name!r} is unsafe: {safety[0].message}",
                    code=safety[0].code)
            # translate only after the safety pass: the XQuery
            # translation rejects unsafe denials too, with a less
            # precise message and no diagnostic code
            queries = translate_denials(denials, self.relational)
            dead_diagnostics, dead = denial_satisfiability(
                name, source.source, denials, self.relational,
                self.dtd_view)
            self.diagnostics.extend(dead_diagnostics)
            self.constraints.append(
                CompiledConstraint(name, source, denials, queries,
                                   dead=bool(dead)
                                   and len(dead) == len(denials)))
        self.diagnostics.extend(redundancy_diagnostics([
            (compiled.name, compiled.source.source, compiled.denials)
            for compiled in self.constraints]))
        self._deletion_unsafe = self._compute_deletion_unsafe()

    # -- pattern registration ---------------------------------------------------

    def register_pattern(self,
                         example: "str | Operation") -> UpdateSignature:
        """Compile the optimized checks for an update pattern.

        ``example`` is a representative XUpdate statement (or parsed
        operation); its concrete values are irrelevant — only the
        signature matters.  Returns the signature under which the
        checks are stored.
        """
        operations = self._operations_of(example)
        if len(operations) > 1:
            return self._register_transaction(operations)
        operation = operations[0]
        analyzed = analyze_operation(operation, self.relational)
        if analyzed.signature in self.patterns:
            return analyzed.signature
        pattern_name = str(analyzed.signature)
        self.diagnostics.extend(pattern_diagnostics(
            pattern_name, operation, self.relational, self.dtd_view))
        checks: list[OptimizedCheck] = []
        fallback: list[CompiledConstraint] = []
        for constraint in self.constraints:
            try:
                simplified = simp(constraint.denials, analyzed.pattern,
                                  analyzed.hypotheses)
                simplified = prune_denials(simplified, self.relational)
                simplified = self._reject_unbindable(simplified, analyzed)
                queries = translate_denials(simplified, self.relational)
            except SimplificationError as error:
                fallback.append(constraint)
                self.diagnostics.append(brute_force_diagnostic(
                    pattern_name, constraint.name, str(error)))
                continue
            check = OptimizedCheck(constraint, simplified, queries)
            if check.always_violated:
                self.diagnostics.append(always_violated_diagnostic(
                    pattern_name, constraint.name))
            checks.append(check)
        self.patterns[analyzed.signature] = PatternChecks(
            analyzed, checks, fallback)
        return analyzed.signature

    def _reject_unbindable(self, denials: list[Denial],
                           analyzed: AnalyzedUpdate) -> list[Denial]:
        """Refuse checks that still mention unbindable fresh ids.

        Fresh node identifiers do not exist before the update, so a
        simplified denial that refers to one cannot be evaluated in the
        present state.  The Δ hypotheses normally eliminate all such
        denials; any survivor means the fragment is outside what we can
        soundly pre-check.
        """
        fresh = analyzed.pattern.fresh_parameters
        for denial in denials:
            remaining = denial.parameters() & fresh
            if remaining:
                raise SimplificationError(
                    f"simplified check {denial} still references fresh "
                    f"node identifiers {sorted(p.name for p in remaining)}")
        return denials

    def _register_transaction(self, operations: list[Operation]):
        analyzed = analyze_transaction(operations, self.relational)
        if analyzed.signatures in self.transaction_patterns:
            return analyzed.signatures
        pattern_name = analyzed.pattern.name or "transaction"
        for operation in operations:
            self.diagnostics.extend(pattern_diagnostics(
                pattern_name, operation, self.relational, self.dtd_view))
        checks: list[OptimizedCheck] = []
        fallback: list[CompiledConstraint] = []
        for constraint in self.constraints:
            try:
                simplified = simp(constraint.denials, analyzed.pattern,
                                  analyzed.hypotheses)
                simplified = prune_denials(simplified, self.relational)
                for denial in simplified:
                    remaining = denial.parameters() \
                        & analyzed.pattern.fresh_parameters
                    if remaining:
                        raise SimplificationError(
                            f"check {denial} references fresh ids")
                queries = translate_denials(simplified, self.relational)
            except SimplificationError as error:
                fallback.append(constraint)
                self.diagnostics.append(brute_force_diagnostic(
                    pattern_name, constraint.name, str(error)))
                continue
            check = OptimizedCheck(constraint, simplified, queries)
            if check.always_violated:
                self.diagnostics.append(always_violated_diagnostic(
                    pattern_name, constraint.name))
            checks.append(check)
        self.transaction_patterns[analyzed.signatures] = TransactionChecks(
            analyzed, checks, fallback)
        return analyzed.signatures

    def checks_for(self, signature: UpdateSignature) -> PatternChecks | None:
        return self.patterns.get(signature)

    def checks_for_transaction(
            self, signatures: tuple[UpdateSignature, ...]
    ) -> TransactionChecks | None:
        return self.transaction_patterns.get(signatures)

    @staticmethod
    def _operations_of(example: "str | Operation") -> list[Operation]:
        if isinstance(example, str):
            return parse_modifications(example)
        return [example]

    def cardinality_priors(self) -> dict[str, float]:
        """Expected per-tag element counts derived from the DTDs.

        Walks each DTD breadth-first from its root, multiplying the
        expected instance count down the containment chain: a child
        with bounds ``(low, high)`` contributes ``(low + high) / 2``
        instances per parent (``low + 3`` when unbounded).  The planner
        uses these as statistics priors for empty or cold documents,
        where the live tag index has nothing to say; they only ever
        influence plan order, never verdicts.
        """
        priors: dict[str, float] = {}
        for dtd in self.dtds:
            roots = dtd.root_candidates()
            expected: dict[str, float] = {root: 1.0 for root in roots}
            frontier = list(roots)
            depth = 0
            seen: set[str] = set(roots)
            while frontier and depth < 16:
                next_frontier: list[str] = []
                for tag in frontier:
                    parent_count = expected.get(tag, 1.0)
                    for child, (low, high) in \
                            dtd.child_cardinalities(tag).items():
                        per_parent = (low + 3.0) if high is None \
                            else (low + high) / 2.0
                        count = parent_count * per_parent
                        expected[child] = expected.get(child, 0.0) + count
                        if child not in seen:
                            seen.add(child)
                            next_frontier.append(child)
                frontier = next_frontier
                depth += 1
            for tag, count in expected.items():
                priors[tag] = priors.get(tag, 0.0) + count
        return priors

    # -- convenience ----------------------------------------------------------------

    def constraint(self, name: str) -> CompiledConstraint:
        for compiled in self.constraints:
            if compiled.name == name:
                return compiled
        raise SchemaError(f"no constraint named {name!r}")

    def optimize_constraints(self) -> None:
        """Normalize the full constraint set against itself.

        Each constraint's denials are normalized and checked for
        redundancy against every *other* constraint's (current)
        denials, so a constraint implied by the rest of the set loses
        its denials — it can never add a violation.  Processing is
        sequential, so of two equivalent constraints exactly one
        survives.
        """
        for compiled in self.constraints:
            trusted = [
                denial
                for other in self.constraints
                if other is not compiled
                for denial in other.denials
            ]
            compiled.denials = optimize(compiled.denials, trusted)
            compiled.full_queries = translate_denials(
                compiled.denials, self.relational)
        self._deletion_unsafe = self._compute_deletion_unsafe()

    def deletion_unsafe_constraints(self) -> list[str]:
        """Names of constraints a deletion could violate.

        Decided once per constraint set (here and in ``__init__``), so
        the run-time removal check is a list lookup instead of a
        ``deletion_safe`` sweep over every denial per operation.
        """
        return self._deletion_unsafe

    def _compute_deletion_unsafe(self) -> list[str]:
        from repro.simplify.deletion import deletion_safe
        return [
            compiled.name for compiled in self.constraints
            if any(not deletion_safe(denial)
                   for denial in compiled.denials)
        ]

    def describe(self) -> str:
        """Human-readable summary of the compiled schema."""
        lines = ["Relational schema:"]
        lines.extend("  " + line
                     for line in self.relational.describe().splitlines())
        lines.append("Constraints:")
        for compiled in self.constraints:
            lines.append(f"  {compiled.name}:")
            for denial in compiled.denials:
                lines.append(f"    {denial}")
        lines.append("Patterns:")
        for signature, checks in self.patterns.items():
            lines.append(f"  {signature} "
                         f"(U = {checks.analyzed.pattern})")
            for check in checks.optimized:
                for denial in check.simplified:
                    lines.append(f"    [{check.constraint.name}] {denial}")
                if check.trivial:
                    lines.append(
                        f"    [{check.constraint.name}] (cannot be "
                        "violated by this pattern)")
            for constraint in checks.fallback:
                lines.append(f"    [{constraint.name}] brute-force fallback")
        return "\n".join(lines)
