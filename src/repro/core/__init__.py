"""The integrity-checking system: design-time compiler + run-time guards.

This is the paper's primary contribution assembled from the substrate
packages:

* :class:`ConstraintSchema` — the *schema design time* artifact: DTDs
  are compiled to the relational schema, XPathLog constraints to
  Datalog denials and full XQuery checks, and every registered update
  pattern gets its simplified (``Simp``) denials translated to
  parameterized XQuery templates;
* :class:`IntegrityGuard` — the optimized run-time strategy: a concrete
  update is matched against the known patterns, the pre-compiled
  optimized check is instantiated and evaluated *before* the update,
  and the update executes only when legal (early detection —
  inconsistent states are never materialized);
* :class:`BruteForceChecker` — the baseline strategy: apply the update,
  evaluate the full constraints, roll back on violation;
* :class:`DatalogChecker` — evaluation of the same checks directly on
  the shredded fact database (used by tests and the engine ablation).
"""

from repro.core.schema import (
    CompiledConstraint,
    ConstraintSchema,
    OptimizedCheck,
    PatternChecks,
)
from repro.core.guard import (
    BruteForceChecker,
    DatalogChecker,
    IntegrityGuard,
    UpdateDecision,
)

__all__ = [
    "CompiledConstraint",
    "ConstraintSchema",
    "OptimizedCheck",
    "PatternChecks",
    "BruteForceChecker",
    "DatalogChecker",
    "IntegrityGuard",
    "UpdateDecision",
]
