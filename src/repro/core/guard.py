"""Run-time checking strategies.

Three checkers share one interface (``try_execute`` / ``execute``):

* :class:`IntegrityGuard` — the paper's optimized strategy: match the
  update against a registered pattern, instantiate the pre-compiled
  simplified XQuery checks with the update's parameters, evaluate them
  on the *present* documents, and only then apply the update.  Illegal
  updates are never executed (early detection).  Updates that match no
  pattern fall back to the brute-force path, as footnote 4 prescribes.
* :class:`BruteForceChecker` — the un-optimized baseline: apply the
  update, evaluate the full constraints on the updated documents, and
  roll back (compensating action) when a violation appears.
* :class:`DatalogChecker` — evaluates the same (full or simplified)
  denials directly on a shredded fact database; the differential oracle
  for the XQuery engine and the subject of the engine ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.concurrency import make_lock
from repro.core.schema import ConstraintSchema, PatternChecks
from repro.datalog.database import FactDatabase
from repro.datalog.denial import Denial
from repro.datalog.evaluate import denial_holds
from repro.datalog.subst import ParameterBinding
from repro.datalog.terms import Constant, Parameter
from repro.errors import (
    AmbiguousSelectError,
    IntegrityViolationError,
    SchemaError,
    SimplificationError,
    UpdateApplicationError,
)
from repro.relational import incremental
from repro.relational.shredder import shred, subtree_facts
from repro.testing.failpoints import fail
from repro.xquery import planner
from repro.xtree.node import Document, Element
from repro.xupdate.analyze import signature_of
from repro.xupdate.apply import TransactionLog
from repro.xupdate.parser import (
    InsertOperation,
    Operation,
    RemoveOperation,
    parse_modifications,
)


#: parsed-update cache: workloads resubmit structurally identical
#: update documents (benchmark batches, retry loops), and parsing is a
#: fixed per-submission cost.  Caching is safe because operations are
#: frozen dataclasses and the apply path deep-copies inserted content.
_UPDATE_CACHE: "OrderedDict[str, list[Operation]]" = \
    OrderedDict()  # guarded-by: _UPDATE_CACHE_LOCK
_UPDATE_CACHE_LOCK = make_lock("core.update_cache")
_UPDATE_CACHE_CAPACITY = 256


def _parse_update_cached(update: str) -> list[Operation]:
    with _UPDATE_CACHE_LOCK:
        operations = _UPDATE_CACHE.get(update)
        if operations is not None:
            _UPDATE_CACHE.move_to_end(update)
            return list(operations)
    operations = parse_modifications(update)
    with _UPDATE_CACHE_LOCK:
        _UPDATE_CACHE[update] = operations
        _UPDATE_CACHE.move_to_end(update)
        while len(_UPDATE_CACHE) > _UPDATE_CACHE_CAPACITY:
            _UPDATE_CACHE.popitem(last=False)
    return list(operations)


@dataclass
class UpdateDecision:
    """Outcome of submitting an update to a checker."""

    legal: bool
    violated: list[str] = field(default_factory=list)
    #: True when the optimized (pre-update) strategy decided the outcome
    optimized: bool = True
    #: True when the update is now applied to the documents
    applied: bool = False
    #: True when an illegal update was applied and rolled back
    rolled_back: bool = False


def verify_documents(schema: ConstraintSchema,
                     documents: list[Document]) -> list[str]:
    """Names of ``schema``'s constraints violated in ``documents``.

    The full (non-incremental) check every checker exposes as
    ``verify_consistency``, as a free function so it can run against
    *any* consistent document set — the live trees under the store
    lock, or a pinned immutable snapshot with no lock at all.
    Constraints flagged *dead* by the compile-time satisfiability pass
    are skipped (DTD-valid documents cannot violate them).
    """
    violated = []
    for constraint in schema.constraints:
        if constraint.dead:
            continue
        for query in constraint.full_queries:
            if query.parameters:
                raise SimplificationError(
                    "full constraint checks cannot have parameters")
            if query.truth(documents):
                violated.append(constraint.name)
                break
    return violated


class _CheckerBase:
    def __init__(self, schema: ConstraintSchema,
                 documents: list[Document]) -> None:
        self.schema = schema
        self.documents = list(documents)
        #: root tag → document; selects start at the root element, so
        #: this resolves the owning document without probing
        self._documents_by_root: dict[str, Document] = {}
        for document in self.documents:
            tag = document.root.tag
            if tag in self._documents_by_root:
                raise SchemaError(
                    f"two documents share the root tag {tag!r}; selects "
                    "could not be routed to a single document")
            self._documents_by_root[tag] = document
        self._listeners: list = []
        self._pre_commit = None
        self._pre_commit_abort = None
        # seed the check planner's cold-document estimates with the
        # schema's DTD cardinality bounds
        planner.install_priors(schema.cardinality_priors())
        # attach incrementally-maintained column stores so planned
        # checks can lower to the columnar backend
        for document in self.documents:
            incremental.attach(document, schema.relational)

    def subscribe(self, listener) -> None:
        """Register ``listener(update, decision)``, called after every
        :meth:`try_execute` — the hook for trigger-style maintenance
        (the paper's future-work direction): audit logs, materialized
        views, notifications on rejections."""
        self._listeners.append(listener)

    def _notify(self, update: "str | Operation",
                decision: UpdateDecision) -> UpdateDecision:
        for listener in self._listeners:
            listener(update, decision)
        return decision

    def set_pre_commit(self, hook, abort=None) -> None:
        """Register ``hook(update, decision)``, run for every *applied*
        update after it is checked and applied into its transaction log
        but before listeners run and the log commits.

        This is the write-ahead seam: the durable service appends the
        update to its commit log here, so an update a listener observes
        as accepted is already on stable storage (log-then-apply).  An
        exception from the hook aborts the update — the transaction log
        rolls the in-memory application back and the exception
        propagates to the submitter.  ``abort(update)``, when given, is
        called if anything fails *after* the hook ran for an update
        (the hook itself included), so the hook's external effects can
        be reconciled with the rollback.
        """
        self._pre_commit = hook
        self._pre_commit_abort = abort

    def _commit_sequence(self, update: "str | Operation",
                         decision: UpdateDecision,
                         log: TransactionLog) -> UpdateDecision:
        """Pre-commit hook → listeners → log commit, for one decided
        update.  The ordering is load-bearing (see
        :meth:`set_pre_commit`); on failure past the hook the abort
        callback runs before the exception unwinds into the
        transaction-log scope, which performs the in-memory rollback.
        """
        entered = False
        try:
            if decision.applied and self._pre_commit is not None:
                entered = True
                self._pre_commit(update, decision)
            decision = self._notify(update, decision)
            if decision.applied:
                log.commit()
            return decision
        except BaseException:
            if entered and self._pre_commit_abort is not None:
                self._pre_commit_abort(update)
            raise

    def _document_for(self, operation: Operation) -> Document:
        """The document a select path resolves in.

        The select's first step names the document root; the collection
        holds one document per root type.
        """
        select = operation.select
        first = select.lstrip("/").split("/")[0].split("[")[0]
        document = self._documents_by_root.get(first)
        if document is not None:
            return document
        # descendant-anchored selects: try them all
        for document in self.documents:
            try:
                from repro.xupdate.apply import resolve_select
                resolve_select(document, select)
                return document
            except AmbiguousSelectError:
                # the select *does* resolve here, just not uniquely;
                # trying further documents would mask the real problem
                raise
            except UpdateApplicationError:
                continue
        raise UpdateApplicationError(
            f"select {select!r} resolves in none of the documents")

    def _apply(self, log: TransactionLog, operation: Operation) -> None:
        """Resolve the target document and apply ``operation`` into
        ``log``, announcing the mutation to any active planner batch
        scope first — indexes the checks build after this point reflect
        a mid-update state and must not be batch-repaired."""
        document = self._document_for(operation)
        planner.note_batch_mutation()
        log.apply(document, operation)

    def verify_consistency(self) -> list[str]:
        """Names of constraints currently violated (full check).

        Constraints flagged *dead* by the compile-time satisfiability
        pass (no DTD-valid document can violate them, ``XIC105``/
        ``XIC106``) are skipped: the documents are DTD-valid by
        contract, so evaluating those checks is pure waste.
        """
        return verify_documents(self.schema, self.documents)

    def execute(self, update: "str | Operation") -> UpdateDecision:
        """Like :meth:`try_execute` but raises on violation."""
        decision = self.try_execute(update)
        if not decision.legal:
            raise IntegrityViolationError(decision.violated)
        return decision

    def try_execute(self, update: "str | Operation") -> UpdateDecision:
        raise NotImplementedError

    def check_batch(
            self,
            updates: "list[str | Operation]") -> list[UpdateDecision]:
        """Check and apply a sequence of updates, one decision each.

        Semantically identical to calling :meth:`try_execute` in a
        loop — update *k* is checked against the state left by updates
        1..k−1, and an illegal update is rejected without affecting the
        rest.  Subclasses override this to share work across the batch.
        """
        return [self.try_execute(update) for update in updates]

    @staticmethod
    def _operations(update: "str | Operation") -> list[Operation]:
        if isinstance(update, str):
            return _parse_update_cached(update)
        return [update]


class BruteForceChecker(_CheckerBase):
    """Apply, check the full constraints, roll back on violation.

    The apply-check sequence runs inside a :class:`TransactionLog`:
    any exception mid-sequence — a later operation's select resolving
    nowhere, a failure inside the consistency check or a listener —
    rolls back every operation already applied, so a failed call never
    leaves the documents partially mutated.
    """

    def try_execute(self, update: "str | Operation") -> UpdateDecision:
        operations = self._operations(update)
        with TransactionLog() as log:
            for operation in operations:
                self._apply(log, operation)
            violated = self.verify_consistency()
            if violated:
                log.rollback()
                return self._notify(update, UpdateDecision(
                    False, violated, optimized=False, applied=False,
                    rolled_back=True))
            decision = self._commit_sequence(
                update,
                UpdateDecision(True, optimized=False, applied=True),
                log)
        return decision

    def check_only(self) -> list[str]:
        """Run the full checks without touching the documents."""
        return self.verify_consistency()


class IntegrityGuard(_CheckerBase):
    """Pre-update checking with the compiled optimized constraints.

    Every apply sequence — the per-operation path, the deferred
    transaction path and the brute-force probes — runs inside a
    :class:`TransactionLog`, so an exception at any point (failed
    select, ambiguous select, violation mid-probe, a raising listener)
    restores the exact pre-call state.
    """

    def try_execute(self, update: "str | Operation") -> UpdateDecision:
        operations = self._operations(update)
        with TransactionLog() as log:
            decision = self._decide(operations, log)
            decision = self._commit_sequence(update, decision, log)
        return decision

    def check_batch(
            self,
            updates: "list[str | Operation]") -> list[UpdateDecision]:
        """Batched :meth:`try_execute` with shared value indexes.

        Decisions are identical to the sequential loop (each update is
        checked against the state left by its predecessors), but the
        hash-join and predicate indexes the checks build are kept
        incrementally repaired across the batch by a planner
        :func:`~repro.xquery.planner.batch_scope` — instead of being
        rebuilt from scratch after every applied update, which is what
        makes N sequential calls quadratic in practice.
        """
        decisions: list[UpdateDecision] = []
        with planner.batch_scope() as scope:
            for update in updates:
                operations = self._operations(update)
                records: list = []
                with TransactionLog() as log:
                    decision = self._decide(operations, log)
                    decision = self._commit_sequence(
                        update, decision, log)
                    if decision.applied:
                        records = log.records
                # repair indexes only after the log has settled: a
                # rejected update's rollback happens on context exit
                try:
                    fail.point("core.guard.batch.settle")
                    if decision.applied:
                        scope.note_applied(records)
                    else:
                        scope.note_rejected()
                    # settle the columnar mirrors at the same cadence
                    # as the hash-join index repair: a store left dirty
                    # by a crashed delta rebuilds here instead of on
                    # the next check's critical path
                    incremental.settle_batch(self.documents)
                except Exception:
                    # index repair is cache maintenance: a failure
                    # mid-repair must not lose an update that already
                    # committed, so the scope is abandoned (the rest
                    # of the batch rebuilds indexes on miss) and the
                    # batch carries on
                    scope.abandon()
                decisions.append(decision)
        return decisions

    def _decide(self, operations: list[Operation],
                log: TransactionLog) -> UpdateDecision:
        """Check and (when legal) apply, recording undo records in
        ``log``.  The caller owns commit/rollback."""
        if len(operations) > 1:
            transaction = self._try_transaction(operations, log)
            if transaction is not None:
                return transaction
        decision = UpdateDecision(True, optimized=True)
        for operation in operations:
            step = self._check_one(operation)
            if not step.legal:
                step.applied = False
                step.rolled_back = bool(len(log))
                if len(log):
                    log.rollback()
                return step
            decision.optimized = decision.optimized and step.optimized
            fail.point("core.guard.post_check")
            self._apply(log, operation)
        decision.applied = True
        return decision

    def _try_transaction(self, operations: list[Operation],
                         log: TransactionLog) -> UpdateDecision | None:
        """Deferred checking for a registered multi-append transaction.

        The whole operation set is checked *once* against the
        pre-transaction state (definition 2's transaction semantics:
        constraints need not hold between the operations); ``None``
        means no transaction pattern matches and the caller falls back
        to per-operation checking.  A legal transaction is applied into
        ``log``, so a failure on the k-th apply rolls back the first
        k−1 instead of leaving them committed.
        """
        from repro.xupdate.parser import InsertOperation as _Insert
        if not all(isinstance(op, _Insert) and op.kind == "append"
                   for op in operations):
            return None
        try:
            signatures = tuple(
                signature_of(operation, self.schema.relational)
                for operation in operations)
        except SimplificationError:
            return None
        checks = self.schema.checks_for_transaction(signatures)
        if checks is None:
            return None
        bindings = checks.analyzed.bind(
            self.documents, operations,  # type: ignore[arg-type]
            self._document_for)
        violated: list[str] = []
        for check in checks.optimized:
            if check.trivial:
                continue
            for query in check.queries:
                if query.truth(self.documents, bindings):
                    violated.append(check.constraint.name)
                    break
        if checks.fallback:
            probe = self._transaction_probe(
                operations, [c.name for c in checks.fallback])
            violated.extend(probe)
        if violated:
            return UpdateDecision(False, violated, optimized=True)
        fail.point("core.guard.post_check")
        for operation in operations:
            self._apply(log, operation)
        return UpdateDecision(True, optimized=True, applied=True)

    def _transaction_probe(self, operations: list[Operation],
                           only: list[str]) -> list[str]:
        """Apply all, check the given constraints, roll everything back."""
        with TransactionLog() as probe:
            for operation in operations:
                self._apply(probe, operation)
            fail.point("core.guard.probe.mid")
            return [name for name in self.verify_consistency()
                    if name in only]

    def _check_one(self, operation: Operation) -> UpdateDecision:
        if isinstance(operation, RemoveOperation):
            return self._check_removal(operation)
        checks = self._checks_for(operation)
        if checks is None:
            return self._brute_force_probe(operation)
        assert isinstance(operation, InsertOperation)
        document = self._document_for(operation)
        bindings = checks.analyzed.bind(document, operation)
        violated: list[str] = []
        for check in checks.optimized:
            if check.trivial:
                continue
            for query in check.queries:
                if query.truth(self.documents, bindings):
                    violated.append(check.constraint.name)
                    break
        if checks.fallback:
            probe = self._brute_force_probe(
                operation, [c.name for c in checks.fallback])
            violated.extend(probe.violated)
            if not probe.optimized:
                return UpdateDecision(not violated, violated,
                                      optimized=False)
        return UpdateDecision(not violated, violated, optimized=True)

    def _check_removal(self, operation: RemoveOperation) -> UpdateDecision:
        """Deletions against monotone constraints need no check at all.

        Removing tuples cannot create a new satisfying binding for a
        positive denial body with upward-monotone aggregates (see
        repro.simplify.deletion); constraints outside that fragment are
        verified by the brute-force probe.  Safety per constraint is
        decided once, at schema-compile time.
        """
        unsafe = self.schema.deletion_unsafe_constraints()
        if not unsafe:
            return UpdateDecision(True, optimized=True)
        return self._brute_force_probe(operation, only=unsafe)

    def _checks_for(self, operation: Operation) -> PatternChecks | None:
        try:
            signature = signature_of(operation, self.schema.relational)
        except SimplificationError:
            return None
        return self.schema.checks_for(signature)

    def _brute_force_probe(self, operation: Operation,
                           only: list[str] | None = None) -> UpdateDecision:
        """Apply-check-rollback for unrecognized updates (footnote 4).

        The update is applied, the (full) constraints are checked, and
        the update is always rolled back — the caller re-applies it if
        the probe reports legality, keeping a single application path.
        """
        with TransactionLog() as probe:
            self._apply(probe, operation)
            fail.point("core.guard.probe.mid")
            violated = [
                name for name in self.verify_consistency()
                if only is None or name in only
            ]
        return UpdateDecision(not violated, violated, optimized=False)


class DatalogChecker:
    """Direct Datalog evaluation over the shredded fact database."""

    def __init__(self, schema: ConstraintSchema,
                 documents: list[Document]) -> None:
        self.schema = schema
        self.documents = list(documents)
        self.database = FactDatabase()
        for document in documents:
            shred(document, schema.relational, self.database)

    def violated_constraints(self) -> list[str]:
        """Names of constraints violated in the mirrored database."""
        violated = []
        for constraint in self.schema.constraints:
            if constraint.dead:
                continue  # unsatisfiable over DTD-valid documents
            if any(not denial_holds(denial, self.database)
                   for denial in constraint.denials):
                violated.append(constraint.name)
        return violated

    def violation_witnesses(
            self,
            limit_per_constraint: int = 10) -> dict[str, list[dict]]:
        """Violating bindings per constraint, for error reporting.

        Each witness maps the denial's named variables to the values
        that satisfy its body — e.g. the reviewer name and the ids of
        the conflicting nodes.  Anonymous variables are omitted.
        """
        from repro.datalog.evaluate import denial_violations
        from repro.datalog.terms import is_anonymous

        witnesses: dict[str, list[dict]] = {}
        for constraint in self.schema.constraints:
            found: list[dict] = []
            for denial in constraint.denials:
                for substitution in denial_violations(
                        denial, self.database,
                        limit=limit_per_constraint - len(found)):
                    found.append({
                        variable.name: term.value
                        for variable, term in substitution.items()
                        if not is_anonymous(variable)
                        and "#" not in variable.name
                    })
                if len(found) >= limit_per_constraint:
                    break
            if found:
                witnesses[constraint.name] = found
        return witnesses

    def check_denials(self, denials: list[Denial],
                      bindings: dict[str, object]) -> bool:
        """Evaluate simplified denials with instantiated parameters.

        Returns True when some denial is violated.  Node bindings are
        mapped to their node identifiers.
        """
        mapping: dict[Parameter, Constant] = {}
        for name, value in bindings.items():
            if isinstance(value, Element):
                mapping[Parameter(name)] = Constant(value.node_id)
            else:
                mapping[Parameter(name)] = Constant(value)  # type: ignore
        binder = ParameterBinding(mapping)
        for denial in denials:
            instantiated = Denial(tuple(
                binder.apply_literal(literal) for literal in denial.body))
            if not denial_holds(instantiated, self.database):
                return True
        return False

    def mirror_insert(self, inserted_root: Element) -> list:
        """Add the facts of a freshly inserted subtree."""
        facts = subtree_facts(inserted_root, self.schema.relational)
        for predicate, row in facts:
            self.database.add(predicate, row)
        return facts

    def mirror_remove(self, facts: list) -> None:
        for predicate, row in facts:
            self.database.remove(predicate, row)
