"""Relational schema compiled from DTDs (section 4.1 of the paper).

The compiler decides, per parent-child edge, whether the child is

* **inlined** — the child occurs at most once, holds character data only
  and has no attributes: its text becomes a nullable column of the
  parent's predicate (``title`` and ``name`` in the running examples);
* **a predicate of its own** — everything else: the predicate's columns
  are ``(Id, Pos, IdParent, <inlined children...>, <attributes...>)``,
  plus a ``text`` column when the element itself holds character data
  that cannot be inlined upward (mixed or repeated text-only types).

Document roots (element types never referenced by another content
model) are not represented as predicates when they carry no data of
their own, exactly as ``dblp`` and ``review`` in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.xtree.dtd import DTD

RESERVED_COLUMNS = ("id", "pos", "parent")


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a predicate.

    ``kind`` is one of:

    * ``"id"`` / ``"pos"`` / ``"parent"`` — the three structural columns;
    * ``"text_child"`` — text of an inlined child; ``source`` is the
      child's tag;
    * ``"attribute"`` — an XML attribute; ``source`` is the attribute
      name;
    * ``"text"`` — the element's own character data.
    """

    name: str
    kind: str
    source: str | None = None
    optional: bool = False

    def __str__(self) -> str:
        suffix = "?" if self.optional else ""
        return f"{self.name}{suffix}"


@dataclass
class PredicateSchema:
    """The relational predicate of one node type."""

    tag: str
    columns: tuple[ColumnSpec, ...]
    parent_tags: tuple[str, ...]

    ID, POS, PARENT = 0, 1, 2

    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(
            f"predicate {self.tag!r} has no column {name!r}; columns: "
            + ", ".join(column.name for column in self.columns))

    def value_columns(self) -> tuple[ColumnSpec, ...]:
        return self.columns[3:]

    def text_child_index(self, child_tag: str) -> int:
        """Column index of an inlined text child, by the child's tag."""
        for index, column in enumerate(self.columns):
            if column.kind == "text_child" and column.source == child_tag:
                return index
        raise SchemaError(
            f"child {child_tag!r} is not inlined into predicate {self.tag!r}")

    def attribute_index(self, attribute: str) -> int:
        for index, column in enumerate(self.columns):
            if column.kind == "attribute" and column.source == attribute:
                return index
        raise SchemaError(
            f"attribute {attribute!r} is not a column of {self.tag!r}")

    def has_text_column(self) -> bool:
        return any(column.kind == "text" for column in self.columns)

    def text_index(self) -> int:
        for index, column in enumerate(self.columns):
            if column.kind == "text":
                return index
        raise SchemaError(f"predicate {self.tag!r} has no text column")

    def __str__(self) -> str:
        inner = ", ".join(str(column) for column in self.columns)
        return f"{self.tag}({inner})"


@dataclass
class RelationalSchema:
    """The full relational view of one or more DTDs."""

    predicates: dict[str, PredicateSchema] = field(default_factory=dict)
    #: (parent_tag, child_tag) → column name in the parent's predicate
    inlined: dict[tuple[str, str], str] = field(default_factory=dict)
    #: root tags that are not represented as predicates
    roots: tuple[str, ...] = ()
    #: the DTDs the schema was compiled from, for validation purposes
    dtds: tuple[DTD, ...] = ()

    # -- queries --------------------------------------------------------------

    def predicate_for(self, tag: str) -> PredicateSchema:
        try:
            return self.predicates[tag]
        except KeyError:
            raise SchemaError(f"no predicate for node type {tag!r}") from None

    def has_predicate(self, tag: str) -> bool:
        return tag in self.predicates

    def is_inlined(self, parent_tag: str, child_tag: str) -> bool:
        return (parent_tag, child_tag) in self.inlined

    def is_root(self, tag: str) -> bool:
        return tag in self.roots

    def knows_tag(self, tag: str) -> bool:
        return (tag in self.predicates or tag in self.roots
                or any(edge[1] == tag for edge in self.inlined))

    def parents_of(self, tag: str) -> tuple[str, ...]:
        if tag in self.predicates:
            return self.predicates[tag].parent_tags
        return tuple(sorted({
            parent for (parent, child) in self.inlined if child == tag}))

    def describe(self) -> str:
        """Human-readable schema listing (as in section 4.1)."""
        lines = [str(self.predicates[tag]) for tag in sorted(self.predicates)]
        return "\n".join(lines)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_dtd(cls, dtd: DTD) -> "RelationalSchema":
        return cls.from_dtds([dtd])

    @classmethod
    def from_dtds(cls, dtds: list[DTD]) -> "RelationalSchema":
        """Compile one relational schema covering several documents.

        The paper's constraints span both ``pub.xml`` and ``rev.xml``;
        their DTDs are compiled together into a single namespace of
        predicates.  A tag that needs a predicate in two DTDs must have
        the same shape in both.
        """
        schema = cls(dtds=tuple(dtds))
        roots: list[str] = []
        for dtd in dtds:
            root = dtd.root()
            roots.append(root)
            builder = _SchemaBuilder(dtd, root)
            builder.build()
            for tag, predicate in builder.predicates.items():
                existing = schema.predicates.get(tag)
                if existing is None:
                    schema.predicates[tag] = predicate
                elif existing.columns != predicate.columns:
                    raise SchemaError(
                        f"node type {tag!r} maps to incompatible predicates "
                        f"in different DTDs: {existing} vs {predicate}")
                else:
                    merged = tuple(sorted(
                        set(existing.parent_tags) | set(predicate.parent_tags)))
                    schema.predicates[tag] = PredicateSchema(
                        tag, existing.columns, merged)
            for edge, column in builder.inlined.items():
                previous = schema.inlined.get(edge)
                if previous is not None and previous != column:
                    raise SchemaError(
                        f"inlined edge {edge} maps to two columns")
                schema.inlined[edge] = column
        schema.roots = tuple(roots)
        for root in roots:
            if root in schema.predicates:
                raise SchemaError(
                    f"tag {root!r} is a document root in one DTD and an "
                    "inner node type in another; this is not supported")
        return schema


class _SchemaBuilder:
    """Builds predicates for a single DTD, walking from the root."""

    def __init__(self, dtd: DTD, root: str) -> None:
        self.dtd = dtd
        self.root = root
        self.predicates: dict[str, PredicateSchema] = {}
        self.inlined: dict[tuple[str, str], str] = {}
        self._parents: dict[str, set[str]] = {}

    def build(self) -> None:
        # First pass: decide, per edge, inlining; collect predicate tags.
        predicate_tags: list[str] = []
        seen: set[str] = set()
        stack = [self.root]
        while stack:
            tag = stack.pop()
            if tag in seen:
                continue
            seen.add(tag)
            for child, (low, high) in sorted(
                    self.dtd.child_cardinalities(tag).items()):
                self._parents.setdefault(child, set()).add(tag)
                # the root has no predicate, so nothing can be inlined
                # into it — its children always get predicates
                if tag != self.root and self._inlinable(child) \
                        and high == 1:
                    self.inlined[(tag, child)] = child
                else:
                    if child not in predicate_tags:
                        predicate_tags.append(child)
                    stack.append(child)
        # A tag inlined under one parent but needing a predicate under
        # another keeps the predicate; the inlining of the first edge is
        # withdrawn for consistency of constraint compilation.
        for (parent, child) in list(self.inlined):
            if child in predicate_tags:
                del self.inlined[(parent, child)]
        # Second pass: build predicate column lists.
        for tag in predicate_tags:
            self.predicates[tag] = self._predicate(tag)

    def _inlinable(self, tag: str) -> bool:
        return self.dtd.is_pcdata_only(tag) and not self.dtd.attribute_defs(tag)

    def _predicate(self, tag: str) -> PredicateSchema:
        columns: list[ColumnSpec] = [
            ColumnSpec("id", "id"),
            ColumnSpec("pos", "pos"),
            ColumnSpec("parent", "parent"),
        ]
        used = set(RESERVED_COLUMNS)
        for child, (low, high) in sorted(
                self.dtd.child_cardinalities(tag).items()):
            if (tag, child) in self.inlined:
                name = self._column_name(child, used)
                columns.append(ColumnSpec(
                    name, "text_child", source=child, optional=low == 0))
        for attribute in self.dtd.attribute_defs(tag):
            name = self._column_name(attribute.name, used)
            columns.append(ColumnSpec(
                name, "attribute", source=attribute.name,
                optional=not attribute.required))
        model = self.dtd.content_model(tag)
        from repro.xtree.dtd import MixedContent
        if isinstance(model, MixedContent):
            name = self._column_name("text", used)
            columns.append(ColumnSpec(name, "text", optional=True))
        parents = tuple(sorted(self._parents.get(tag, set())))
        return PredicateSchema(tag, tuple(columns), parents)

    @staticmethod
    def _column_name(base: str, used: set[str]) -> str:
        name = base.lower()
        while name in used:
            name += "_"
        used.add(name)
        return name
