"""Reconstruction: relational facts back to an XML document.

The inverse of :func:`repro.relational.shredder.shred`, used to verify
that the mapping of section 4.1 is lossless for schema-conforming
documents: shred → reconstruct yields a document with the same
structure, text, attributes and node identifiers.

Ordering note: inlined text children have no rows of their own (their
text lives in the parent's columns), so their exact positions are not
stored.  They are re-created *before* the predicate children, in schema
column order — faithful for content models where the text-only children
lead the sequence (``(title, aut+)``, ``(name, rev+)``, ... — every
model in the running examples, and the common XML design).
"""

from __future__ import annotations

from repro.datalog.database import FactDatabase, Row
from repro.errors import SchemaError
from repro.relational.schema import RelationalSchema
from repro.xtree.node import Document, Element, Text


def reconstruct(database: FactDatabase, schema: RelationalSchema,
                root_tag: str) -> Document:
    """Rebuild the document with root ``root_tag`` from shredded facts.

    Only rows reachable from that root are used — a database may hold
    several shredded documents, as the running example's does.
    """
    if not schema.is_root(root_tag):
        raise SchemaError(f"{root_tag!r} is not a document root type")

    # restrict to the node types reachable from this root: documents
    # shredded into a shared database have independent id spaces, so
    # rows of another document's types must not be considered
    reachable: set[str] = set()
    frontier = [root_tag]
    while frontier:
        current = frontier.pop()
        for tag, spec in schema.predicates.items():
            if current in spec.parent_tags and tag not in reachable:
                reachable.add(tag)
                frontier.append(tag)

    rows_by_parent: dict[object, list[tuple[str, Row]]] = {}
    all_ids: set[object] = set()
    for predicate in reachable:
        for row in database.rows(predicate):
            rows_by_parent.setdefault(row[2], []).append((predicate, row))
            all_ids.add(row[0])

    root_children_types = {
        tag for tag, spec in schema.predicates.items()
        if root_tag in spec.parent_tags
    }
    root_ids = {
        parent for parent, children in rows_by_parent.items()
        if parent not in all_ids
        and all(tag in root_children_types for tag, _ in children)
    }
    if len(root_ids) > 1:
        raise SchemaError(
            f"facts contain several candidate {root_tag!r} roots")

    root = Element(root_tag)
    root.node_id = int(root_ids.pop()) if root_ids else None

    def build(parent: Element, parent_id: object) -> None:
        children = sorted(rows_by_parent.get(parent_id, ()),
                          key=lambda item: item[1][1])
        for child_tag, row in children:
            child = Element(child_tag)
            child.node_id = int(row[0])  # type: ignore[assignment]
            parent.append(child)
            _fill_values(child, child_tag, row, schema)
            build(child, row[0])

    build(root, root.node_id)
    return Document(root)


def _fill_values(element: Element, tag: str, row: Row,
                 schema: RelationalSchema) -> None:
    predicate = schema.predicate_for(tag)
    for index, column in enumerate(predicate.value_columns(), start=3):
        value = row[index]
        if value is None:
            continue
        if column.kind == "attribute":
            element.attributes[column.source or ""] = str(value)
        elif column.kind == "text":
            element.append(Text(str(value)))
        else:
            assert column.kind == "text_child"
            child = Element(column.source or "")
            child.append(Text(str(value)))
            element.append(child)
