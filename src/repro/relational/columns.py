"""Columnar storage for the paper's per-tag relations.

The relational mapping of section 4.1 gives every node type a predicate
``tag(Id, Pos, IdParent, value...)``.  :mod:`repro.relational.shredder`
produces those rows as a one-shot export; this module stores them as
*columns* — contiguous stdlib :class:`array.array` buffers for the
structural attributes plus Python lists for the (nullable, textual)
value attributes — so the query planner can evaluate plan steps
set-at-a-time instead of node-at-a-time.

Two structures live here; both are owned and kept current by
:class:`repro.relational.incremental.ColumnStore`:

* :class:`TagTable` — one relation: the elements of a tag with their
  ``(Id, Pos, IdParent)`` structural columns and, when the tag has a
  predicate in the relational schema, its value columns computed with
  the exact semantics of ``shredder._row_for`` (so the table can be
  compared 1:1 against a cold re-shred).
* :class:`PathIndex` — a value index over one tag: element → the
  canonical hash keys (:func:`repro.xquery.optimizer.hash_keys`) of
  each atom of a downward path (``name/text()``, ``@year``, …), plus
  the inverted ``key → elements`` buckets the planner's hash joins and
  predicate-value filters probe.

numpy, when importable (``pip install repro[fast]``) and not disabled
via ``REPRO_NO_NUMPY``, accelerates structural-column work (grouping,
per-version array snapshots); every consumer also has a stdlib path
and the two are differentially tested.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Iterable

from repro.relational.schema import PredicateSchema
from repro.xquery.optimizer import hash_keys
from repro.xquery.planner import _eval_downpath
from repro.xquery.values import atomize
from repro.xtree.node import Element

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.schema import RelationalSchema

try:  # feature probe: numpy is an optional extra
    if os.environ.get("REPRO_NO_NUMPY"):
        _numpy = None
    else:
        import numpy as _numpy  # type: ignore[import-not-found]
except Exception:  # pragma: no cover - absence is the CI default
    _numpy = None

#: tests raise this to force the stdlib path with numpy installed
_numpy_disabled = 0


def numpy_active() -> bool:
    """Whether the numpy fast path is available and enabled."""
    return _numpy is not None and not _numpy_disabled


class stdlib_only:
    """Context manager forcing the stdlib path (for differential tests)."""

    def __enter__(self) -> "stdlib_only":
        global _numpy_disabled
        _numpy_disabled += 1
        return self

    def __exit__(self, *exc: object) -> None:
        global _numpy_disabled
        _numpy_disabled -= 1


Downpath = tuple[tuple[str, str], ...]
"""A relative downward path as ``((axis, nodetest), ...)`` — the same
shape the planner's ``_downpath_steps`` produces."""

_UNREACHABLE: Downpath = (("attribute", "\x00never"),)


def _value_downpath(column) -> Downpath:
    """The downpath a value column's content depends on."""
    if column.kind == "text_child":
        return (("child", column.source or ""), ("child", "text()"))
    if column.kind == "attribute":
        return _UNREACHABLE  # adopt/orphan cannot change attributes
    return (("child", "text()"),)  # kind == "text"


def chain_reaches(steps: Downpath, chain: tuple[str, ...]) -> bool:
    """Whether a mutation below ``chain`` can change ``steps``' result.

    ``chain`` is the tag path from the element owning ``steps`` down to
    (and including) the mutation parent, exclusive of the owner itself:
    a mutation among the owner's direct children has ``chain == ()``.
    The downpath only sees nodes whose ancestor-tag prefix matches its
    child steps, so a chain the steps cannot spell is unreachable and
    the owner's value is untouched.
    """
    if len(steps) <= len(chain):
        return False
    for i, tag in enumerate(chain):
        axis, nodetest = steps[i]
        if axis != "child" or nodetest != tag:
            return False
    return True


class TagTable:
    """One per-tag relation stored as columns.

    ``elements[i]`` is the element behind row ``i``; ``ids``/``pos``/
    ``parents`` are its structural columns (``array('q')``, so numpy
    can view them zero-copy); ``values[name][i]`` are the value columns
    when the tag has a predicate.  Rows are unordered: removal swaps
    the last row in, keeping the columns contiguous without shifting.
    ``version`` increments on every change, invalidating derived
    caches (numpy views, children groups).
    """

    __slots__ = ("tag", "predicate", "elements", "ids", "pos", "parents",
                 "values", "row_of", "version", "_specs", "_views",
                 "_groups", "_groups_version", "value_steps")

    def __init__(self, tag: str,
                 predicate: PredicateSchema | None = None) -> None:
        self.tag = tag
        self.predicate = predicate
        self.elements: list[Element] = []
        self.ids = array("q")
        self.pos = array("q")
        self.parents = array("q")
        self._specs = {column.name: column
                       for column in predicate.value_columns()} \
            if predicate is not None else {}
        self.values: dict[str, list[object]] = {
            name: [] for name in self._specs}
        #: node id → row number
        self.row_of: dict[int, int] = {}
        #: per value column, the downpath its value depends on — what
        #: delta maintenance matches against the mutation chain to skip
        #: refreshes that cannot change anything (attributes never
        #: change through adopt/orphan, so their path is unreachable)
        self.value_steps: tuple[Downpath, ...] = tuple(
            _value_downpath(column) for column in self._specs.values())
        self.version = 0
        self._views: dict[str, object] = {}
        self._groups: dict[int, list[Element]] | None = None
        self._groups_version = -1

    def __len__(self) -> int:
        return len(self.elements)

    # -- row maintenance -------------------------------------------------

    def append(self, element: Element) -> None:
        """Add one element's row (no-op if already present)."""
        node_id = element.node_id
        assert node_id is not None
        if node_id in self.row_of:
            return
        self.row_of[node_id] = len(self.elements)
        self.elements.append(element)
        self.ids.append(node_id)
        parent = element.parent
        if parent is not None:
            self.pos.append(element.child_position)
            self.parents.append(parent.node_id or 0)
        else:  # a document root: no position, no parent row
            self.pos.append(1)
            self.parents.append(0)
        for name, column in self.values.items():
            column.append(self._value_of(element, name))
        self.version += 1

    def discard(self, element: Element) -> None:
        """Remove one element's row by swapping the last row in."""
        node_id = element.node_id
        if node_id is None:
            return
        row = self.row_of.pop(node_id, None)
        if row is None:
            return
        last = len(self.elements) - 1
        if row != last:
            moved = self.elements[last]
            self.elements[row] = moved
            self.ids[row] = self.ids[last]
            self.pos[row] = self.pos[last]
            self.parents[row] = self.parents[last]
            for column in self.values.values():
                column[row] = column[last]
            assert moved.node_id is not None
            self.row_of[moved.node_id] = row
        self.elements.pop()
        self.ids.pop()
        self.pos.pop()
        self.parents.pop()
        for column in self.values.values():
            column.pop()
        self.version += 1

    def set_pos(self, element: Element, position: int) -> None:
        """Refresh the sibling position of one element's row."""
        row = self.row_of.get(element.node_id or -1)
        if row is not None and self.pos[row] != position:
            self.pos[row] = position
            self.version += 1

    def refresh_values(self, element: Element) -> None:
        """Recompute the value columns of one element's row."""
        if not self.values:
            return
        row = self.row_of.get(element.node_id or -1)
        if row is None:
            return
        changed = False
        for name, column in self.values.items():
            value = self._value_of(element, name)
            if column[row] != value:
                column[row] = value
                changed = True
        if changed:
            self.version += 1

    def _value_of(self, element: Element, name: str) -> object:
        """One value column entry — ``shredder._row_for`` semantics."""
        column = self._specs[name]
        if column.kind == "text_child":
            child = element.first_child(column.source or "")
            return None if child is None else child.text()
        if column.kind == "attribute":
            return element.attributes.get(column.source or "")
        return element.text()  # kind == "text"

    # -- reads -----------------------------------------------------------

    def rows(self) -> list[tuple]:
        """The relation as ``(Id, Pos, IdParent, value...)`` tuples.

        For predicate tags this equals the rows a cold
        :func:`repro.relational.shredder.shred` would produce for the
        tag (up to order) — the property the differential tests and
        the faultcheck invariant battery assert.
        """
        columns: list[Iterable] = [self.ids, self.pos, self.parents]
        columns.extend(self.values.values())
        return list(zip(*columns)) if self.elements else []

    def structural_view(self, name: str):
        """A numpy array of ``ids``/``pos``/``parents``, cached per
        version.

        A copy, not a buffer view: a live view would pin the stdlib
        array's buffer and make subsequent delta appends raise
        :class:`BufferError`.  Raises :class:`RuntimeError` when numpy
        is unavailable; callers branch on :func:`numpy_active`.
        """
        if not numpy_active():  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy is not available")
        if self._views.get("__version__") != self.version:
            self._views = {"__version__": self.version}
        view = self._views.get(name)
        if view is None:
            source = {"ids": self.ids, "pos": self.pos,
                      "parents": self.parents}[name]
            view = _numpy.array(source, dtype=_numpy.int64)
            self._views[name] = view
        return view

    def children_groups(self) -> dict[int, list[Element]]:
        """``parent node id → [child elements of this tag]``.

        The columnar form of one downward child step: grouping the
        relation by its ``IdParent`` column.  Cached per version; the
        numpy path groups via ``argsort`` over the parent column, the
        stdlib path via a dict loop, and both produce identical groups
        (differentially tested).
        """
        if self._groups is not None and self._groups_version == self.version:
            return self._groups
        groups: dict[int, list[Element]] = {}
        if numpy_active() and len(self.elements) > 1:
            parents = self.structural_view("parents")
            order = _numpy.argsort(parents, kind="stable")
            sorted_parents = parents[order]
            boundaries = _numpy.flatnonzero(
                sorted_parents[1:] != sorted_parents[:-1]) + 1
            start = 0
            for end in [*boundaries.tolist(), len(order)]:
                parent_id = int(sorted_parents[start])
                groups[parent_id] = [self.elements[i]
                                     for i in order[start:end].tolist()]
                start = end
        else:
            for element, parent_id in zip(self.elements, self.parents):
                groups.setdefault(parent_id, []).append(element)
        self._groups = groups
        self._groups_version = self.version
        return groups


class PathIndex:
    """A value index over one tag: downpath atoms in hash-key space.

    ``atoms_of[node_id]`` holds, per atom of ``element/steps``, the
    tuple of canonical hash keys of that atom; ``buckets[key]`` maps
    back to the elements owning the key.  Key computation is exactly
    ``atomize(_eval_downpath(steps, element))`` × ``hash_keys`` — the
    formula both the engine's hash-join indexes and the planner's
    predicate-value indexes use, so a probe here answers the same
    question those per-check builds answer, without the build.
    """

    __slots__ = ("tag", "steps", "buckets", "atoms_of")

    def __init__(self, tag: str, steps: Downpath) -> None:
        self.tag = tag
        self.steps = steps
        #: key → {node id → element}, insertion-ordered
        self.buckets: dict[tuple, dict[int, Element]] = {}
        self.atoms_of: dict[int, tuple[tuple[tuple, ...], ...]] = {}

    def __len__(self) -> int:
        return len(self.atoms_of)

    def compute(self, element: Element) -> tuple[tuple[tuple, ...], ...]:
        """The per-atom key tuples of one element (pure)."""
        return tuple(tuple(hash_keys(atom)) for atom in
                     atomize(_eval_downpath(self.steps, element)))

    def add(self, element: Element) -> None:
        node_id = element.node_id
        assert node_id is not None
        if node_id in self.atoms_of:
            return
        atoms = self.compute(element)
        self.atoms_of[node_id] = atoms
        for key in {key for atom in atoms for key in atom}:
            self.buckets.setdefault(key, {})[node_id] = element

    def discard(self, element: Element) -> None:
        node_id = element.node_id
        if node_id is None:
            return
        atoms = self.atoms_of.pop(node_id, None)
        if atoms is None:
            return
        self._unbucket(node_id, atoms)

    def rekey(self, element: Element) -> None:
        """Recompute one element's keys after a subtree-value change."""
        node_id = element.node_id
        if node_id is None or node_id not in self.atoms_of:
            return
        old = self.atoms_of[node_id]
        new = self.compute(element)
        if old == new:
            return
        self._unbucket(node_id, old)
        self.atoms_of[node_id] = new
        for key in {key for atom in new for key in atom}:
            self.buckets.setdefault(key, {})[node_id] = element

    def _unbucket(self, node_id: int,
                  atoms: tuple[tuple[tuple, ...], ...]) -> None:
        for key in {key for atom in atoms for key in atom}:
            bucket = self.buckets.get(key)
            if bucket is not None:
                bucket.pop(node_id, None)
                if not bucket:
                    del self.buckets[key]

    def probe(self, key: tuple) -> list[Element]:
        """The elements with ``key`` among their atom keys."""
        bucket = self.buckets.get(key)
        return list(bucket.values()) if bucket else []

    def flat_keys(self, node_id: int) -> frozenset:
        """All keys of one element (empty if not indexed)."""
        atoms = self.atoms_of.get(node_id, ())
        return frozenset(key for atom in atoms for key in atom)
