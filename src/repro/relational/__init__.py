"""Mapping XML to the relational/deductive data model (section 4.1).

Each node type is mapped to a predicate whose first three attributes are
the node identifier, its position among its siblings and the identifier
of its parent.  Parent-child relationships that are one-to-one (or
optional) with text-only children are compacted: the child's character
data becomes a column of the parent's predicate.  Document root types
carry no local data and are not represented as predicates; their node
identifiers appear as parent values in their children's rows.
"""

from repro.relational.schema import (
    ColumnSpec,
    PredicateSchema,
    RelationalSchema,
)
from repro.relational.shredder import shred, subtree_facts
from repro.relational.reconstruct import reconstruct
from repro.relational.prune import prune_denials, prune_implied_parent_atoms

__all__ = [
    "ColumnSpec",
    "PredicateSchema",
    "RelationalSchema",
    "shred",
    "subtree_facts",
    "reconstruct",
    "prune_denials",
    "prune_implied_parent_atoms",
]
