"""Schema-aware pruning of implied parent atoms.

In the shredded relational view, referential integrity holds by
construction: every row's ``parent`` value is the id of an existing row
of (one of) the parent node type(s).  An atom such as ``pub(Ip,_,_,_)``
is therefore redundant in a body that contains ``aut(_,_,Ip,_)`` — the
``aut`` row guarantees the ``pub`` row.  The paper's compiled denials
use this implicitly (example 3 contains no ``pub`` atom); this module
makes the rule explicit and sound:

an atom ``p(I, A2, ..., An)`` can be dropped iff

* ``I`` is a variable, every ``Ai`` is a variable occurring nowhere
  else in the denial, and
* ``I`` occurs elsewhere, always in the *parent* position of an atom
  whose node type has ``p`` among its possible parents — and, when a
  node type has several possible parents, the containing atom must pin
  the type: we additionally require ``p`` to be the *only* parent type,
  so the implication is unconditional.
"""

from __future__ import annotations

from repro.datalog.atoms import (AggregateCondition, Atom, Comparison,
                                 Negation)
from repro.datalog.denial import Denial
from repro.datalog.terms import Arithmetic, Term, Variable
from repro.relational.schema import RelationalSchema


def _term_occurrences(term: Term, variable: Variable) -> int:
    if term == variable:
        return 1
    if isinstance(term, Arithmetic):
        return (_term_occurrences(term.left, variable)
                + _term_occurrences(term.right, variable))
    return 0


def _occurrences(denial: Denial, variable: Variable,
                 skip_atom: Atom | None = None) -> list[tuple[Atom | None, int]]:
    """(atom, argument index) of each occurrence; comparisons and
    aggregate parts yield ``(None, -1)`` entries."""
    result: list[tuple[Atom | None, int]] = []
    for literal in denial.body:
        if isinstance(literal, Atom):
            if literal is skip_atom:
                continue
            for index, arg in enumerate(literal.args):
                for _ in range(_term_occurrences(arg, variable)):
                    result.append((literal, index))
        elif isinstance(literal, Comparison):
            count = (_term_occurrences(literal.left, variable)
                     + _term_occurrences(literal.right, variable))
            result.extend([(None, -1)] * count)
        elif isinstance(literal, Negation):
            count = 0
            for inner in literal.body:
                if isinstance(inner, Atom):
                    for arg in inner.args:
                        count += _term_occurrences(arg, variable)
                else:
                    count += (_term_occurrences(inner.left, variable)
                              + _term_occurrences(inner.right, variable))
            result.extend([(None, -1)] * count)
        else:
            assert isinstance(literal, AggregateCondition)
            aggregate = literal.aggregate
            count = _term_occurrences(literal.bound, variable)
            if aggregate.term is not None:
                count += _term_occurrences(aggregate.term, variable)
            for term in aggregate.group_by:
                count += _term_occurrences(term, variable)
            for atom in aggregate.body:
                for arg in atom.args:
                    count += _term_occurrences(arg, variable)
            result.extend([(None, -1)] * count)
    return result


def prune_implied_parent_atoms(denial: Denial,
                               schema: RelationalSchema) -> Denial:
    """Drop atoms implied by the referential integrity of the mapping."""
    body = list(denial.body)
    changed = True
    while changed:
        changed = False
        current = Denial(tuple(body))
        for literal in body:
            if not isinstance(literal, Atom) \
                    or not schema.has_predicate(literal.predicate):
                continue
            identifier = literal.args[0]
            if not isinstance(identifier, Variable):
                continue
            if not _rest_args_disposable(current, literal):
                continue
            occurrences = _occurrences(current, identifier,
                                       skip_atom=literal)
            if not occurrences:
                continue  # a pure existence check: keep it
            if all(_is_implied_parent_use(entry, literal.predicate, schema)
                   for entry in occurrences):
                body.remove(literal)
                changed = True
                break
    if len(body) == len(denial.body):
        return denial
    return Denial(tuple(body))


def _rest_args_disposable(denial: Denial, atom: Atom) -> bool:
    """True when all non-id arguments are variables used nowhere else."""
    for index, arg in enumerate(atom.args):
        if index == 0:
            continue
        if not isinstance(arg, Variable):
            return False
        uses = _occurrences(denial, arg, skip_atom=atom)
        own_uses = sum(
            1 for other_index, other_arg in enumerate(atom.args)
            if other_index != index and _term_occurrences(other_arg, arg))
        if uses or own_uses:
            return False
    return True


def _is_implied_parent_use(entry: tuple[Atom | None, int], predicate: str,
                           schema: RelationalSchema) -> bool:
    atom, index = entry
    if atom is None or index != 2:
        return False
    if not schema.has_predicate(atom.predicate):
        return False
    parents = schema.predicate_for(atom.predicate).parent_tags
    return parents == (predicate,)


def prune_denials(denials: list[Denial],
                  schema: RelationalSchema) -> list[Denial]:
    """Prune a whole set of denials."""
    return [prune_implied_parent_atoms(denial, schema)
            for denial in denials]
