"""Shredding XML documents into relational facts (section 4.1)."""

from __future__ import annotations

from repro.datalog.database import FactDatabase, Row
from repro.errors import SchemaError
from repro.relational.schema import PredicateSchema, RelationalSchema
from repro.xtree.node import Document, Element


def _row_for(element: Element, predicate: PredicateSchema,
             schema: RelationalSchema) -> Row:
    if element.node_id is None or element.parent is None \
            or element.parent.node_id is None:
        raise SchemaError(
            f"element <{element.tag}> must be attached to a document "
            "before shredding")
    values: list[object] = [
        element.node_id,
        element.child_position,
        element.parent.node_id,
    ]
    for column in predicate.value_columns():
        if column.kind == "text_child":
            child = element.first_child(column.source or "")
            values.append(None if child is None else child.text())
        elif column.kind == "attribute":
            values.append(element.attributes.get(column.source or ""))
        elif column.kind == "text":
            values.append(element.text())
        else:  # pragma: no cover - schema construction prevents this
            raise SchemaError(f"unexpected column kind {column.kind!r}")
    return tuple(values)


def shred(document: Document, schema: RelationalSchema,
          database: FactDatabase | None = None) -> FactDatabase:
    """Map a document to facts, adding them to ``database`` (or a new one).

    Elements of inlined node types produce no rows; their text lives in
    the parent's row.  The document root produces no row either — its
    node id only appears as the parent value of its children.
    """
    database = database or FactDatabase()
    for predicate, row in iter_facts(document, schema):
        database.add(predicate, row)
    return database


def iter_facts(document: Document, schema: RelationalSchema):
    """Yield ``(predicate, row)`` pairs for a whole document."""
    root = document.root
    if not schema.is_root(root.tag) and not schema.has_predicate(root.tag):
        raise SchemaError(
            f"document root <{root.tag}> is unknown to the schema")
    for element in document.iter_elements():
        if element is root:
            continue
        parent_tag = element.parent.tag if element.parent else ""
        if schema.is_inlined(parent_tag, element.tag):
            continue
        if not schema.has_predicate(element.tag):
            raise SchemaError(
                f"element <{element.tag}> at {element.location_path()} has "
                "no predicate and is not inlined")
        predicate = schema.predicate_for(element.tag)
        yield element.tag, _row_for(element, predicate, schema)


def subtree_facts(element: Element,
                  schema: RelationalSchema) -> list[tuple[str, Row]]:
    """Facts contributed by one (attached) subtree.

    This is the relational delta of inserting ``element``: the facts for
    the element itself and all of its non-inlined descendants.  Used to
    mirror updates onto a fact database and by tests asserting the
    update mapping of section 4.1.
    """
    facts: list[tuple[str, Row]] = []
    parent_tag = element.parent.tag if element.parent else ""
    for node in element.iter_elements():
        node_parent_tag = node.parent.tag if node.parent else parent_tag
        if schema.is_inlined(node_parent_tag, node.tag):
            continue
        predicate = schema.predicate_for(node.tag)
        facts.append((node.tag, _row_for(node, predicate, schema)))
    return facts
