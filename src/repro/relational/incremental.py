"""Incrementally-maintained column stores attached to documents.

A :class:`ColumnStore` keeps the columnar relations of
:mod:`repro.relational.columns` consistent with a live
:class:`~repro.xtree.node.Document` while updates are applied.  It
registers a mutation listener with the document and patches the
materialized tables and value indexes from each adopt/orphan delta —
subtree row appends/removals, a sibling-position pass at the mutation
parent, and a value/key refresh along the ancestor chain — instead of
re-shredding the document per check.

Crash consistency follows a *write-ahead invalidation* protocol: the
listener first marks the store dirty (``_synced_revision = None``),
then patches, then stamps the document's revision back.  A fault
anywhere inside the delta — including the injected
``columns.delta.*`` failpoints — leaves the store dirty, and the next
read rebuilds every materialized structure from the DOM.  Listener
exceptions are never allowed to escape: they would otherwise tear the
structural mutation that triggered them (the undo record for an insert
is only created *after* the insert returns), so the delta is the one
layer that degrades to a rebuild rather than failing loudly.

Validation is a single integer comparison per read
(``_synced_revision == document.revision``); the store never serves
stale data because every mutation path funnels through
``Document.adopt``/``orphan`` under the document lock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.concurrency import guarded_by, requires_lock
from repro.relational.columns import (
    Downpath,
    PathIndex,
    TagTable,
    chain_reaches,
)
from repro.relational.shredder import iter_facts
from repro.testing.failpoints import fail
from repro.xtree.node import Document, Element, Node, Text

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.schema import RelationalSchema

#: adaptive warming: every (tag, downpath) index and table tag ever
#: materialized on a store, keyed by the document's root tag.  A fresh
#: attach() prebuilds these for its document, so a new corpus of a
#: known shape starts its first check with warm columns instead of
#: paying cold builds on the critical path.
_HOT_INDEXES: dict[str, dict[tuple[str, Downpath], None]] = {}
_HOT_TABLES: dict[str, dict[str, None]] = {}
_HOT_CAP = 64


@guarded_by("self.document._lock", "_tables", "_indexes",
            "_synced_revision")
class ColumnStore:
    """The columnar mirror of one document.

    Tables and indexes materialize lazily (first use by the planner or
    the guard) and are maintained incrementally afterwards.  All state
    transitions happen under the document's RLock: reads take it to
    validate/build, and the mutation listener already runs inside it.
    """

    __slots__ = ("document", "relational", "_tables", "_indexes",
                 "_synced_revision", "delta_failures", "rebuilds")

    def __init__(self, document: Document,
                 relational: "RelationalSchema | None" = None) -> None:
        self.document = document
        self.relational = relational
        self._tables: dict[str, TagTable] = {}
        #: (tag, downpath) → index
        self._indexes: dict[tuple[str, Downpath], PathIndex] = {}
        #: the document revision the store mirrors; ``None`` = dirty
        self._synced_revision: int | None = document.revision
        #: deltas abandoned to a fault (the store self-healed after)
        self.delta_failures = 0
        #: full rebuilds triggered by a dirty read
        self.rebuilds = 0

    # -- reads -----------------------------------------------------------

    def table(self, tag: str) -> TagTable:
        """The (validated) table of one tag, built on first use."""
        with self.document._lock:
            self._validate()
            table = self._tables.get(tag)
            if table is None:
                table = self._build_table(tag)
                self._tables[tag] = table
                self._note_hot(_HOT_TABLES, tag)
            return table

    def value_index(self, tag: str, steps: Downpath) -> PathIndex:
        """The (validated) value index of one (tag, downpath)."""
        with self.document._lock:
            self._validate()
            index = self._indexes.get((tag, steps))
            if index is None:
                index = self._build_index(tag, steps)
                self._indexes[(tag, steps)] = index
                self._note_hot(_HOT_INDEXES, (tag, steps))
            return index

    def _note_hot(self, registry: dict, spec: object) -> None:
        specs = registry.setdefault(self.document.root.tag, {})
        if spec not in specs and len(specs) < _HOT_CAP:
            specs[spec] = None

    def warm(self) -> None:
        """Prebuild the structures past workloads used on this shape.

        Called by :func:`attach`, off the checking critical path: the
        first check over a fresh document then finds its tables and
        value indexes already materialized.
        """
        root_tag = self.document.root.tag
        with self.document._lock:
            self._validate()
            for tag in _HOT_TABLES.get(root_tag, ()):
                if tag not in self._tables:
                    self._tables[tag] = self._build_table(tag)
            for tag, steps in _HOT_INDEXES.get(root_tag, ()):
                if (tag, steps) not in self._indexes:
                    self._indexes[(tag, steps)] = self._build_index(
                        tag, steps)

    @property
    def dirty(self) -> bool:
        with self.document._lock:
            return self._synced_revision != self.document.revision

    def settle(self) -> None:
        """Eagerly rebuild if dirty (batch boundaries call this)."""
        with self.document._lock:
            self._validate()

    # -- construction / validation --------------------------------------

    def _build_table(self, tag: str) -> TagTable:
        predicate = None
        if self.relational is not None \
                and self.relational.has_predicate(tag):
            predicate = self.relational.predicate_for(tag)
        table = TagTable(tag, predicate)
        for element in self._elements(tag):
            table.append(element)
        return table

    def _build_index(self, tag: str, steps: Downpath) -> PathIndex:
        index = PathIndex(tag, steps)
        for element in self._elements(tag):
            index.add(element)
        return index

    def _elements(self, tag: str) -> list[Element]:
        return self.document.elements_by_tag(tag)

    @requires_lock("self.document._lock")
    def _validate(self) -> None:
        """Rebuild every materialized structure if the store is dirty.

        The rebuild constructs into fresh containers and swaps them in
        only on success, so a fault mid-rebuild (``columns.rebuild``)
        leaves the store dirty and the next read retries.
        """
        if self._synced_revision == self.document.revision:
            return
        fail.point("columns.rebuild")
        tables = {tag: self._build_table(tag) for tag in self._tables}
        indexes = {key: self._build_index(*key) for key in self._indexes}
        self._tables = tables
        self._indexes = indexes
        self.rebuilds += 1
        self._synced_revision = self.document.revision

    # -- delta maintenance -----------------------------------------------

    @requires_lock("self.document._lock")
    def _on_mutation(self, kind: str, node: Node,
                     parent: Element | None) -> None:
        """Mutation listener: patch columns from one adopt/orphan.

        Runs under the document lock, inside the structural mutation.
        Must not raise (see module docstring); any failure counts in
        ``delta_failures`` and leaves the store dirty for a lazy
        rebuild.
        """
        if not self._tables and not self._indexes:
            # nothing materialized yet: stay trivially in sync
            self._synced_revision = self.document.revision
            return
        if self._synced_revision is None:
            return  # already dirty; the next read rebuilds anyway
        self._synced_revision = None  # write-ahead invalidation
        try:
            fail.point("columns.delta.apply")
            self._apply_delta(kind, node, parent)
            fail.point("columns.delta.settle")
        except Exception:
            self.delta_failures += 1
            return  # stays dirty
        self._synced_revision = self.document.revision

    @requires_lock("self.document._lock")
    def _apply_delta(self, kind: str, node: Node,
                     parent: Element | None) -> None:
        if isinstance(node, Element):
            if kind == "adopt":
                for element in node.iter_elements():
                    table = self._tables.get(element.tag)
                    if table is not None:
                        table.append(element)
                    for index in self._indexes_for(element.tag):
                        index.add(element)
            else:
                for element in node.iter_elements():
                    table = self._tables.get(element.tag)
                    if table is not None:
                        table.discard(element)
                    for index in self._indexes_for(element.tag):
                        index.discard(element)
            if parent is not None:
                self._refresh_positions(parent)
        self._refresh_ancestors(parent)

    @requires_lock("self.document._lock")
    def _indexes_for(self, tag: str) -> "list[PathIndex]":
        return [index for (index_tag, _), index in self._indexes.items()
                if index_tag == tag]

    @requires_lock("self.document._lock")
    def _refresh_positions(self, parent: Element) -> None:
        """One pass over the mutation parent's children: sibling
        positions shift for every element sibling after an insert or
        remove."""
        position = 0
        for child in parent.children:
            if isinstance(child, Element):
                position += 1
                table = self._tables.get(child.tag)
                if table is not None:
                    table.set_pos(child, position)

    @requires_lock("self.document._lock")
    def _refresh_ancestors(self, parent: Element | None) -> None:
        """Value columns and index keys of the ancestor chain.

        An inserted/removed subtree (or text node) can change inlined
        text values (``rev/name``) and downpath keys of ancestors — but
        only of ancestors whose tag chain down to the mutation parent
        spells a prefix of the column's/index's downpath
        (:func:`~repro.relational.columns.chain_reaches`).  Everything
        else is skipped: an inserted ``sub`` subtree cannot change a
        ``track``'s ``name/text()`` keys.
        """
        chain: tuple[str, ...] = ()
        current = parent
        while current is not None:
            table = self._tables.get(current.tag)
            if table is not None and any(
                    chain_reaches(steps, chain)
                    for steps in table.value_steps):
                table.refresh_values(current)
            for index in self._indexes_for(current.tag):
                if chain_reaches(index.steps, chain):
                    index.rekey(current)
            chain = (current.tag,) + chain
            current = current.parent

    # -- verification ----------------------------------------------------

    def verify(self) -> list[str]:
        """Compare every materialized structure against a cold rebuild.

        Returns a list of problem descriptions (empty = consistent).
        Used by the faultcheck invariant battery: after a workload with
        injected crashes, the incrementally-maintained columns must
        equal what a from-scratch build over the final DOM produces —
        and predicate tables must equal a cold re-shred.
        """
        problems: list[str] = []
        with self.document._lock:
            self._validate()
            for tag, table in self._tables.items():
                cold = self._build_table(tag)
                if sorted(table.rows()) != sorted(cold.rows()):
                    problems.append(
                        f"table {tag!r} drifted from a cold rebuild")
                if table.predicate is not None and self.relational \
                        is not None:
                    shredded = sorted(
                        row for fact_tag, row in
                        iter_facts(self.document, self.relational)
                        if fact_tag == tag)
                    if sorted(table.rows()) != shredded:
                        problems.append(
                            f"table {tag!r} drifted from a cold re-shred")
            for (tag, steps), index in self._indexes.items():
                cold_index = self._build_index(tag, steps)
                if index.atoms_of != cold_index.atoms_of:
                    problems.append(
                        f"index {tag!r}/{_path_text(steps)} drifted "
                        "from a cold rebuild (atoms)")
                elif _bucket_ids(index) != _bucket_ids(cold_index):
                    problems.append(
                        f"index {tag!r}/{_path_text(steps)} drifted "
                        "from a cold rebuild (buckets)")
        return problems


def _bucket_ids(index: PathIndex) -> dict[tuple, frozenset]:
    return {key: frozenset(bucket)
            for key, bucket in index.buckets.items() if bucket}


def _path_text(steps: Downpath) -> str:
    return "/".join(nodetest if axis == "child" else f"@{nodetest}"
                    for axis, nodetest in steps)


def attach(document: Document,
           relational: "RelationalSchema | None" = None) -> ColumnStore:
    """Attach (or reuse) the column store of a document.

    An existing store is reused when its relational schema is the same
    or equivalent (``describe()``-equal); otherwise it is replaced —
    two guards over the same store with different schemas would
    disagree about value columns, and the later attachment wins.

    A *frozen* document (a published snapshot clone) gets its store
    without a mutation listener: structural mutation raises on frozen
    documents, so the delta path can never run, and the eager
    :meth:`ColumnStore.warm` below means snapshot readers find the
    columns already materialized at the clone's (final) revision —
    the store is permanently bound to that snapshot version.
    """
    with document._lock:
        store = document.column_store
        if isinstance(store, ColumnStore):
            if store.relational is relational:
                return store
            if relational is not None and store.relational is not None \
                    and store.relational.describe() \
                    == relational.describe():
                return store
            if relational is None:
                return store
            detach(document)
        store = ColumnStore(document, relational)
        if not document.frozen:
            document._mutation_listeners.append(store._on_mutation)
        document.column_store = store
    store.warm()
    return store


def detach(document: Document) -> None:
    """Remove the document's column store and its listener."""
    with document._lock:
        store = document.column_store
        if not isinstance(store, ColumnStore):
            return
        document._mutation_listeners[:] = [
            listener for listener in document._mutation_listeners
            if listener != store._on_mutation]
        document.column_store = None


def store_of(document: Document) -> ColumnStore | None:
    """The attached column store, if any."""
    store = document.column_store
    return store if isinstance(store, ColumnStore) else None


def settle_batch(documents: Iterable[Document]) -> None:
    """Batch-boundary settling: eagerly rebuild dirty stores.

    Called from ``IntegrityGuard.check_batch`` after the batch scope
    settles, so a batch whose deltas crashed mid-maintenance pays its
    rebuild once here instead of on the first post-batch check.  The
    ``columns.batch.settle`` failpoint injects crashes at this
    boundary; a fault simply leaves the store dirty (self-healing).
    """
    fail.point("columns.batch.settle")
    for document in documents:
        store = store_of(document)
        if store is not None:
            store.settle()
