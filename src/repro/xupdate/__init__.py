"""XUpdate: the update language of the paper (section 4.1).

Updates are expressed as XUpdate modification documents
(``xupdate:insert-after``, ``insert-before``, ``append``, ``remove``)
whose content is built from ``xupdate:element`` / ``xupdate:text``
constructors or literal XML.  This package provides:

* :mod:`repro.xupdate.parser` — parsing modification documents into
  operation objects;
* :mod:`repro.xupdate.apply` — executing operations on a document, with
  inverse operations for rollback (the compensating action of the
  evaluation section);
* :mod:`repro.xupdate.analyze` — the static side of section 4.1:
  deriving the *relational update pattern* of an operation (parametric
  atoms, fresh-identifier set, parameter binder) so the simplification
  framework can specialize constraints for it at schema design time and
  instantiate them at update time.
"""

from repro.xupdate.parser import (
    InsertOperation,
    Operation,
    RemoveOperation,
    canonical_update_text,
    parse_modifications,
    serialize_operation,
    serialize_operations,
)
from repro.xupdate.apply import (
    AppliedOperation,
    TransactionLog,
    apply_operation,
    apply_text,
)
from repro.xupdate.analyze import (
    AnalyzedUpdate,
    UpdateSignature,
    analyze_operation,
)

__all__ = [
    "InsertOperation",
    "Operation",
    "RemoveOperation",
    "canonical_update_text",
    "parse_modifications",
    "serialize_operation",
    "serialize_operations",
    "AppliedOperation",
    "TransactionLog",
    "apply_operation",
    "apply_text",
    "AnalyzedUpdate",
    "UpdateSignature",
    "analyze_operation",
]
