"""Executing XUpdate operations on a document, with rollback support.

The evaluation section of the paper compares the optimized strategy
(check first, then apply) against the brute-force one (apply, check,
roll back on violation); rollbacks are "simulated by performing a
compensating action" — here the exact inverse operation recorded by
:class:`AppliedOperation`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import UpdateApplicationError
from repro.xquery.ast import Expression
from repro.xquery.engine import evaluate_query
from repro.xquery.parser import parse_query
from repro.xtree.node import Document, Element, Node
from repro.xupdate.parser import (
    InsertOperation,
    Operation,
    RemoveOperation,
    parse_modifications,
)


@dataclass
class AppliedOperation:
    """The result of one executed operation, undoable via
    :meth:`rollback`."""

    document: Document
    #: nodes inserted (attached), in insertion order
    inserted: list[Node]
    #: (parent, index, node) triples for removed nodes
    removed: list[tuple[Element, int, Node]]
    rolled_back: bool = False

    def rollback(self) -> None:
        """Undo the operation (compensating action)."""
        if self.rolled_back:
            raise UpdateApplicationError("operation already rolled back")
        for node in reversed(self.inserted):
            parent = node.parent
            if parent is None:
                raise UpdateApplicationError(
                    "inserted node already detached; cannot roll back")
            parent.remove(node)
        for parent, index, node in reversed(self.removed):
            parent.insert(index, node)
        self.rolled_back = True


#: select text → parsed path, LRU-bounded.  Selects repeat heavily
#: (every update against the same anchor re-resolves the same path) and
#: parsing them per operation is the last run-time lexing the guard
#: would otherwise do.
_SELECT_CACHE: "OrderedDict[str, Expression]" = OrderedDict()
_SELECT_CACHE_CAPACITY = 512


def parsed_select(select: str) -> Expression:
    """The (cached) parse of a select path."""
    expression = _SELECT_CACHE.get(select)
    if expression is None:
        expression = parse_query(select)
        _SELECT_CACHE[select] = expression
        if len(_SELECT_CACHE) > _SELECT_CACHE_CAPACITY:
            _SELECT_CACHE.popitem(last=False)
    else:
        _SELECT_CACHE.move_to_end(select)
    return expression


def resolve_select(document: Document, select: str) -> Element:
    """Resolve a select path to a single element of the document."""
    result = evaluate_query(parsed_select(select), document)
    elements = [item for item in result if isinstance(item, Element)]
    if not elements:
        raise UpdateApplicationError(
            f"select {select!r} matches no element")
    return elements[0]


def apply_operation(document: Document,
                    operation: Operation) -> AppliedOperation:
    """Execute one operation and return its undo record."""
    if isinstance(operation, InsertOperation):
        return _apply_insert(document, operation)
    assert isinstance(operation, RemoveOperation)
    return _apply_remove(document, operation)


def _apply_insert(document: Document,
                  operation: InsertOperation) -> AppliedOperation:
    anchor = resolve_select(document, operation.select)
    content = [_deep_copy(node) for node in operation.content]
    inserted: list[Node] = []
    if operation.kind == "append":
        for node in content:
            anchor.append(node)
            inserted.append(node)
    else:
        parent = anchor.parent
        if parent is None:
            raise UpdateApplicationError(
                "cannot insert a sibling of the document root")
        reference: Node = anchor
        if operation.kind == "before":
            for node in content:
                parent.insert_before(reference, node)
                inserted.append(node)
        else:
            for node in content:
                parent.insert_after(reference, node)
                inserted.append(node)
                reference = node
    return AppliedOperation(document, inserted, [])


def _apply_remove(document: Document,
                  operation: RemoveOperation) -> AppliedOperation:
    target = resolve_select(document, operation.select)
    parent = target.parent
    if parent is None:
        raise UpdateApplicationError("cannot remove the document root")
    index = parent.children.index(target)
    parent.remove(target)
    return AppliedOperation(document, [], [(parent, index, target)])


def apply_text(document: Document, text: str) -> list[AppliedOperation]:
    """Parse and execute a whole modification document."""
    applied: list[AppliedOperation] = []
    try:
        for operation in parse_modifications(text):
            applied.append(apply_operation(document, operation))
    except Exception:
        for record in reversed(applied):
            record.rollback()
        raise
    return applied


def _deep_copy(node: Node) -> Node:
    """Copy a detached content tree so operations can be re-applied."""
    from repro.xtree.node import Text
    if isinstance(node, Text):
        return Text(node.value)
    assert isinstance(node, Element)
    copy = Element(node.tag, dict(node.attributes))
    for child in node.children:
        copy.append(_deep_copy(child))
    return copy
