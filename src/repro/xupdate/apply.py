"""Executing XUpdate operations on a document, with rollback support.

The evaluation section of the paper compares the optimized strategy
(check first, then apply) against the brute-force one (apply, check,
roll back on violation); rollbacks are "simulated by performing a
compensating action" — here the exact inverse operation recorded by
:class:`AppliedOperation`.

Multi-operation updates are made atomic by :class:`TransactionLog`,
which generalizes one undo record to a whole sequence: every path that
applies more than one operation runs inside a log, and any exception —
failed select, malformed content, violation mid-probe — restores the
exact pre-call state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.analysis.concurrency import make_lock
from repro.errors import AmbiguousSelectError, UpdateApplicationError
from repro.testing.failpoints import fail
from repro.xquery.ast import Expression, Literal, PathExpr
from repro.xquery.engine import evaluate_query
from repro.xquery.parser import parse_query
from repro.xtree.node import Document, Element, Node
from repro.xupdate.parser import (
    InsertOperation,
    Operation,
    RemoveOperation,
    parse_modifications,
)


@dataclass
class AppliedOperation:
    """The result of one executed operation, undoable via
    :meth:`rollback`."""

    document: Document
    #: nodes inserted (attached), in insertion order
    inserted: list[Node]
    #: (parent, index, node) triples for removed nodes
    removed: list[tuple[Element, int, Node]]
    rolled_back: bool = False

    def rollback(self) -> None:
        """Undo the operation (compensating action)."""
        if self.rolled_back:
            raise UpdateApplicationError("operation already rolled back")
        for node in reversed(self.inserted):
            parent = node.parent
            if parent is None:
                raise UpdateApplicationError(
                    "inserted node already detached; cannot roll back")
            parent.remove(node)
        for parent, index, node in reversed(self.removed):
            parent.insert(index, node)
        self.rolled_back = True


class TransactionLog:
    """Undo log making a multi-operation update atomic.

    Generalizes a single :class:`AppliedOperation` to a sequence: each
    :meth:`apply` executes one operation and records its undo record,
    and :meth:`rollback` undoes the whole sequence newest-first.  Used
    as a context manager the log is *abort-by-default*: leaving the
    block without :meth:`commit` — an exception, or a deliberate
    apply-check-rollback probe — restores the exact pre-transaction
    state.  Each undo record is rolled back at most once, whichever
    combination of explicit and exit-time rollback runs.
    """

    def __init__(self) -> None:
        self._records: list[AppliedOperation] = []
        self._state = "open"

    @property
    def records(self) -> list[AppliedOperation]:
        """The undo records recorded so far (a copy)."""
        return list(self._records)

    @property
    def state(self) -> str:
        """``"open"``, ``"committed"`` or ``"rolled-back"``."""
        return self._state

    def __len__(self) -> int:
        return len(self._records)

    def apply(self, document: Document,
              operation: Operation) -> AppliedOperation:
        """Execute one operation and record its undo record."""
        self._require_open()
        fail.point("xupdate.apply.pre_op")
        record = apply_operation(document, operation)
        self._records.append(record)
        fail.point("xupdate.apply.post_op")
        return record

    def record(self, record: AppliedOperation) -> AppliedOperation:
        """Adopt an operation that was applied outside the log."""
        self._require_open()
        self._records.append(record)
        return record

    def commit(self) -> None:
        """Keep the applied operations; rollback becomes impossible."""
        self._require_open()
        self._state = "committed"

    def rollback(self) -> None:
        """Undo every recorded operation, newest first."""
        self._require_open()
        self._abort()

    def _require_open(self) -> None:
        if self._state != "open":
            raise UpdateApplicationError(
                f"transaction already {self._state}")

    def _abort(self) -> None:
        fail.point("xupdate.rollback.pre")
        for record in reversed(self._records):
            if not record.rolled_back:
                record.rollback()
        self._state = "rolled-back"
        fail.point("xupdate.rollback.post")

    def __enter__(self) -> "TransactionLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state == "open":
            try:
                self._abort()
            except Exception:
                # An abort interrupted mid-compensation (a transient
                # fault) is retried once: each undo record rolls back
                # at most once, so the retry resumes where the first
                # attempt stopped instead of compensating twice.  A
                # retry that fails too propagates — the state is then
                # genuinely unrecoverable in-process.
                if self._state == "open":
                    self._abort()
                raise
        return False


#: select text → parsed path, LRU-bounded.  Selects repeat heavily
#: (every update against the same anchor re-resolves the same path) and
#: parsing them per operation is the last run-time lexing the guard
#: would otherwise do.  Lock-protected: concurrent readers of a shared
#: DocumentStore resolve selects outside the writer lock.
_SELECT_CACHE: "OrderedDict[str, Expression]" = \
    OrderedDict()  # guarded-by: _SELECT_CACHE_LOCK
_SELECT_CACHE_CAPACITY = 512
_SELECT_CACHE_LOCK = make_lock("xupdate.select_cache")


def parsed_select(select: str) -> Expression:
    """The (cached) parse of a select path."""
    with _SELECT_CACHE_LOCK:
        expression = _SELECT_CACHE.get(select)
        if expression is not None:
            _SELECT_CACHE.move_to_end(select)
            return expression
    expression = parse_query(select)
    with _SELECT_CACHE_LOCK:
        _SELECT_CACHE[select] = expression
        if len(_SELECT_CACHE) > _SELECT_CACHE_CAPACITY:
            _SELECT_CACHE.popitem(last=False)
    return expression


def _positional(items: list[Element],
                predicates: tuple) -> list[Element]:
    for predicate in predicates:
        index = predicate.value
        items = [items[index - 1]] if 1 <= index <= len(items) else []
    return items


def _columnar_resolve(document: Document,
                      expression: Expression) -> "list[Element] | None":
    """Resolve a simple select through the document's column store.

    Covers the dominant select shape — an absolute child-step path
    with integer positional predicates (``/review/track[2]/rev[5]``) —
    by walking the store's per-tag child groups and ``Pos`` columns
    instead of the generic engine.  Returns ``None`` (engine fallback)
    for anything outside that fragment, when no store is attached, or
    when the columnar backend is disabled.
    """
    from repro.xquery import planner as _planner
    if not _planner.columnar_enabled():
        return None
    store = document.column_store
    if store is None:
        return None
    if not isinstance(expression, PathExpr) or expression.start is not None \
            or any(expression.descendant_flags) or not expression.steps:
        return None
    for step in expression.steps:
        if step.axis != "child" or step.nodetest in (
                "*", "text()", "node()", "position()"):
            return None
        for predicate in step.predicates:
            if not (isinstance(predicate, Literal)
                    and isinstance(predicate.value, int)
                    and not isinstance(predicate.value, bool)):
                return None
    first = expression.steps[0]
    root = document.root
    current = [root] if root.tag == first.nodetest else []
    current = _positional(current, first.predicates)
    try:
        for step in expression.steps[1:]:
            if not current:
                break
            table = store.table(step.nodetest)
            groups = table.children_groups()
            row_of = table.row_of
            pos = table.pos
            gathered: list[Element] = []
            for element in current:
                kids = groups.get(element.node_id or -1)
                if not kids:
                    continue
                if len(kids) > 1:
                    kids = sorted(
                        kids, key=lambda kid: pos[row_of[kid.node_id]])
                gathered.extend(_positional(list(kids), step.predicates))
            current = gathered
    except Exception:
        return None  # degrade to the engine on any store trouble
    return current


def resolve_select(document: Document, select: str) -> Element:
    """Resolve a select path to a single element of the document.

    A select matching more than one element is rejected: silently
    mutating only the first match would make the applied update depend
    on document order the caller never sees.
    """
    expression = parsed_select(select)
    elements = _columnar_resolve(document, expression)
    if elements is None:
        result = evaluate_query(expression, document)
        elements = [item for item in result
                    if isinstance(item, Element)]
    if not elements:
        raise UpdateApplicationError(
            f"select {select!r} matches no element")
    if len(elements) > 1:
        raise AmbiguousSelectError(
            f"select {select!r} is ambiguous: it matches "
            f"{len(elements)} elements; qualify the path (e.g. with "
            "positional predicates) until exactly one matches")
    return elements[0]


def apply_operation(document: Document,
                    operation: Operation) -> AppliedOperation:
    """Execute one operation and return its undo record."""
    if isinstance(operation, InsertOperation):
        return _apply_insert(document, operation)
    assert isinstance(operation, RemoveOperation)
    return _apply_remove(document, operation)


def _apply_insert(document: Document,
                  operation: InsertOperation) -> AppliedOperation:
    anchor = resolve_select(document, operation.select)
    content = [_deep_copy(node) for node in operation.content]
    inserted: list[Node] = []
    if operation.kind == "append":
        for node in content:
            anchor.append(node)
            inserted.append(node)
    else:
        parent = anchor.parent
        if parent is None:
            raise UpdateApplicationError(
                "cannot insert a sibling of the document root")
        reference: Node = anchor
        if operation.kind == "before":
            for node in content:
                parent.insert_before(reference, node)
                inserted.append(node)
        else:
            for node in content:
                parent.insert_after(reference, node)
                inserted.append(node)
                reference = node
    return AppliedOperation(document, inserted, [])


def _apply_remove(document: Document,
                  operation: RemoveOperation) -> AppliedOperation:
    target = resolve_select(document, operation.select)
    parent = target.parent
    if parent is None:
        raise UpdateApplicationError("cannot remove the document root")
    index = parent.children.index(target)
    parent.remove(target)
    return AppliedOperation(document, [], [(parent, index, target)])


def apply_text(document: Document, text: str) -> list[AppliedOperation]:
    """Parse and execute a whole modification document, atomically."""
    log = TransactionLog()
    with log:
        for operation in parse_modifications(text):
            log.apply(document, operation)
        log.commit()
    return log.records


def _deep_copy(node: Node) -> Node:
    """Copy a detached content tree so operations can be re-applied."""
    from repro.xtree.node import Text
    if isinstance(node, Text):
        return Text(node.value)
    assert isinstance(node, Element)
    copy = Element(node.tag, dict(node.attributes))
    for child in node.children:
        copy.append(_deep_copy(child))
    return copy
