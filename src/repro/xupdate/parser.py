"""Parsing XUpdate modification documents.

The accepted form follows the XUpdate working draft used by the paper::

    <xupdate:modifications version="1.0"
        xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:insert-after select="/review/track[2]/rev[5]/sub[6]">
        <xupdate:element name="sub">
          <title> Taming Web Services </title>
          <auts><name> Jack </name></auts>
        </xupdate:element>
      </xupdate:insert-after>
    </xupdate:modifications>

Content may mix ``xupdate:element``/``xupdate:text``/``xupdate:attribute``
constructors with literal XML elements, as in the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import XUpdateError
from repro.xtree.node import Element, Node, Text
from repro.xtree.parser import parse_document

_PREFIX = "xupdate:"

_INSERT_KINDS = {
    "insert-after": "after",
    "insert-before": "before",
    "append": "append",
}


@dataclass(frozen=True)
class InsertOperation:
    """An insertion: ``kind`` is ``after``, ``before`` or ``append``.

    ``content`` holds detached nodes (deep copies independent from the
    source document); ``select`` is the XPath of the anchor node — the
    sibling for ``after``/``before``, the parent for ``append``.
    """

    kind: str
    select: str
    content: tuple[Node, ...]

    def primary_element(self) -> Element:
        """The first inserted element (the pattern's root node)."""
        for node in self.content:
            if isinstance(node, Element):
                return node
        raise XUpdateError("insertion content contains no element")


@dataclass(frozen=True)
class RemoveOperation:
    select: str


Operation = Union[InsertOperation, RemoveOperation]

_KIND_TAGS = {kind: tag for tag, kind in _INSERT_KINDS.items()}


def _escape_select(value: str) -> str:
    return (value.replace("&", "&amp;")
            .replace("<", "&lt;")
            .replace('"', "&quot;"))


def serialize_operation(operation: Operation) -> str:
    """Canonical XUpdate text of one parsed operation.

    The output round-trips: ``parse_modifications(serialize_operation
    (op))`` yields an operation with the same select, kind and content
    tree, and applying either to twin documents produces identical
    results.  This — not ``str(op)``, which is the dataclass repr — is
    the canonical form the service commit log, the harness invariants
    and the write-ahead record encoding all share.
    """
    return serialize_operations([operation])


def serialize_operations(operations: "list[Operation]") -> str:
    """Canonical XUpdate modification document for a whole sequence."""
    if not operations:
        raise XUpdateError("cannot serialize an empty operation list")
    from repro.xtree.serializer import serialize_fragment
    parts = ['<?xml version="1.0"?>',
             '<xupdate:modifications version="1.0"',
             '    xmlns:xupdate="http://www.xmldb.org/xupdate">']
    for operation in operations:
        if isinstance(operation, RemoveOperation):
            parts.append(f'<xupdate:remove select='
                         f'"{_escape_select(operation.select)}"/>')
            continue
        assert isinstance(operation, InsertOperation)
        tag = f"xupdate:{_KIND_TAGS[operation.kind]}"
        content = "".join(serialize_fragment(node)
                          for node in operation.content)
        parts.append(f'<{tag} select='
                     f'"{_escape_select(operation.select)}">'
                     f'{content}</{tag}>')
    parts.append("</xupdate:modifications>")
    return "\n".join(parts)


def canonical_update_text(update: "str | Operation") -> str:
    """The canonical text of an update, whatever form it arrived in.

    Update texts pass through unchanged (they are already canonical
    for logging/replay purposes: re-parsing them yields the same
    operations); parsed operations are serialized back to XUpdate.
    """
    if isinstance(update, str):
        return update
    return serialize_operation(update)


def parse_modifications(text: str) -> list[Operation]:
    """Parse an XUpdate document into a list of operations."""
    document = parse_document(text)
    root = document.root
    if _local(root.tag) != "modifications":
        raise XUpdateError(
            f"expected <xupdate:modifications>, found <{root.tag}>")
    operations: list[Operation] = []
    for child in root.element_children():
        local = _local(child.tag)
        if local in _INSERT_KINDS:
            operations.append(_parse_insert(child, _INSERT_KINDS[local]))
        elif local == "remove":
            operations.append(RemoveOperation(_select_of(child)))
        else:
            raise XUpdateError(f"unsupported operation <{child.tag}>")
    if not operations:
        raise XUpdateError("modification document contains no operations")
    return operations


def _local(tag: str) -> str:
    return tag[len(_PREFIX):] if tag.startswith(_PREFIX) else tag


def _select_of(element: Element) -> str:
    select = element.attributes.get("select")
    if not select:
        raise XUpdateError(
            f"<{element.tag}> needs a non-empty select attribute")
    return select


def _parse_insert(element: Element, kind: str) -> InsertOperation:
    select = _select_of(element)
    content = tuple(_build_content(child) for child in element.children
                    if _is_significant(child))
    if not content:
        raise XUpdateError(f"<{element.tag}> has no content to insert")
    return InsertOperation(kind, select, content)


def _is_significant(node: Node) -> bool:
    return isinstance(node, Element) or (
        isinstance(node, Text) and bool(node.value.strip()))


def _build_content(node: Node) -> Node:
    """Turn a content node into a detached node to insert.

    ``xupdate:element`` constructors become elements named by their
    ``name`` attribute; ``xupdate:text`` becomes a text node; literal
    XML is deep-copied.
    """
    if isinstance(node, Text):
        return Text(node.value.strip())
    assert isinstance(node, Element)
    local = _local(node.tag)
    if node.tag.startswith(_PREFIX):
        if local == "element":
            name = node.attributes.get("name")
            if not name:
                raise XUpdateError("xupdate:element needs a name attribute")
            built = Element(name)
            for child in node.children:
                if isinstance(child, Element) \
                        and _local(child.tag) == "attribute" \
                        and child.tag.startswith(_PREFIX):
                    attribute = child.attributes.get("name")
                    if not attribute:
                        raise XUpdateError(
                            "xupdate:attribute needs a name attribute")
                    built.attributes[attribute] = child.text().strip()
                elif _is_significant(child):
                    _attach_content(built, child)
            return built
        if local == "text":
            return Text(node.text())
        raise XUpdateError(f"unsupported content constructor <{node.tag}>")
    copy = Element(node.tag, dict(node.attributes))
    for child in node.children:
        if isinstance(child, Text):
            copy.append(Text(child.value.strip()))
        elif _is_significant(child):
            _attach_content(copy, child)
    return copy


def _attach_content(parent: Element, node: Node) -> None:
    parent.append(_build_content(node))
