"""Static analysis of XUpdate insertions (the update mapping of §4.1).

An insertion is mapped to a *relational update pattern*: one parametric
atom per created node, with

* a fresh-identifier parameter for each new node (``is``, ``ia``);
* a position parameter per node (``ps``, ``pa``);
* a node parameter for the existing parent of the inserted fragment
  (``ir``) — the only reference into the current document;
* a value parameter per inlined text child / attribute present in the
  fragment (``t``, ``n``).

Parameter names follow the paper's convention: ``i``/``p`` plus the
first letter of the node type, and the first letter of the column tag
for values (collisions get longer names).

The *signature* (operation kind, parent node type, fragment shape)
identifies the pattern class: two concrete updates with the same
signature share the same simplified constraints, instantiated with
different parameter bindings — the run-time pattern recognition of
footnote 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.atoms import Atom
from repro.datalog.denial import Denial
from repro.datalog.terms import Constant, Parameter, Term
from repro.errors import SimplificationError, XUpdateError
from repro.relational.schema import RelationalSchema
from repro.simplify.update import UpdatePattern, freshness_hypotheses
from repro.xtree.node import Document, Element
from repro.xupdate.apply import resolve_select
from repro.xupdate.parser import InsertOperation, Operation, RemoveOperation


@dataclass(frozen=True)
class UpdateSignature:
    """What makes two updates instances of the same pattern."""

    kind: str  # "after" | "before" | "append"
    parent_tag: str
    shape: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.parent_tag}/{self.shape}"


#: binder specs: ("node", "parent") | ("position", index) |
#: ("value", index, column_source)
BindingSpec = tuple


@dataclass
class AnalyzedUpdate:
    """The design-time artifact for one insertion pattern."""

    signature: UpdateSignature
    pattern: UpdatePattern
    hypotheses: list[Denial]
    binding_specs: dict[str, BindingSpec]

    def bind(self, document: Document,
             operation: InsertOperation) -> dict[str, object]:
        """Parameter bindings for a concrete operation on ``document``.

        Only parameters that refer to the *present* state are bound:
        the parent node, positions and values.  Fresh identifiers are
        not bindable before execution (and, by construction, never
        survive into optimized checks).
        """
        anchor = resolve_select(document, operation.select)
        if operation.kind == "append":
            parent: Element | None = anchor
            base_position = len(anchor.element_children()) + 1
        else:
            parent = anchor.parent
            if parent is None:
                raise XUpdateError(
                    "cannot insert a sibling of the document root")
            base_position = anchor.child_position \
                + (1 if operation.kind == "after" else 0)
        elements = _fragment_elements(operation)
        bindings: dict[str, object] = {}
        for name, spec in self.binding_specs.items():
            if spec[0] == "node":
                bindings[name] = parent
            elif spec[0] == "position":
                index = spec[1]
                element = elements[index]
                if element.parent is None:
                    # a top-level fragment element: position depends on
                    # the insertion point
                    offset = [e for e in elements if e.parent is None
                              ].index(element)
                    bindings[name] = base_position + offset
                else:
                    bindings[name] = element.child_position
            else:
                assert spec[0] == "value"
                index, source = spec[1], spec[2]
                element = elements[index]
                if source.startswith("@"):
                    bindings[name] = element.attributes.get(source[1:], "")
                elif source == "#text":
                    bindings[name] = element.text()
                else:
                    child = element.first_child(source)
                    bindings[name] = "" if child is None else child.text()
        return bindings


def analyze_operation(operation: Operation,
                      schema: RelationalSchema) -> AnalyzedUpdate:
    """Derive signature, pattern, Δ and binder for an insertion.

    Deletions raise :class:`repro.errors.SimplificationError`: the
    paper's framework (and ours) simplifies w.r.t. insertions — XML
    documents typically grow — so deletions take the brute-force path.
    """
    if isinstance(operation, RemoveOperation):
        raise SimplificationError(
            "deletions are not simplified; use the brute-force checker")
    assert isinstance(operation, InsertOperation)
    parent_tag = _static_parent_tag(operation, schema)
    builder = _PatternBuilder(schema, parent_tag)
    for element in operation.content:
        if isinstance(element, Element):
            builder.add_top_level(element)
    if not builder.atoms:
        raise SimplificationError(
            "the inserted fragment creates no relational tuples")
    shape = "+".join(
        _shape_of(element, schema) for element in operation.content
        if isinstance(element, Element))
    signature = UpdateSignature(operation.kind, parent_tag, shape)
    pattern = UpdatePattern(tuple(builder.atoms),
                            frozenset(builder.fresh),
                            name=str(signature))
    hypotheses = freshness_hypotheses(pattern, schema)
    return AnalyzedUpdate(signature, pattern, hypotheses,
                          builder.binding_specs)


def signature_of(operation: Operation,
                 schema: RelationalSchema) -> UpdateSignature:
    """The signature of a concrete operation (for pattern lookup)."""
    if isinstance(operation, RemoveOperation):
        raise SimplificationError("deletions have no insertion signature")
    assert isinstance(operation, InsertOperation)
    parent_tag = _static_parent_tag(operation, schema)
    shape = "+".join(
        _shape_of(element, schema) for element in operation.content
        if isinstance(element, Element))
    return UpdateSignature(operation.kind, parent_tag, shape)


def fragment_elements(operation: InsertOperation) -> list[Element]:
    """All fragment elements of an insertion, in binder preorder.

    Public alias used by the static analysis passes; indexes agree with
    the ``("position"/"value", index, ...)`` binding specs.
    """
    return _fragment_elements(operation)


def insertion_parent_tag(operation: InsertOperation,
                         schema: RelationalSchema) -> str:
    """The node type the inserted fragment lands under (public alias)."""
    return _static_parent_tag(operation, schema)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _fragment_elements(operation: InsertOperation) -> list[Element]:
    """All fragment elements in preorder (over every content item)."""
    elements: list[Element] = []
    for node in operation.content:
        if isinstance(node, Element):
            elements.extend(node.iter_elements())
    return elements


def _static_parent_tag(operation: InsertOperation,
                       schema: RelationalSchema) -> str:
    """The node type under which the fragment lands, from the select."""
    anchor_tag = _last_select_tag(operation.select)
    if operation.kind == "append":
        return anchor_tag
    if schema.is_root(anchor_tag):
        raise XUpdateError("cannot insert a sibling of the document root")
    parents = schema.parents_of(anchor_tag)
    if len(parents) != 1:
        raise XUpdateError(
            f"parent of {anchor_tag!r} is ambiguous in the schema: "
            f"{parents}")
    return parents[0]


def _last_select_tag(select: str) -> str:
    last = select.rstrip("/").split("/")[-1]
    tag = last.split("[")[0].strip()
    if not tag or tag.startswith("@") or tag in ("..", "."):
        raise XUpdateError(
            f"cannot determine the target node type of select {select!r}")
    return tag


def _shape_of(element: Element, schema: RelationalSchema) -> str:
    children = ",".join(
        _shape_of(child, schema) for child in element.element_children())
    attributes = "".join(
        f"@{name}" for name in sorted(element.attributes))
    inner = children + attributes
    return f"{element.tag}({inner})" if inner else element.tag


class _PatternBuilder:
    """Builds the pattern atoms, walking fragments in the same preorder
    as :func:`_fragment_elements` so binder indexes line up."""

    def __init__(self, schema: RelationalSchema, parent_tag: str) -> None:
        self.schema = schema
        self.parent_tag = parent_tag
        self.atoms: list[Atom] = []
        self.fresh: set[Parameter] = set()
        self.binding_specs: dict[str, BindingSpec] = {}
        self._used_names: set[str] = set()
        self._counter = 0
        self._parent_parameter: Parameter | None = None

    def _name(self, base: str, full: str) -> str:
        candidates = [base, full]
        suffix = 2
        for candidate in candidates:
            if candidate not in self._used_names:
                self._used_names.add(candidate)
                return candidate
        while f"{full}{suffix}" in self._used_names:
            suffix += 1
        name = f"{full}{suffix}"
        self._used_names.add(name)
        return name

    def parent_parameter(self) -> Parameter:
        if self._parent_parameter is None:
            name = self._name("i" + self.parent_tag[0],
                              "i_" + self.parent_tag)
            self._parent_parameter = Parameter(name)
            self.binding_specs[name] = ("node", "parent")
        return self._parent_parameter

    def add_top_level(self, element: Element) -> None:
        self._add_element(element, self.parent_tag, None)

    def _add_element(self, element: Element, parent_tag: str,
                     parent_id: Parameter | None) -> None:
        tag = element.tag
        index = self._counter
        self._counter += 1
        if self.schema.is_inlined(parent_tag, tag):
            # carried as a column of the parent's atom; text-only, so it
            # has no element descendants to enumerate
            return
        if not self.schema.has_predicate(tag):
            raise XUpdateError(
                f"inserted element <{tag}> is unknown to the schema")
        predicate = self.schema.predicate_for(tag)
        if parent_tag not in predicate.parent_tags \
                and not self.schema.is_root(parent_tag):
            raise XUpdateError(
                f"<{tag}> cannot occur under <{parent_tag}>")
        id_name = self._name("i" + tag[0], "i_" + tag)
        id_param = Parameter(id_name)
        self.fresh.add(id_param)
        pos_name = self._name("p" + tag[0], "p_" + tag)
        pos_param = Parameter(pos_name)
        self.binding_specs[pos_name] = ("position", index)
        if parent_id is not None:
            parent_term: Term = parent_id
        else:
            parent_term = self.parent_parameter()
        args: list[Term] = [id_param, pos_param, parent_term]
        for column in predicate.value_columns():
            args.append(self._column_term(element, column, index))
        self.atoms.append(Atom(tag, tuple(args)))
        for child in element.element_children():
            self._add_element(child, tag, id_param)

    def _column_term(self, element: Element, column,
                     index: int) -> Term:
        if column.kind == "text_child":
            child = element.first_child(column.source or "")
            if child is None:
                return Constant(None)
            name = self._name(column.source[0], column.source)
            self.binding_specs[name] = ("value", index, column.source)
            return Parameter(name)
        if column.kind == "attribute":
            if (column.source or "") not in element.attributes:
                return Constant(None)
            name = self._name(column.source[0], "a_" + column.source)
            self.binding_specs[name] = ("value", index, "@" + column.source)
            return Parameter(name)
        assert column.kind == "text"
        name = self._name("x" + element.tag[0], "x_" + element.tag)
        self.binding_specs[name] = ("value", index, "#text")
        return Parameter(name)


# ---------------------------------------------------------------------------
# Transactions (deferred checking for multi-operation documents)
# ---------------------------------------------------------------------------

@dataclass
class AnalyzedTransaction:
    """A multi-insertion transaction as one update pattern (Def. 2).

    The paper's updates are *sets* of added tuples, and checking is
    deferred — constraints need not hold in intermediate states.  A
    modification document with several ``append`` operations is
    analyzed as the union of the per-operation patterns (parameters
    renamed apart), so ``Simp`` specializes the constraints w.r.t. the
    whole transaction and the guard checks it once, before executing
    anything.
    """

    signatures: tuple[UpdateSignature, ...]
    pattern: UpdatePattern
    hypotheses: list[Denial]
    parts: list[tuple[AnalyzedUpdate, dict[str, str]]]

    def bind(self, documents: "list[Document]",
             operations: list[InsertOperation],
             resolve_document) -> dict[str, object]:
        """Combined parameter bindings for the concrete operations.

        Positions of later appends to the *same* parent are shifted by
        the number of earlier appends targeting it, since all bindings
        are computed against the pre-transaction state.
        """
        if len(operations) != len(self.parts):
            raise XUpdateError(
                "transaction shape does not match the analyzed pattern")
        bindings: dict[str, object] = {}
        appended_so_far: dict[int, int] = {}  # parent node id → count
        for operation, (analyzed, renaming) in zip(operations, self.parts):
            document = resolve_document(operation)
            local = analyzed.bind(document, operation)
            from repro.xupdate.apply import resolve_select
            parent = resolve_select(document, operation.select)
            offset = appended_so_far.get(parent.node_id or -1, 0)
            top_level = sum(
                1 for node in operation.content
                if isinstance(node, Element))
            for name, value in local.items():
                renamed = renaming.get(name, name)
                spec = analyzed.binding_specs.get(name)
                if offset and spec and spec[0] == "position":
                    index = spec[1]
                    element = _fragment_elements(operation)[index]
                    if element.parent is None:  # a top-level fragment node
                        value = value + offset  # type: ignore[operator]
                bindings[renamed] = value
            appended_so_far[parent.node_id or -1] = offset + top_level
        return bindings


def analyze_transaction(operations: "list[Operation]",
                        schema: RelationalSchema) -> AnalyzedTransaction:
    """Analyze a multi-operation document as one insertion pattern.

    Restricted to all-``append`` transactions: their selects resolve
    against the pre-transaction state and the only structural
    interference between operations — later positions under a shared
    parent — is compensated at bind time.  Anything else raises
    :class:`repro.errors.SimplificationError` (brute-force fallback).
    """
    inserts: list[InsertOperation] = []
    for operation in operations:
        if not isinstance(operation, InsertOperation) \
                or operation.kind != "append":
            raise SimplificationError(
                "only all-append transactions are analyzed as one "
                "pattern")
        inserts.append(operation)
    if len(inserts) < 2:
        raise SimplificationError(
            "transactions need at least two operations; use "
            "analyze_operation for single updates")
    atoms: list[Atom] = []
    fresh: set[Parameter] = set()
    hypotheses: list[Denial] = []
    parts: list[tuple[AnalyzedUpdate, dict[str, str]]] = []
    signatures: list[UpdateSignature] = []
    used_names: set[str] = set()
    for index, operation in enumerate(inserts):
        analyzed = analyze_operation(operation, schema)
        signatures.append(analyzed.signature)
        renaming: dict[str, str] = {}
        for parameter in sorted(analyzed.pattern.parameters(),
                                key=lambda p: p.name):
            name = parameter.name
            candidate = name
            suffix = index + 1
            while candidate in used_names:
                candidate = f"{name}_{suffix}"
                suffix += len(inserts)
            used_names.add(candidate)
            renaming[name] = candidate
        from repro.datalog.subst import ParameterBinding
        binder = ParameterBinding({
            Parameter(old): Parameter(new)
            for old, new in renaming.items()
        })
        for atom in analyzed.pattern.additions:
            atoms.append(binder.apply_literal(atom))  # type: ignore[arg-type]
        fresh |= {Parameter(renaming[p.name])
                  for p in analyzed.pattern.fresh_parameters}
        for hypothesis in analyzed.hypotheses:
            hypotheses.append(Denial(tuple(
                binder.apply_literal(literal)
                for literal in hypothesis.body)))
        parts.append((analyzed, renaming))
    pattern = UpdatePattern(tuple(atoms), frozenset(fresh),
                            name="+".join(str(s) for s in signatures))
    return AnalyzedTransaction(tuple(signatures), pattern, hypotheses,
                               parts)
