"""Evaluator for the XQuery fragment.

Queries run against a *collection* of documents (the paper's
constraints span ``pub.xml`` and ``rev.xml``); absolute paths start at
the roots of every document in the collection, in collection order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.analysis.concurrency import guarded_by, make_lock
from repro.errors import XQueryEvaluationError
from repro.xquery import functions
from repro.xquery.ast import (
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathExpr,
    Quantified,
    SequenceExpr,
    TextLiteral,
    UnaryOp,
    VarRef,
    WhereClause,
)
from repro.xquery.parser import parse_query
from repro.xquery.values import (
    Sequence,
    UntypedAtomic,
    atomize,
    effective_boolean_value,
    general_compare,
    is_node,
    to_number,
)
from repro.xtree.node import Document, Element, Node, Text


@dataclass(frozen=True)
class QueryContext:
    """Dynamic evaluation context."""

    documents: tuple[Document, ...]
    variables: dict[str, Sequence] = field(default_factory=dict)
    item: object | None = None
    position: int = 1
    size: int = 1

    def with_variable(self, name: str, value: Sequence) -> "QueryContext":
        variables = dict(self.variables)
        variables[name] = value
        return replace(self, variables=variables)

    def with_focus(self, item: object, position: int,
                   size: int) -> "QueryContext":
        return replace(self, item=item, position=position, size=size)


def evaluate_query(query: "Expression | str",
                   documents: "list[Document] | Document",
                   variables: dict[str, Sequence] | None = None) -> Sequence:
    """Evaluate a query (text or AST) against one or more documents."""
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(documents, Document):
        documents = [documents]
    context = QueryContext(tuple(documents), dict(variables or {}))
    return _evaluate(query, context)


def query_truth(query: "Expression | str",
                documents: "list[Document] | Document",
                variables: dict[str, Sequence] | None = None) -> bool:
    """Effective boolean value of a query result."""
    return effective_boolean_value(
        evaluate_query(query, documents, variables))


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def _evaluate(expression: Expression, context: QueryContext) -> Sequence:
    if isinstance(expression, Literal):
        return [expression.value]
    if isinstance(expression, TextLiteral):
        return [expression.value]
    if isinstance(expression, VarRef):
        try:
            return list(context.variables[expression.name])
        except KeyError:
            raise XQueryEvaluationError(
                f"unbound variable ${expression.name}") from None
    if isinstance(expression, ContextItem):
        if context.item is None:
            raise XQueryEvaluationError("no context item")
        return [context.item]
    if isinstance(expression, SequenceExpr):
        result: Sequence = []
        for item_expr in expression.items:
            result.extend(_evaluate(item_expr, context))
        return result
    if isinstance(expression, PathExpr):
        return _evaluate_path(expression, context)
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, context)
    if isinstance(expression, UnaryOp):
        return _evaluate_unary(expression, context)
    if isinstance(expression, FunctionCall):
        return _evaluate_call(expression, context)
    if isinstance(expression, FLWOR):
        return _evaluate_flwor(expression, context)
    if isinstance(expression, Quantified):
        return _evaluate_quantified(expression, context)
    if isinstance(expression, IfExpr):
        condition = effective_boolean_value(
            _evaluate(expression.condition, context))
        branch = expression.then_branch if condition \
            else expression.else_branch
        return _evaluate(branch, context)
    if isinstance(expression, ElementConstructor):
        return [_construct(expression, context)]
    raise XQueryEvaluationError(
        f"cannot evaluate expression {expression!r}")


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------

def _evaluate_path(path: PathExpr, context: QueryContext) -> Sequence:
    if path.start is None:
        current: Sequence = list(context.documents)
    else:
        current = _evaluate(path.start, context)
    for step, descendant in zip(path.steps, path.descendant_flags):
        if descendant:
            fast = _indexed_tag_step(step, current, context)
            if fast is not None:
                current = fast
                continue
            current = _descendant_or_self(current)
        current = _apply_step(step, current, context)
    return current


def _indexed_tag_step(step: AxisStep, sequence: Sequence,
                      context: QueryContext) -> Sequence | None:
    """``//tag`` over whole documents, served by the per-tag index.

    Applicable when every context item is a document and the step is a
    named child step: the candidates are exactly the document's
    elements with that tag, which
    :meth:`repro.xtree.node.Document.elements_by_tag` maintains
    incrementally — documents whose tag bucket is empty contribute
    nothing, so a step whose ``index_dependencies`` only one document
    can satisfy never walks the others.  Predicates are allowed when
    they filter purely by effective boolean value
    (:func:`repro.xquery.optimizer.boolean_filter_safe`): those are
    insensitive to the per-parent candidate partitioning of the generic
    path, so applying them element-wise over the index fetch is
    equivalent.  Positional predicates keep the generic path.  Returns
    ``None`` when not applicable.
    """
    if step.axis != "child" \
            or step.nodetest in ("*", "node()", "text()", "position()"):
        return None
    if step.predicates:
        from repro.xquery.optimizer import boolean_filter_safe
        if not all(boolean_filter_safe(predicate)
                   for predicate in step.predicates):
            return None
    if not all(isinstance(item, Document) for item in sequence):
        return None
    result: Sequence = []
    seen: set[int] = set()
    for document in sequence:
        if id(document) not in seen:
            seen.add(id(document))
            result.extend(document.elements_by_tag(step.nodetest))
    for predicate in step.predicates:
        result = _filter_predicate(predicate, result, context)
    return result


def _descendant_or_self(sequence: Sequence) -> Sequence:
    result: Sequence = []
    seen: set[int] = set()
    for item in sequence:
        for node in _self_and_descendants(item):
            if id(node) not in seen:
                seen.add(id(node))
                result.append(node)
    return result


def _self_and_descendants(item: object) -> Iterator[object]:
    if isinstance(item, Document):
        yield item
        yield from item.root.iter()
    elif isinstance(item, Element):
        yield from item.iter()
    elif isinstance(item, Text):
        yield item


def _apply_step(step: AxisStep, sequence: Sequence,
                context: QueryContext) -> Sequence:
    result: Sequence = []
    seen: set[int] = set()
    for item in sequence:
        candidates = _axis_candidates(step, item)
        for predicate in step.predicates:
            candidates = _filter_predicate(predicate, candidates, context)
        for candidate in candidates:
            if is_node(candidate):
                if id(candidate) not in seen:
                    seen.add(id(candidate))
                    result.append(candidate)
            else:
                result.append(candidate)
    return result


def _axis_candidates(step: AxisStep, item: object) -> Sequence:
    axis, nodetest = step.axis, step.nodetest
    if nodetest == "position()":
        if isinstance(item, Element):
            return [item.child_position]
        raise XQueryEvaluationError(
            "position() step requires an element context")
    if axis == "child":
        children: list[Node]
        if isinstance(item, Document):
            children = [item.root]
        elif isinstance(item, Element):
            children = item.children
        else:
            return []
        return [child for child in children if _matches(nodetest, child)]
    if axis == "attribute":
        if isinstance(item, Element):
            if nodetest == "*":
                return [UntypedAtomic(value)
                        for value in item.attributes.values()]
            if nodetest in item.attributes:
                return [UntypedAtomic(item.attributes[nodetest])]
        return []
    if axis == "parent":
        if isinstance(item, (Element, Text)) and item.parent is not None:
            return [item.parent]
        return []
    if axis == "self":
        return [item]
    if axis == "descendant":
        if isinstance(item, (Element, Document)):
            nodes = list(_self_and_descendants(item))[1:]
            return [node for node in nodes if _matches(nodetest, node)]
        return []
    raise XQueryEvaluationError(f"unsupported axis {axis!r}")


def _matches(nodetest: str, node: object) -> bool:
    if nodetest == "node()":
        return True
    if nodetest == "text()":
        return isinstance(node, Text)
    if nodetest == "*":
        return isinstance(node, Element)
    return isinstance(node, Element) and node.tag == nodetest


def _filter_predicate(predicate: Expression, candidates: Sequence,
                      context: QueryContext) -> Sequence:
    result: Sequence = []
    size = len(candidates)
    for position, candidate in enumerate(candidates, start=1):
        inner = context.with_focus(candidate, position, size)
        value = _evaluate(predicate, inner)
        if len(value) == 1 and isinstance(value[0], (int, float)) \
                and not isinstance(value[0], bool):
            if value[0] == position:
                result.append(candidate)
        elif effective_boolean_value(value):
            result.append(candidate)
    return result


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

_GENERAL_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITHMETIC_OPS = {"+", "-", "*", "div", "idiv", "mod"}


def _evaluate_binary(expression: BinaryOp, context: QueryContext) -> Sequence:
    op = expression.op
    if op == "and":
        left = effective_boolean_value(_evaluate(expression.left, context))
        if not left:
            return [False]
        return [effective_boolean_value(
            _evaluate(expression.right, context))]
    if op == "or":
        left = effective_boolean_value(_evaluate(expression.left, context))
        if left:
            return [True]
        return [effective_boolean_value(
            _evaluate(expression.right, context))]
    if op in _GENERAL_OPS:
        return [general_compare(op, _evaluate(expression.left, context),
                                _evaluate(expression.right, context))]
    if op in _ARITHMETIC_OPS:
        return _arithmetic(op, _evaluate(expression.left, context),
                           _evaluate(expression.right, context))
    if op == "to":
        left_seq = atomize(_evaluate(expression.left, context))
        right_seq = atomize(_evaluate(expression.right, context))
        if not left_seq or not right_seq:
            return []
        start = int(to_number(left_seq[0]))
        end = int(to_number(right_seq[0]))
        return list(range(start, end + 1))
    if op == "|":
        left_nodes = _evaluate(expression.left, context)
        right_nodes = _evaluate(expression.right, context)
        result: Sequence = []
        seen: set[int] = set()
        for node in left_nodes + right_nodes:
            if id(node) not in seen:
                seen.add(id(node))
                result.append(node)
        return result
    raise XQueryEvaluationError(f"unknown operator {op!r}")


def _arithmetic(op: str, left: Sequence, right: Sequence) -> Sequence:
    left_atoms = atomize(left)
    right_atoms = atomize(right)
    if not left_atoms or not right_atoms:
        return []
    if len(left_atoms) > 1 or len(right_atoms) > 1:
        raise XQueryEvaluationError("arithmetic on non-singleton sequences")
    left_value = to_number(left_atoms[0])
    right_value = to_number(right_atoms[0])
    if op == "+":
        result = left_value + right_value
    elif op == "-":
        result = left_value - right_value
    elif op == "*":
        result = left_value * right_value
    elif op == "div":
        if right_value == 0:
            raise XQueryEvaluationError("division by zero")
        result = left_value / right_value
    elif op == "idiv":
        if right_value == 0:
            raise XQueryEvaluationError("division by zero")
        return [int(left_value // right_value)]
    elif op == "mod":
        if right_value == 0:
            raise XQueryEvaluationError("division by zero")
        result = left_value % right_value
    else:  # pragma: no cover - dispatch prevents this
        raise XQueryEvaluationError(f"unknown arithmetic operator {op!r}")
    if float(result).is_integer() and op != "div":
        return [int(result)]
    return [result]


def _evaluate_unary(expression: UnaryOp, context: QueryContext) -> Sequence:
    atoms = atomize(_evaluate(expression.operand, context))
    if not atoms:
        return []
    value = to_number(atoms[0])
    result = -value if expression.op == "-" else value
    return [int(result)] if float(result).is_integer() else [result]


# ---------------------------------------------------------------------------
# Functions, FLWOR, quantifiers, constructors
# ---------------------------------------------------------------------------

def _evaluate_call(expression: FunctionCall,
                   context: QueryContext) -> Sequence:
    name = expression.name
    if name == "position":
        return [context.position]
    if name == "last":
        return [context.size]
    entry = functions.REGISTRY.get(name)
    if entry is None:
        raise XQueryEvaluationError(f"unknown function {name}()")
    implementation, min_arity, max_arity = entry
    if not min_arity <= len(expression.args) <= max_arity:
        raise XQueryEvaluationError(
            f"{name}() expects between {min_arity} and {max_arity} "
            f"arguments, got {len(expression.args)}")
    arguments = [_evaluate(arg, context) for arg in expression.args]
    return implementation(*arguments)


def _evaluate_flwor(expression: FLWOR, context: QueryContext) -> Sequence:
    result: Sequence = []

    def run(clause_index: int, current: QueryContext) -> None:
        if clause_index == len(expression.clauses):
            result.extend(_evaluate(expression.result, current))
            return
        clause = expression.clauses[clause_index]
        if isinstance(clause, ForClause):
            for item in _evaluate(clause.source, current):
                run(clause_index + 1,
                    current.with_variable(clause.variable, [item]))
        elif isinstance(clause, LetClause):
            run(clause_index + 1,
                current.with_variable(clause.variable,
                                      _evaluate(clause.source, current)))
        else:
            assert isinstance(clause, WhereClause)
            if effective_boolean_value(
                    _evaluate(clause.condition, current)):
                run(clause_index + 1, current)

    run(0, context)
    return result


def _evaluate_quantified(expression: Quantified,
                         context: QueryContext) -> Sequence:
    if expression.kind == "some":
        return [_evaluate_some(expression, context)]
    return [_evaluate_every(expression, context)]


@guarded_by("self._lru_lock", "_entries")
class _IndexLRU:
    """Bounded LRU cache for value indexes.

    Entries are keyed by (source, key expression, dependency tags,
    per-document tag revisions), so an index survives every update that
    does not touch the node types it was built from, and eviction
    retires one cold entry at a time instead of dumping the whole
    cache.  ``hits``/``misses`` are observability hooks for tests and
    benchmarks.

    All access runs under an internal lock: the cache is process-global
    and concurrent read-only checks (``verify_consistency`` under a
    :class:`repro.service.DocumentStore` reader lock) hit it from many
    threads at once, and even ``get`` reorders the underlying
    ``OrderedDict``.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "_lru_lock")

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, dict[tuple, list]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self._lru_lock = make_lock("xquery.index_cache")

    def get(self, key: tuple) -> "dict[tuple, list] | None":
        with self._lru_lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, value: "dict[tuple, list]") -> None:
        with self._lru_lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lru_lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lru_lock:
            return len(self._entries)


#: value indexes for hash joins — the stand-in for a native XML
#: database's value index (see :func:`_hash_index`)
_INDEX_CACHE = _IndexLRU()

#: installed by :mod:`repro.xquery.planner`: receives every cacheable
#: hash-join index so an active batch scope can repair it incrementally
#: across the updates of a batch instead of rebuilding it per update.
#: ``None`` (no planner imported / no batch active) is a no-op.
_batch_index_sink = None


def _index_cache_key(source: "Expression", key_side: "Expression",
                     context: QueryContext) -> tuple:
    """Cache key whose revision component is as narrow as possible.

    When the dependency tags of both expressions are statically known,
    the key carries only those tags' revision counters; otherwise it
    falls back to the documents' global revisions.
    """
    from repro.xquery.optimizer import index_dependencies

    tags = index_dependencies(source)
    if tags is not None:
        key_tags = index_dependencies(key_side)
        tags = None if key_tags is None else frozenset(tags | key_tags)
    if tags is None:
        # document.uid, not id(): the cache outlives documents, and a
        # recycled address must not revive a dead document's entries
        state = tuple((document.uid, document.revision)
                      for document in context.documents)
        return (source, key_side, None, state)
    ordered = tuple(sorted(tags))
    state = tuple(
        (document.uid,
         tuple(document.tag_revision(tag) for tag in ordered))
        for document in context.documents)
    return (source, key_side, ordered, state)


def _hash_index(name: str, source: "Expression", key_side: "Expression",
                context: QueryContext) -> dict[tuple, list]:
    """Hash index of a binding source by an equality key expression.

    When the source depends only on the documents (no variables), the
    index is cached across evaluations and invalidated by the
    revision counters embedded in the cache key — per-tag counters when
    the dependency analysis can bound the tags, the whole-document
    counter otherwise.  This is what makes nested ``not(some ...)``
    anti-joins linear instead of quadratic.
    """
    from repro.xquery.optimizer import (
        free_variables,
        hash_keys,
    )

    cacheable = not free_variables(source) \
        and free_variables(key_side) <= {name}
    cache_key: tuple | None = None
    if cacheable:
        cache_key = _index_cache_key(source, key_side, context)
        cached = _INDEX_CACHE.get(cache_key)
        if cached is not None:
            if _batch_index_sink is not None:
                _batch_index_sink(name, source, key_side, context, cached)
            return cached
    index_map: dict[tuple, list] = {}
    for item in _evaluate(source, context):
        item_context = context.with_variable(name, [item])
        for value in atomize(_evaluate(key_side, item_context)):
            for key in hash_keys(value):
                index_map.setdefault(key, []).append(item)
    if cache_key is not None:
        _INDEX_CACHE.put(cache_key, index_map)
        if _batch_index_sink is not None:
            _batch_index_sink(name, source, key_side, context, index_map)
    return index_map


def _evaluate_every(expression: Quantified, context: QueryContext) -> bool:
    def check(binding_index: int, current: QueryContext) -> bool:
        if binding_index == len(expression.bindings):
            return effective_boolean_value(
                _evaluate(expression.condition, current))
        name, source = expression.bindings[binding_index]
        return all(
            check(binding_index + 1, current.with_variable(name, [item]))
            for item in _evaluate(source, current))

    return check(0, context)


def _evaluate_some(expression: Quantified, context: QueryContext) -> bool:
    """Join-aware evaluation of ``some`` (see repro.xquery.optimizer).

    Bindings extend a frontier of candidate environments breadth-first;
    conjuncts of the condition prune as soon as their variables are
    bound, and uncorrelated sources with an applicable equality
    conjunct are hash-joined instead of iterated.
    """
    from repro.xquery.optimizer import (
        free_variables,
        hash_keys,
        plan_for,
        probe_keys,
    )

    plan = plan_for(expression)
    frontier: list[QueryContext] = [context]
    for index, (name, source) in enumerate(plan.bindings):
        if not frontier:
            return False
        equality = plan.equality_for[index]
        remaining_checks = [
            factor for factor in plan.checks_after[index]
            if equality is None or factor is not equality[0]]
        if not plan.correlated[index]:
            if equality is not None:
                _, new_side, bound_side = equality
                index_map = _hash_index(name, source, new_side, context)
                new_frontier: list[QueryContext] = []
                for environment in frontier:
                    matches: list = []
                    seen: set[int] = set()
                    for key in probe_keys(
                            _evaluate(bound_side, environment)):
                        for item in index_map.get(key, ()):
                            if id(item) not in seen:
                                seen.add(id(item))
                                matches.append(item)
                    for item in matches:
                        new_frontier.append(
                            environment.with_variable(name, [item]))
                frontier = new_frontier
            else:
                items = _evaluate(source, context)
                frontier = [
                    environment.with_variable(name, [item])
                    for environment in frontier
                    for item in items
                ]
        else:
            frontier = [
                environment.with_variable(name, [item])
                for environment in frontier
                for item in _evaluate(source, environment)
            ]
        for factor in remaining_checks:
            frontier = [
                environment for environment in frontier
                if effective_boolean_value(_evaluate(factor, environment))
            ]
    return bool(frontier)


def _construct(expression: ElementConstructor,
               context: QueryContext) -> Element:
    attributes: dict[str, str] = {}
    for name, value_expr in expression.attributes:
        atoms = atomize(_evaluate(value_expr, context))
        attributes[name] = "".join(str(atom) for atom in atoms)
    element = Element(expression.tag, attributes)
    for child in expression.children:
        atoms = atomize(_evaluate(child, context))
        text = "".join(str(atom) for atom in atoms)
        if text:
            element.append(Text(text))
    return element
