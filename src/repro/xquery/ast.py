"""Abstract syntax of the supported XQuery fragment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Literal:
    value: str | int | float

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return '"' + self.value.replace('"', '""') + '"'
        return str(self.value)


@dataclass(frozen=True)
class VarRef:
    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class ContextItem:
    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class SequenceExpr:
    items: tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(item) for item in self.items) + ")"


@dataclass(frozen=True)
class AxisStep:
    """One path step.  ``axis`` ∈ child, descendant, descendant-or-self,
    attribute, parent, self.  ``nodetest`` is a name, ``"*"``,
    ``"text()"``, ``"node()"``, or the engine extension ``"position()"``
    (the node's sibling position, matching the ``Pos`` column)."""

    axis: str
    nodetest: str
    predicates: tuple["Expression", ...] = ()

    def __str__(self) -> str:
        if self.axis == "parent":
            base = ".."
        elif self.axis == "attribute":
            base = f"@{self.nodetest}"
        elif self.axis == "self":
            base = "."
        else:
            base = self.nodetest
        return base + "".join(f"[{pred}]" for pred in self.predicates)


@dataclass(frozen=True)
class PathExpr:
    """``start`` is ``None`` for absolute paths (anchored at the
    document roots of the evaluation collection); otherwise the
    expression producing the starting sequence.  ``descendant_flags[i]``
    is True when step *i* follows ``//``."""

    start: "Expression | None"
    steps: tuple[AxisStep, ...]
    descendant_flags: tuple[bool, ...]

    def __str__(self) -> str:
        parts: list[str] = []
        if self.start is not None:
            parts.append(str(self.start))
        for index, (step, descendant) in enumerate(
                zip(self.steps, self.descendant_flags)):
            if self.start is None and index == 0:
                parts.append("//" if descendant else "/")
            else:
                parts.append("//" if descendant else "/")
            parts.append(str(step))
        return "".join(parts)


@dataclass(frozen=True)
class BinaryOp:
    """``op`` ∈ or, and, =, !=, <, <=, >, >=, eq, ne, lt, le, gt, ge,
    +, -, *, div, idiv, mod, to, |"""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # "-" or "+"
    operand: "Expression"

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: tuple["Expression", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ForClause:
    variable: str
    source: "Expression"


@dataclass(frozen=True)
class LetClause:
    variable: str
    source: "Expression"


@dataclass(frozen=True)
class WhereClause:
    condition: "Expression"


FLWORClause = Union[ForClause, LetClause, WhereClause]


@dataclass(frozen=True)
class FLWOR:
    clauses: tuple[FLWORClause, ...]
    result: "Expression"

    def __str__(self) -> str:
        parts: list[str] = []
        for clause in self.clauses:
            if isinstance(clause, ForClause):
                parts.append(f"for ${clause.variable} in {clause.source}")
            elif isinstance(clause, LetClause):
                parts.append(f"let ${clause.variable} := {clause.source}")
            else:
                parts.append(f"where {clause.condition}")
        parts.append(f"return {self.result}")
        return " ".join(parts)


@dataclass(frozen=True)
class Quantified:
    kind: str  # "some" | "every"
    bindings: tuple[tuple[str, "Expression"], ...]
    condition: "Expression"

    def __str__(self) -> str:
        bindings = ", ".join(
            f"${name} in {source}" for name, source in self.bindings)
        return f"{self.kind} {bindings} satisfies {self.condition}"


@dataclass(frozen=True)
class IfExpr:
    condition: "Expression"
    then_branch: "Expression"
    else_branch: "Expression"

    def __str__(self) -> str:
        return (f"if ({self.condition}) then {self.then_branch} "
                f"else {self.else_branch}")


@dataclass(frozen=True)
class ElementConstructor:
    tag: str
    attributes: tuple[tuple[str, "Expression"], ...] = ()
    children: tuple["Expression", ...] = ()

    def __str__(self) -> str:
        attrs = "".join(f' {name}="{value}"'
                        for name, value in self.attributes)
        if not self.children:
            return f"<{self.tag}{attrs}/>"
        inner = "".join(str(child) for child in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


@dataclass(frozen=True)
class TextLiteral:
    """Literal text content inside an element constructor."""

    value: str

    def __str__(self) -> str:
        return self.value


Expression = Union[
    Literal, VarRef, ContextItem, SequenceExpr, PathExpr, BinaryOp, UnaryOp,
    FunctionCall, FLWOR, Quantified, IfExpr, ElementConstructor, TextLiteral,
]
