"""XQuery subset engine and the denial→XQuery translation of section 6.

The paper evaluates its (full and optimized) integrity checks as XQuery
boolean expressions on an XML repository (eXist).  This package
provides the substitute engine: a lexer, parser and evaluator for the
XQuery fragment those checks need —

* FLWOR expressions (``for``/``let``/``where``/``return``),
* quantified expressions (``some``/``every`` ... ``satisfies``),
* path expressions with child/descendant/attribute/parent/self axes,
  name/text/node tests and positional or boolean predicates,
* general and value comparisons, arithmetic, boolean connectives,
* a standard function library (``count``, ``exists``, ``not``, ...),
* element constructors (``<idle/>``),

plus :mod:`repro.xquery.translate`, the section 6 algorithm that turns
Datalog denials into such queries (with ``%x`` placeholders for update
parameters).

Queries are evaluated against a *collection* of documents, mirroring
the paper's setting where constraints span both ``pub.xml`` and
``rev.xml``.
"""

from repro.xquery.parser import parse_query
from repro.xquery.engine import QueryContext, evaluate_query
from repro.xquery.planner import (
    batch_scope,
    explain_query,
    query_truth_planned,
    unplanned,
)
from repro.xquery.translate import (
    TranslatedQuery,
    translate_denial,
    translate_denials,
)

__all__ = [
    "parse_query",
    "QueryContext",
    "evaluate_query",
    "TranslatedQuery",
    "translate_denial",
    "translate_denials",
    "query_truth_planned",
    "explain_query",
    "batch_scope",
    "unplanned",
]
