"""Translation of Datalog denials into XQuery (section 6).

A denial becomes a boolean query that returns ``true`` exactly when the
denial's body is satisfiable — i.e. when integrity is violated.  The
shape follows the paper:

* every database atom contributes variable definitions — ``$Id in //p``
  (or ``$Id in $Par/p`` when the parent is already bound), ``$Par in
  $Id/..`` when the parent is referenced elsewhere, ``$V in
  $Id/d/text()`` for used value columns;
* definitions of never-used variables are not emitted, except node
  identifiers (which carry the existential force of the atom);
* remaining comparisons form the ``satisfies`` condition of a
  ``some ... satisfies ...`` expression;
* parameters (the ``%`` placeholders of the paper) are emitted as
  ``%{name}`` tokens: *node* parameters (in id/parent positions) are
  replaced at update time by the absolute location path of the target
  node (``/review/track[2]/rev[5]``), *value* parameters by literals;
* aggregate conditions become ``count(path)`` / ``sum(path)``
  comparisons, with aggregate bodies rendered as location paths with
  predicates.

The translated query evaluates on our own engine; the direct Datalog
evaluation of the same denial is the differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.datalog.atoms import (
    Aggregate,
    AggregateCondition,
    Atom,
    Comparison,
    Negation,
)
from repro.datalog.denial import Denial
from repro.datalog.terms import (
    Arithmetic,
    Constant,
    Parameter,
    Term,
    Variable,
)
from repro.errors import CompilationError, XQueryError
from repro.relational.schema import PredicateSchema, RelationalSchema
from repro.xquery.ast import Expression
from repro.xquery.parser import parse_query
from repro.xtree.node import Document, Element

_OP_SYMBOLS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">",
               "ge": ">="}

#: prefix of the external XQuery variables that carry parameter values
#: in prepared plans.  Translator-generated variable names never start
#: with an underscore (see ``_Translator._name_for``), so no collision.
PARAM_VARIABLE_PREFIX = "__p_"


@dataclass
class TranslatedQuery:
    """An XQuery check with update-time placeholders.

    ``text`` contains ``%{name}`` tokens; ``parameters`` maps each name
    to its kind: ``"node"`` (a bound element) or ``"value"`` (a scalar).

    ``prepared`` is the *prepared plan*: ``text`` parsed once, at
    schema-compile time, with every ``%{name}`` token replaced by the
    external variable ``$__p_name``.  At update time the parameters are
    bound as context variables (:meth:`variables_for`) — node
    parameters directly to the live element, with no location-path
    rendering, re-resolution or literal quoting — and the AST is
    evaluated as-is (:meth:`truth`).  The legacy text path
    (:meth:`instantiate`) remains for ad-hoc queries and as the
    differential-testing baseline.
    """

    text: str
    parameters: dict[str, str]
    denial: Denial
    #: compile-time AST with parameters as external variables; ``None``
    #: only if the prepared text failed to parse (never for the
    #: translator's own output — a safety net for hand-built queries)
    prepared: Expression | None = None
    #: parameter name → external variable name used in ``prepared``
    variable_names: dict[str, str] = field(default_factory=dict)

    def instantiate(self, bindings: Mapping[str, object]) -> str:
        """Fill the placeholders with concrete update values."""
        text = self.text
        for name, kind in self.parameters.items():
            value = self._binding(bindings, name, kind)
            if kind == "node":
                rendered = value.location_path()  # type: ignore[union-attr]
            else:
                rendered = _literal(value)
            text = text.replace("%{" + name + "}", rendered)
        return text

    def variables_for(
            self, bindings: Mapping[str, object]) -> dict[str, list]:
        """External-variable bindings for the prepared plan.

        Node parameters become singleton node sequences (the live
        element itself), value parameters singleton atomics.
        """
        variables: dict[str, list] = {}
        for name, kind in self.parameters.items():
            value = self._binding(bindings, name, kind)
            variables[self.variable_names[name]] = [value]
        return variables

    def truth(self, documents: "list[Document] | Document",
              bindings: Mapping[str, object] | None = None) -> bool:
        """Evaluate the check without re-parsing any query text.

        Uses the prepared plan with variable-bound parameters when
        available, falling back to instantiate-and-parse otherwise.
        """
        from repro.xquery import planner
        from repro.xquery.engine import query_truth

        if self.prepared is not None:
            variables = self.variables_for(bindings or {}) \
                if self.parameters else None
            if planner.enabled():
                return planner.query_truth_planned(
                    self.prepared, documents, variables)
            return query_truth(self.prepared, documents, variables)
        return query_truth(self.instantiate(bindings or {}), documents)

    def _binding(self, bindings: Mapping[str, object], name: str,
                 kind: str) -> object:
        if name not in bindings:
            raise CompilationError(
                f"missing binding for parameter {name!r}")
        value = bindings[name]
        if kind == "node" and not isinstance(value, Element):
            raise CompilationError(
                f"parameter {name!r} needs an element, got "
                f"{type(value).__name__}")
        return value


def prepare_query(text: str,
                  parameters: dict[str, str]) -> tuple[
                      Expression | None, dict[str, str]]:
    """Parse placeholder text once into a prepared (AST, variables) plan.

    Every ``%{name}`` token is rewritten to the external variable
    ``$__p_name`` and the result parsed.  Returns ``(None, names)``
    when the rewritten text is outside the parsable fragment, in which
    case callers fall back to the instantiate-text path.
    """
    variable_names = {
        name: PARAM_VARIABLE_PREFIX + name for name in parameters}
    prepared_text = text
    for name, variable in variable_names.items():
        prepared_text = prepared_text.replace(
            "%{" + name + "}", "$" + variable)
    try:
        return parse_query(prepared_text), variable_names
    except XQueryError:
        return None, variable_names


def _literal(value: object) -> str:
    if isinstance(value, bool):
        return "true()" if value else "false()"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value)
    if '"' not in text:
        return f'"{text}"'
    if "'" not in text:
        return f"'{text}'"
    raise CompilationError(
        "cannot render a literal containing both quote characters")


class _Translator:
    def __init__(self, denial: Denial, schema: RelationalSchema) -> None:
        self.denial = denial
        self.schema = schema
        self.definitions: list[tuple[str, str]] = []  # ($var, source)
        self.conditions: list[str] = []
        self.parameters: dict[str, str] = {}
        #: variable → XQuery reference for its *value*
        self.value_refs: dict[Variable, str] = {}
        #: id variable → XQuery reference for the *node*
        self.node_refs: dict[Variable, str] = {}
        self._var_names: dict[Variable, str] = {}
        self._used_names: set[str] = set()
        self._usage = self._count_usage()

    # -- bookkeeping -----------------------------------------------------------

    def _count_usage(self) -> dict[Variable, int]:
        counts: dict[Variable, int] = {}

        def walk_term(term: Term) -> None:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
            elif isinstance(term, Arithmetic):
                walk_term(term.left)
                walk_term(term.right)

        def walk_literal(literal) -> None:
            if isinstance(literal, Atom):
                for arg in literal.args:
                    walk_term(arg)
            elif isinstance(literal, Comparison):
                walk_term(literal.left)
                walk_term(literal.right)
            elif isinstance(literal, Negation):
                for inner in literal.body:
                    walk_literal(inner)

        for literal in self.denial.body:
            if isinstance(literal, (Atom, Comparison, Negation)):
                walk_literal(literal)
            else:
                assert isinstance(literal, AggregateCondition)
                aggregate = literal.aggregate
                for atom in aggregate.body:
                    for arg in atom.args:
                        walk_term(arg)
                if aggregate.term is not None:
                    walk_term(aggregate.term)
                for term in aggregate.group_by:
                    walk_term(term)
                walk_term(literal.bound)
        return counts

    def _name_for(self, variable: Variable) -> str:
        if variable not in self._var_names:
            base = variable.name.split("#")[0].replace("_", "V") or "V"
            if not base[0].isalpha():
                base = "V" + base
            name = base
            suffix = 1
            while name in self._used_names:
                suffix += 1
                name = f"{base}{suffix}"
            self._used_names.add(name)
            self._var_names[variable] = name
        return self._var_names[variable]

    def _parameter_token(self, parameter: Parameter, kind: str) -> str:
        existing = self.parameters.get(parameter.name)
        if existing is not None and existing != kind:
            raise CompilationError(
                f"parameter {parameter.name!r} is used both as a node and "
                "as a value")
        self.parameters[parameter.name] = kind
        return "%{" + parameter.name + "}"

    # -- main ---------------------------------------------------------------------

    def translate(self) -> TranslatedQuery:
        atoms = self._sorted_atoms()
        for atom in atoms:
            self._translate_atom(atom)
        for literal in self.denial.body:
            if isinstance(literal, Negation):
                self.conditions.append(self._translate_negation(literal))
        for literal in self.denial.body:
            if isinstance(literal, AggregateCondition):
                self._translate_aggregate(literal)
        for literal in self.denial.body:
            if isinstance(literal, Comparison):
                self.conditions.append(self._render_comparison(literal))
        condition_text = " and ".join(self.conditions) if self.conditions \
            else "true()"
        if self.definitions:
            defs = ", ".join(f"${name} in {source}"
                             for name, source in self.definitions)
            text = f"some {defs} satisfies {condition_text}"
        else:
            text = condition_text
        parameters = dict(self.parameters)
        prepared, variable_names = prepare_query(text, parameters)
        return TranslatedQuery(text, parameters, self.denial, prepared,
                               variable_names)

    def _sorted_atoms(self) -> list[Atom]:
        """Atoms ordered so a node is defined before it is used as a
        parent (the sorting step of section 6)."""
        remaining = list(self.denial.atoms())
        ordered: list[Atom] = []
        defined_ids: set[Variable] = set()
        while remaining:
            progressed = False
            for atom in list(remaining):
                parent = atom.args[2] if len(atom.args) > 2 else None
                if isinstance(parent, Variable) \
                        and parent not in defined_ids \
                        and any(_id_term(other) == parent
                                for other in remaining if other is not atom):
                    continue  # wait until the parent's atom is processed
                identifier = _id_term(atom)
                if isinstance(identifier, Variable):
                    defined_ids.add(identifier)
                ordered.append(atom)
                remaining.remove(atom)
                progressed = True
            if not progressed:
                # parent cycle (impossible for tree data): fall back to
                # the original order
                ordered.extend(remaining)
                break
        return ordered

    # -- atoms ---------------------------------------------------------------------

    def _translate_atom(self, atom: Atom) -> None:
        predicate = self.schema.predicate_for(atom.predicate)
        if len(atom.args) != predicate.arity():
            raise CompilationError(
                f"atom {atom} does not match schema predicate {predicate}")
        identifier = atom.args[0]
        parent = atom.args[2]
        node_ref = self._define_node(atom, identifier, parent, predicate)
        self._translate_columns(atom, predicate, node_ref)

    def _define_node(self, atom: Atom, identifier: Term, parent: Term,
                     predicate: PredicateSchema) -> str:
        tag = atom.predicate
        if isinstance(identifier, Parameter):
            # the atom talks about one specific (existing) node
            return self._parameter_token(identifier, "node")
        if not isinstance(identifier, Variable):
            raise CompilationError(
                f"node identifier of {atom} must be a variable or a "
                "parameter")
        if identifier in self.node_refs:
            return self.node_refs[identifier]
        source = self._node_source(tag, parent)
        name = self._name_for(identifier)
        self.definitions.append((name, source))
        reference = f"${name}"
        self.node_refs[identifier] = reference
        self.value_refs.setdefault(identifier, reference)
        if isinstance(parent, Variable) and parent not in self.node_refs \
                and self._usage.get(parent, 0) > 1:
            parent_name = self._name_for(parent)
            self.definitions.append((parent_name, f"{reference}/.."))
            self.node_refs[parent] = f"${parent_name}"
            self.value_refs.setdefault(parent, f"${parent_name}")
        return reference

    def _node_source(self, tag: str, parent: Term) -> str:
        if isinstance(parent, Parameter):
            return f"{self._parameter_token(parent, 'node')}/{tag}"
        if isinstance(parent, Variable) and parent in self.node_refs:
            return f"{self.node_refs[parent]}/{tag}"
        return f"//{tag}"

    def _translate_columns(self, atom: Atom, predicate: PredicateSchema,
                           node_ref: str) -> None:
        for index, column in enumerate(predicate.columns):
            if index in (0, 2):
                continue  # id and parent handled structurally
            term = atom.args[index]
            path = f"{node_ref}/{_column_path(column)}"
            if isinstance(term, Variable):
                if self._usage.get(term, 0) <= 1:
                    continue  # anonymous / unused: no condition
                if term in self.value_refs:
                    self.conditions.append(
                        f"{self.value_refs[term]} = {path}")
                else:
                    name = self._name_for(term)
                    self.definitions.append((name, path))
                    self.value_refs[term] = f"${name}"
            elif isinstance(term, Constant):
                self.conditions.append(f"{path} = {_literal(term.value)}")
            elif isinstance(term, Parameter):
                token = self._parameter_token(term, "value")
                self.conditions.append(f"{path} = {token}")
            else:
                raise CompilationError(
                    f"cannot translate column term {term} of {atom}")

    # -- negations ---------------------------------------------------------------------

    def _translate_negation(self, negation: Negation) -> str:
        """Render ``¬∃(...)`` as ``not(some ... satisfies ...)``.

        The inner subquery is translated in a nested scope: its atoms
        may reference outer nodes (through parent links and shared
        value variables), while definitions introduced inside stay
        local to the ``not(...)``.
        """
        outer_definitions = self.definitions
        outer_conditions = self.conditions
        outer_value_refs = dict(self.value_refs)
        outer_node_refs = dict(self.node_refs)
        self.definitions = []
        self.conditions = []
        try:
            inner_denial = Denial(negation.body)
            for atom in self._sorted_atoms_of(inner_denial):
                self._translate_atom(atom)
            for inner in negation.body:
                if isinstance(inner, Comparison):
                    self.conditions.append(
                        self._render_comparison(inner))
            condition_text = " and ".join(self.conditions) \
                if self.conditions else "true()"
            if self.definitions:
                defs = ", ".join(f"${name} in {source}"
                                 for name, source in self.definitions)
                inner_text = f"some {defs} satisfies {condition_text}"
            else:
                inner_text = condition_text
        finally:
            self.definitions = outer_definitions
            self.conditions = outer_conditions
            self.value_refs = outer_value_refs
            self.node_refs = outer_node_refs
        return f"not({inner_text})"

    def _sorted_atoms_of(self, denial: Denial) -> list[Atom]:
        saved = self.denial
        self.denial = denial
        try:
            return self._sorted_atoms()
        finally:
            self.denial = saved

    # -- comparisons ------------------------------------------------------------------

    def _render_comparison(self, literal: Comparison) -> str:
        left, right = literal.left, literal.right
        if literal.op in ("eq", "ne") \
                and isinstance(left, Variable) and left in self.node_refs \
                and isinstance(right, Variable) \
                and right in self.node_refs:
            # node-identity comparison: two node variables denote the
            # same node iff their union has one member
            union = (f"count(({self.node_refs[left]} | "
                     f"{self.node_refs[right]}))")
            return f"{union} = 1" if literal.op == "eq" else f"{union} = 2"
        return (f"{self._render_operand(left)} "
                f"{_OP_SYMBOLS[literal.op]} "
                f"{self._render_operand(right)}")

    def _render_operand(self, term: Term) -> str:
        if isinstance(term, Constant):
            return _literal(term.value)
        if isinstance(term, Parameter):
            kind = self.parameters.get(term.name, "value")
            return self._parameter_token(term, kind)
        if isinstance(term, Variable):
            reference = self.value_refs.get(term)
            if reference is None:
                raise CompilationError(
                    f"variable {term} of a comparison is not bound by any "
                    "database atom")
            return reference
        if isinstance(term, Arithmetic):
            left = self._render_operand(term.left)
            right = self._render_operand(term.right)
            return f"({left} {term.op} {right})"
        raise CompilationError(f"cannot render term {term}")

    # -- aggregates --------------------------------------------------------------------

    def _translate_aggregate(self, condition: AggregateCondition) -> None:
        aggregate = condition.aggregate
        self._ensure_group_definitions(aggregate)
        path, target_kind = self._aggregate_path(aggregate)
        if aggregate.func == "cnt":
            if aggregate.distinct and target_kind == "value":
                value = f"count(distinct-values({path}))"
            else:
                value = f"count({path})"
        elif aggregate.func == "sum":
            value = f"sum({path})"
        elif aggregate.func == "max":
            value = f"max({path})"
        elif aggregate.func == "min":
            value = f"min({path})"
        else:
            value = f"avg({path})"
        bound = self._render_operand(condition.bound)
        symbol = _OP_SYMBOLS[condition.op]
        self.conditions.append(f"{value} {symbol} {bound}")

    def _ensure_group_definitions(self, aggregate: Aggregate) -> None:
        """Bind group-by variables not defined by the rest of the denial.

        Groups range over the values the aggregate body can produce, so
        the defining path of the group variable inside the body, made
        absolute, enumerates the candidate groups (wrapped in
        ``distinct-values``).
        """
        for term in aggregate.group_by:
            if not isinstance(term, Variable) or term in self.value_refs:
                continue
            defining = self._group_defining_path(aggregate, term)
            name = self._name_for(term)
            self.definitions.append(
                (name, f"distinct-values({defining})"))
            self.value_refs[term] = f"${name}"

    def _group_defining_path(self, aggregate: Aggregate,
                             variable: Variable) -> str:
        for atom in aggregate.body:
            predicate = self.schema.predicate_for(atom.predicate)
            for index, column in enumerate(predicate.columns):
                if index in (0, 2):
                    continue
                if atom.args[index] == variable:
                    anchor = self._body_anchor(aggregate, atom)
                    return f"{anchor}/{_column_path(column)}"
        raise CompilationError(
            f"group variable {variable} is not produced by the aggregate "
            "body")

    def _body_anchor(self, aggregate: Aggregate, atom: Atom) -> str:
        """Absolute path selecting the nodes an aggregate-body atom
        describes, ignoring its column constraints."""
        chain: list[str] = [atom.predicate]
        current = atom
        guard = 0
        while True:
            guard += 1
            if guard > len(aggregate.body) + 2:
                raise CompilationError("aggregate body has a parent cycle")
            parent = current.args[2]
            parent_atom = None
            if isinstance(parent, Variable):
                for other in aggregate.body:
                    if other is not current and _id_term(other) == parent:
                        parent_atom = other
                        break
            if parent_atom is None:
                if isinstance(parent, Parameter):
                    return self._parameter_token(parent, "node") + "/" + \
                        "/".join(reversed(chain))
                if isinstance(parent, Variable) \
                        and parent in self.node_refs:
                    return self.node_refs[parent] + "/" + \
                        "/".join(reversed(chain))
                return "//" + "/".join(reversed(chain))
            chain.append(parent_atom.predicate)
            current = parent_atom

    def _aggregate_path(self, aggregate: Aggregate) -> tuple[str, str]:
        """Location path producing the aggregated items.

        Returns the path text and whether it selects nodes or values.
        The body must form a tree through parent links; the spine goes
        from the root atom to the *target* (the atom whose id is the
        aggregated term, or the only atom for row counts); other atoms
        become existence predicates.
        """
        body = list(aggregate.body)
        target = self._target_atom(aggregate, body)
        # children mapping through parent links
        children: dict[int, list[Atom]] = {}
        roots: list[Atom] = []
        by_id: dict[Variable, Atom] = {}
        for atom in body:
            identifier = _id_term(atom)
            if isinstance(identifier, Variable):
                by_id[identifier] = atom
        parent_of: dict[int, Atom | None] = {}
        for atom in body:
            parent = atom.args[2]
            if isinstance(parent, Variable) and parent in by_id \
                    and by_id[parent] is not atom:
                parent_atom = by_id[parent]
                children.setdefault(id(parent_atom), []).append(atom)
                parent_of[id(atom)] = parent_atom
            else:
                roots.append(atom)
                parent_of[id(atom)] = None
        # spine: target up to its root
        spine: list[Atom] = []
        cursor: Atom | None = target
        while cursor is not None:
            spine.append(cursor)
            cursor = parent_of[id(cursor)]
        spine.reverse()
        root = spine[0]
        if len(roots) > 1:
            raise CompilationError(
                "aggregate bodies with multiple unconnected atoms cannot "
                "be translated to a single path")
        anchor = self._anchor_for_root(root)
        spine_ids = {id(atom) for atom in spine}
        parts = [anchor]
        for atom in spine:
            step = atom.predicate if atom is not root else ""
            predicates = self._atom_predicates(atom, children, spine_ids,
                                               aggregate.term)
            if atom is root:
                parts[0] = anchor + predicates
            else:
                parts.append("/" + step + predicates)
        path = "".join(parts)
        term = aggregate.term
        target_kind = "node"
        if term is not None and term != _id_term(target):
            predicate = self.schema.predicate_for(target.predicate)
            for index, column in enumerate(predicate.columns):
                if index in (0, 2):
                    continue
                if target.args[index] == term:
                    path += "/" + _column_path(column)
                    target_kind = "value"
                    break
            else:
                raise CompilationError(
                    f"aggregated term {term} is not produced by the target "
                    "atom")
        return path, target_kind

    def _target_atom(self, aggregate: Aggregate, body: list[Atom]) -> Atom:
        term = aggregate.term
        if term is None:
            if len(body) == 1:
                return body[0]
            raise CompilationError(
                "row counts over multi-atom aggregate bodies cannot be "
                "translated; use a counted term")
        if isinstance(term, Variable):
            for atom in body:
                if _id_term(atom) == term:
                    return atom
            for atom in body:
                if term in atom.variables():
                    return atom
        raise CompilationError(
            f"cannot locate the aggregate target for term {term}")

    def _anchor_for_root(self, root: Atom) -> str:
        parent = root.args[2]
        if isinstance(parent, Parameter):
            return self._parameter_token(parent, "node") + "/" \
                + root.predicate
        if isinstance(parent, Variable) and parent in self.node_refs:
            return f"{self.node_refs[parent]}/{root.predicate}"
        return f"//{root.predicate}"

    def _atom_predicates(self, atom: Atom, children: dict[int, list[Atom]],
                         spine_ids: set[int],
                         skip_term: Term | None = None) -> str:
        predicate = self.schema.predicate_for(atom.predicate)
        parts: list[str] = []
        for index, column in enumerate(predicate.columns):
            if index in (0, 2):
                continue
            term = atom.args[index]
            if skip_term is not None and term == skip_term:
                # the aggregated value: selected by the path suffix, not
                # filtered by a predicate
                continue
            column_path = _column_path(column)
            if isinstance(term, Constant):
                parts.append(f"[{column_path} = {_literal(term.value)}]")
            elif isinstance(term, Parameter):
                token = self._parameter_token(term, "value")
                parts.append(f"[{column_path} = {token}]")
            elif isinstance(term, Variable):
                reference = self.value_refs.get(term)
                if reference is not None:
                    parts.append(f"[{column_path} = {reference}]")
                elif self._usage.get(term, 0) > 1 \
                        and term != _id_term(atom):
                    raise CompilationError(
                        f"shared aggregate-body variable {term} is not "
                        "bound outside the aggregate")
        for child in children.get(id(atom), ()):
            if id(child) not in spine_ids:
                branch = child.predicate \
                    + self._atom_predicates(child, children, spine_ids,
                                            skip_term)
                parts.append(f"[{branch}]")
        return "".join(parts)


def _id_term(atom: Atom) -> Term:
    return atom.args[0]


def _column_path(column) -> str:
    if column.kind == "text_child":
        return f"{column.source}/text()"
    if column.kind == "attribute":
        return f"@{column.source}"
    if column.kind == "text":
        return "text()"
    if column.kind == "pos":
        return "position()"
    raise CompilationError(f"unexpected column kind {column.kind!r}")


def translate_denial(denial: Denial,
                     schema: RelationalSchema) -> TranslatedQuery:
    """Translate one Datalog denial into an XQuery check (section 6)."""
    return _Translator(denial, schema).translate()


def translate_denials(denials: list[Denial],
                      schema: RelationalSchema) -> list[TranslatedQuery]:
    """Translate a set of denials; one query per denial."""
    return [translate_denial(denial, schema) for denial in denials]
