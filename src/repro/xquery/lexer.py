"""Tokenizer for the XQuery fragment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XQueryError


@dataclass(frozen=True)
class Token:
    kind: str
    value: str | int | float
    line: int
    column: int


_SYMBOLS = [
    (":=", "ASSIGN"),
    ("!=", "NE"),
    ("<=", "LE"),
    (">=", "GE"),
    ("//", "DSLASH"),
    ("..", "DOTDOT"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    (",", "COMMA"),
    ("$", "DOLLAR"),
    ("/", "SLASH"),
    ("@", "AT"),
    ("=", "EQ"),
    ("<", "LT"),
    (">", "GT"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    ("*", "STAR"),
    (".", "DOT"),
    ("|", "PIPE"),
]

KEYWORDS = {
    "for", "let", "where", "return", "in", "some", "every", "satisfies",
    "and", "or", "div", "idiv", "mod", "to", "if", "then", "else",
    "eq", "ne", "lt", "le", "gt", "ge",
}


def tokenize(text: str) -> list[Token]:
    """Tokenize XQuery text.

    ``<`` starts an element constructor only when followed by a name
    character; the parser decides by context — the lexer emits both a
    ``LT`` token and leaves tag scanning to the parser via the raw
    positions stored in each token (tokens are produced over the whole
    text, and constructors are re-scanned from the source by position).
    To keep things simple the lexer recognizes the constructor forms
    used by the translation (``<name .../>`` and
    ``<name>text</name>``) directly as CONSTRUCTOR tokens.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if char in " \t\r":
            pos += 1
            continue
        column = pos - line_start + 1
        if text.startswith("(:", pos):  # XQuery comment
            end = text.find(":)", pos + 2)
            if end == -1:
                raise XQueryError("unterminated comment", line, column)
            pos = end + 2
            continue
        if char in "'\"":
            end = text.find(char, pos + 1)
            if end == -1:
                raise XQueryError("unterminated string literal", line, column)
            tokens.append(Token("STRING", text[pos + 1: end], line, column))
            pos = end + 1
            continue
        if char.isdigit():
            start = pos
            while pos < length and (text[pos].isdigit() or text[pos] == "."):
                pos += 1
            raw = text[start:pos]
            value: int | float = float(raw) if "." in raw else int(raw)
            tokens.append(Token("NUMBER", value, line, column))
            continue
        if char == "<" and pos + 1 < length and (
                text[pos + 1].isalpha() or text[pos + 1] == "_"):
            pos = _scan_constructor(text, pos, line, column, tokens)
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (text[pos].isalnum()
                                    or text[pos] in "_-"):
                pos += 1
            word = text[start:pos]
            if word in KEYWORDS:
                tokens.append(Token(word.upper(), word, line, column))
            else:
                tokens.append(Token("NAME", word, line, column))
            continue
        matched = False
        for symbol, kind in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(kind, symbol, line, column))
                pos += len(symbol)
                matched = True
                break
        if not matched:
            raise XQueryError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("EOF", "", line, length - line_start + 1))
    return tokens


def _scan_constructor(text: str, pos: int, line: int, column: int,
                      tokens: list[Token]) -> int:
    """Scan ``<tag .../>`` or ``<tag>text</tag>`` as one token.

    The translation only emits the empty ``<idle/>`` element; simple
    text-content constructors are supported for completeness.  The
    token value is the raw constructor text.
    """
    end_open = text.find(">", pos)
    if end_open == -1:
        raise XQueryError("unterminated element constructor", line, column)
    if text[end_open - 1] == "/":
        tokens.append(Token("CONSTRUCTOR", text[pos: end_open + 1], line,
                            column))
        return end_open + 1
    close = text.find("</", end_open)
    if close == -1:
        raise XQueryError("unterminated element constructor", line, column)
    if "<" in text[end_open + 1: close]:
        raise XQueryError(
            "nested element constructors are not supported", line, column)
    end_close = text.find(">", close)
    if end_close == -1:
        raise XQueryError("unterminated element constructor", line, column)
    tokens.append(Token("CONSTRUCTOR", text[pos: end_close + 1], line,
                        column))
    return end_close + 1
