"""Built-in function library of the XQuery engine.

Each function takes already-evaluated argument sequences.  Functions
that depend on the dynamic context (``position()``, ``last()``, context
``string()``...) are handled by the engine itself.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import XQueryEvaluationError
from repro.xquery.values import (
    UntypedAtomic,
    atomize,
    effective_boolean_value,
    is_node,
    string_value,
    to_number,
)
from repro.xtree.node import Document, Element, Node, Text

Sequence = list
FunctionImpl = Callable[..., Sequence]


def _singleton_string(args: Sequence, what: str) -> str:
    if not args:
        return ""
    if len(args) > 1:
        raise XQueryEvaluationError(f"{what} expects a singleton")
    return string_value(args[0])


def fn_count(argument: Sequence) -> Sequence:
    return [len(argument)]


def fn_exists(argument: Sequence) -> Sequence:
    return [bool(argument)]


def fn_empty(argument: Sequence) -> Sequence:
    return [not argument]


def fn_not(argument: Sequence) -> Sequence:
    return [not effective_boolean_value(argument)]


def fn_boolean(argument: Sequence) -> Sequence:
    return [effective_boolean_value(argument)]


def fn_true() -> Sequence:
    return [True]


def fn_false() -> Sequence:
    return [False]


def fn_string(argument: Sequence) -> Sequence:
    return [_singleton_string(argument, "string()")]


def fn_number(argument: Sequence) -> Sequence:
    if not argument:
        return [float("nan")]
    if len(argument) > 1:
        raise XQueryEvaluationError("number() expects a singleton")
    return [to_number(argument[0])]


def fn_concat(*arguments: Sequence) -> Sequence:
    return ["".join(_singleton_string(arg, "concat()") for arg in arguments)]


def fn_contains(haystack: Sequence, needle: Sequence) -> Sequence:
    return [_singleton_string(needle, "contains()")
            in _singleton_string(haystack, "contains()")]


def fn_starts_with(haystack: Sequence, prefix: Sequence) -> Sequence:
    return [_singleton_string(haystack, "starts-with()").startswith(
        _singleton_string(prefix, "starts-with()"))]


def fn_string_length(argument: Sequence) -> Sequence:
    return [len(_singleton_string(argument, "string-length()"))]


def fn_substring(source: Sequence, start: Sequence,
                 length: Sequence | None = None) -> Sequence:
    text = _singleton_string(source, "substring()")
    begin = round(to_number(start[0])) if start else 1
    if length is not None:
        count = round(to_number(length[0])) if length else 0
        return [text[max(begin - 1, 0): max(begin - 1 + count, 0)]]
    return [text[max(begin - 1, 0):]]


def fn_upper_case(argument: Sequence) -> Sequence:
    return [_singleton_string(argument, "upper-case()").upper()]


def fn_lower_case(argument: Sequence) -> Sequence:
    return [_singleton_string(argument, "lower-case()").lower()]


def fn_normalize_space(argument: Sequence) -> Sequence:
    return [" ".join(_singleton_string(argument,
                                       "normalize-space()").split())]


def fn_string_join(argument: Sequence, separator: Sequence) -> Sequence:
    sep = _singleton_string(separator, "string-join()")
    return [sep.join(string_value(item) for item in argument)]


def fn_distinct_values(argument: Sequence) -> Sequence:
    result: Sequence = []
    seen: set[object] = set()
    for item in atomize(argument):
        key: object = item
        if isinstance(item, UntypedAtomic):
            key = str(item)
        if isinstance(item, float) and item.is_integer():
            key = int(item)
        if key not in seen:
            seen.add(key)
            result.append(item)
    return result


def _numbers(argument: Sequence, what: str) -> list[float]:
    numbers: list[float] = []
    for item in atomize(argument):
        value = to_number(item)
        if math.isnan(value):
            raise XQueryEvaluationError(f"{what} over a non-numeric value")
        numbers.append(value)
    return numbers


def _maybe_int(value: float) -> int | float:
    return int(value) if float(value).is_integer() else value


def fn_sum(argument: Sequence) -> Sequence:
    return [_maybe_int(sum(_numbers(argument, "sum()")))]


def fn_avg(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "avg()")
    if not numbers:
        return []
    return [sum(numbers) / len(numbers)]


def fn_min(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "min()")
    return [_maybe_int(min(numbers))] if numbers else []


def fn_max(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "max()")
    return [_maybe_int(max(numbers))] if numbers else []


def fn_floor(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "floor()")
    return [int(math.floor(numbers[0]))] if numbers else []


def fn_ceiling(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "ceiling()")
    return [int(math.ceil(numbers[0]))] if numbers else []


def fn_round(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "round()")
    return [int(math.floor(numbers[0] + 0.5))] if numbers else []


def fn_abs(argument: Sequence) -> Sequence:
    numbers = _numbers(argument, "abs()")
    return [_maybe_int(abs(numbers[0]))] if numbers else []


def fn_name(argument: Sequence) -> Sequence:
    if not argument:
        return [""]
    item = argument[0]
    if isinstance(item, Element):
        return [item.tag]
    return [""]


def fn_root(argument: Sequence) -> Sequence:
    if not argument:
        return []
    item = argument[0]
    if isinstance(item, (Element, Text)):
        return [item.root()]
    if isinstance(item, Document):
        return [item.root]
    raise XQueryEvaluationError("root() expects a node")


def fn_data(argument: Sequence) -> Sequence:
    return atomize(argument)


def fn_text(argument: Sequence) -> Sequence:
    """Non-standard convenience: text node children of the argument."""
    result: Sequence = []
    for item in argument:
        if isinstance(item, Element):
            result.extend(child for child in item.children
                          if isinstance(child, Text))
    return result


REGISTRY: dict[str, tuple[FunctionImpl, int, int]] = {
    # name -> (implementation, min arity, max arity)
    "count": (fn_count, 1, 1),
    "exists": (fn_exists, 1, 1),
    "empty": (fn_empty, 1, 1),
    "not": (fn_not, 1, 1),
    "boolean": (fn_boolean, 1, 1),
    "true": (fn_true, 0, 0),
    "false": (fn_false, 0, 0),
    "string": (fn_string, 1, 1),
    "number": (fn_number, 1, 1),
    "concat": (fn_concat, 2, 99),
    "contains": (fn_contains, 2, 2),
    "starts-with": (fn_starts_with, 2, 2),
    "string-length": (fn_string_length, 1, 1),
    "substring": (fn_substring, 2, 3),
    "upper-case": (fn_upper_case, 1, 1),
    "lower-case": (fn_lower_case, 1, 1),
    "normalize-space": (fn_normalize_space, 1, 1),
    "string-join": (fn_string_join, 2, 2),
    "distinct-values": (fn_distinct_values, 1, 1),
    "sum": (fn_sum, 1, 1),
    "avg": (fn_avg, 1, 1),
    "min": (fn_min, 1, 1),
    "max": (fn_max, 1, 1),
    "floor": (fn_floor, 1, 1),
    "ceiling": (fn_ceiling, 1, 1),
    "round": (fn_round, 1, 1),
    "abs": (fn_abs, 1, 1),
    "name": (fn_name, 1, 1),
    "root": (fn_root, 1, 1),
    "data": (fn_data, 1, 1),
    "text": (fn_text, 1, 1),
}
