"""Set-at-a-time evaluation of planned quantifiers over column stores.

The planner's tuple-at-a-time search (``_compile_some``) walks one
nested-loop tree per candidate tuple.  This module lowers the same
chosen binding order to a *frontier* pipeline: each level is one
vectorized operation over a whole column of candidate rows —

* ``_Scan`` — all elements of a tag, straight from the column store's
  :class:`~repro.relational.columns.TagTable`;
* ``_Down`` — a chain of child steps, served by the table's
  parent-grouped column when available;
* ``_Values`` — a trailing ``text()``/attribute step, served by the
  store's :class:`~repro.relational.columns.PathIndex` atoms, one row
  per atom, carried as canonical hash-key sets;
* ``_Parent`` — the parent step (DOM parent pointers);
* ``_Const`` — a quantifier-variable-free source (outer-variable
  parameters like ``$__p_ir/name/text()``), evaluated once and
  cross-expanded;
* ``_Join`` — an uncorrelated ``//tag`` source with an equality
  conjunct, probed against the store's hook-maintained value index —
  the step that replaces the engine's per-check hash-index builds.

Equality conjuncts become key-set intersection filters.  Only ``=``
is vectorized: by the :func:`repro.xquery.optimizer.hash_keys`
invariant, two atoms can general-compare equal iff they share a key,
so equality is decided entirely in key space.  Everything else —
other comparison operators, function calls, nested quantifiers,
sources outside the fragment — makes :func:`lower_some` refuse, and
the planner keeps its tuple-at-a-time search (verdict parity is the
differential suite's job).  At run time, a missing store or an
oversized frontier raises :class:`Bail` and the planner falls back the
same way.
"""

from __future__ import annotations

from typing import Callable

from repro.xquery import planner as _planner
from repro.xquery.ast import BinaryOp, Expression, PathExpr, VarRef
from repro.xquery.optimizer import (
    focus_free,
    free_variables,
    hash_keys,
    probe_keys,
)
from repro.xquery.planner import _eval_downpath, _Runtime
from repro.xquery.values import atomize
from repro.xtree.node import Element

#: refuse frontiers beyond this many rows and fall back to the
#: tuple-at-a-time search, whose memory use is bounded by depth
_FRONTIER_CAP = 200_000

Downpath = tuple[tuple[str, str], ...]


class Bail(Exception):
    """Raised mid-run when vectorized evaluation cannot proceed."""


class _RunContext:
    """Per-run caches: value indexes, child groups, per-item key sets."""

    __slots__ = ("rt", "indexes", "groups", "item_keys")

    def __init__(self, rt: _Runtime) -> None:
        self.rt = rt
        #: (doc id, tag, steps) → PathIndex
        self.indexes: dict[tuple, object] = {}
        #: (doc id, tag) → parent id → [elements]
        self.groups: dict[tuple, dict[int, list[Element]]] = {}
        #: (side kind, steps?) → id(item) → frozenset of hash keys
        self.item_keys: dict[tuple, dict[int, frozenset]] = {}

    def index_for(self, element: Element, tag: str, steps: Downpath):
        document = element.document
        if document is None:
            return None
        key = (id(document), tag, steps)
        index = self.indexes.get(key)
        if index is None:
            store = document.column_store
            if store is None:
                raise Bail("column store detached mid-run")
            index = store.value_index(tag, steps)
            self.indexes[key] = index
        return index

    def children_of(self, element: Element, tag: str) -> list[Element]:
        document = element.document
        if document is not None and document.column_store is not None:
            key = (id(document), tag)
            groups = self.groups.get(key)
            if groups is None:
                groups = document.column_store.table(tag).children_groups()
                self.groups[key] = groups
            return groups.get(element.node_id or -1, [])
        return [child for child in element.children
                if isinstance(child, Element) and child.tag == tag]


# ---------------------------------------------------------------------------
# Comparison sides (filters and join probes)
# ---------------------------------------------------------------------------

class _SideVar:
    """A bare quantifier variable: keys from its frontier column."""

    __slots__ = ("name", "is_keys")

    def __init__(self, name: str, is_keys: bool) -> None:
        self.name = name
        self.is_keys = is_keys

    def refs(self) -> frozenset[str]:
        return frozenset((self.name,))

    def keys_fn(self, ctx: _RunContext,
                cols: dict[str, list]) -> Callable[[int], frozenset]:
        column = cols[self.name]
        if self.is_keys:
            return column.__getitem__
        memo = ctx.item_keys.setdefault(("item",), {})

        def keys_of(i: int) -> frozenset:
            item = column[i]
            keys = memo.get(id(item))
            if keys is None:
                keys = frozenset(probe_keys([item]))
                memo[id(item)] = keys
            return keys
        return keys_of


class _SidePath:
    """A downward path rooted at an ITEMS variable.

    Served by the store's value index when the variable's tag is known
    statically; computed per distinct item otherwise — the formula is
    identical either way (``atomize`` × ``hash_keys``).
    """

    __slots__ = ("name", "steps", "tag")

    def __init__(self, name: str, steps: Downpath,
                 tag: str | None) -> None:
        self.name = name
        self.steps = steps
        self.tag = tag

    def refs(self) -> frozenset[str]:
        return frozenset((self.name,))

    def keys_fn(self, ctx: _RunContext,
                cols: dict[str, list]) -> Callable[[int], frozenset]:
        column = cols[self.name]
        memo = ctx.item_keys.setdefault(("path", self.steps), {})
        tag = self.tag
        steps = self.steps

        def keys_of(i: int) -> frozenset:
            item = column[i]
            keys = memo.get(id(item))
            if keys is not None:
                return keys
            if not isinstance(item, Element):
                keys = frozenset()
            else:
                index = ctx.index_for(item, tag, steps) \
                    if tag is not None and item.tag == tag else None
                if index is not None:
                    keys = index.flat_keys(item.node_id or -1)
                else:
                    keys = frozenset(
                        key for atom in
                        atomize(_eval_downpath(steps, item))
                        for key in hash_keys(atom))
            memo[id(item)] = keys
            return keys
        return keys_of


class _SideConst:
    """A quantifier-variable-free expression, evaluated once per run."""

    __slots__ = ("closure",)

    def __init__(self, closure: Callable) -> None:
        self.closure = closure

    def refs(self) -> frozenset[str]:
        return frozenset()

    def keys_fn(self, ctx: _RunContext,
                cols: dict[str, list]) -> Callable[[int], frozenset]:
        keys = frozenset(probe_keys(self.closure(ctx.rt)))
        return lambda i: keys


_Side = "_SideVar | _SidePath | _SideConst"


# ---------------------------------------------------------------------------
# Frontier operations (one per binding, in the planner's chosen order)
# ---------------------------------------------------------------------------

class _Scan:
    """All elements of ``//tag`` (level 0 only)."""

    __slots__ = ("name", "tag")
    kind = "scan"

    def __init__(self, name: str, tag: str) -> None:
        self.name = name
        self.tag = tag

    def refs(self) -> frozenset[str]:
        return frozenset()

    def expand(self, ctx: _RunContext, cols: dict[str, list],
               count: int) -> tuple[list[int], list]:
        elements: list = []
        for document in ctx.rt.documents:
            store = document.column_store
            if store is None:
                raise Bail("column store detached mid-run")
            elements.extend(store.table(self.tag).elements)
        return [0] * len(elements), elements


class _Down:
    """A chain of named child steps from an ITEMS variable."""

    __slots__ = ("name", "source", "tags")
    kind = "down"

    def __init__(self, name: str, source: str,
                 tags: tuple[str, ...]) -> None:
        self.name = name
        self.source = source
        self.tags = tags

    def refs(self) -> frozenset[str]:
        return frozenset((self.source,))

    def expand(self, ctx: _RunContext, cols: dict[str, list],
               count: int) -> tuple[list[int], list]:
        column = cols[self.source]
        take: list[int] = []
        values: list = []
        memo: dict[int, list] = {}
        for i in range(count):
            item = column[i]
            current = memo.get(id(item))
            if current is None:
                if isinstance(item, Element):
                    current = [item]
                    for tag in self.tags:
                        current = [
                            child for element in current
                            for child in ctx.children_of(element, tag)]
                        if not current:
                            break
                else:
                    current = []
                memo[id(item)] = current
            for child in current:
                take.append(i)
                values.append(child)
        return take, values


class _Values:
    """A value-producing downpath (trailing ``text()``/attribute).

    One row per atom; the carried value is the atom's canonical
    hash-key set, which is all any surviving use (an ``=`` side or a
    join probe) ever needs.
    """

    __slots__ = ("name", "source", "steps", "source_tag")
    kind = "values"

    def __init__(self, name: str, source: str, steps: Downpath,
                 source_tag: str | None) -> None:
        self.name = name
        self.source = source
        self.steps = steps
        self.source_tag = source_tag

    def refs(self) -> frozenset[str]:
        return frozenset((self.source,))

    def expand(self, ctx: _RunContext, cols: dict[str, list],
               count: int) -> tuple[list[int], list]:
        column = cols[self.source]
        take: list[int] = []
        values: list = []
        tag = self.source_tag
        memo: dict[int, list[frozenset]] = {}
        for i in range(count):
            item = column[i]
            key_sets = memo.get(id(item))
            if key_sets is None:
                if not isinstance(item, Element):
                    atoms: tuple = ()
                else:
                    index = ctx.index_for(item, tag, self.steps) \
                        if tag is not None and item.tag == tag else None
                    if index is not None:
                        atoms = index.atoms_of.get(
                            item.node_id or -1, ())
                    else:
                        atoms = tuple(
                            tuple(hash_keys(atom)) for atom in
                            atomize(_eval_downpath(self.steps, item)))
                key_sets = [frozenset(atom) for atom in atoms]
                memo[id(item)] = key_sets
            for keys in key_sets:
                take.append(i)
                values.append(keys)
        return take, values


class _Parent:
    """The parent step from an ITEMS variable."""

    __slots__ = ("name", "source")
    kind = "parent"

    def __init__(self, name: str, source: str) -> None:
        self.name = name
        self.source = source

    def refs(self) -> frozenset[str]:
        return frozenset((self.source,))

    def expand(self, ctx: _RunContext, cols: dict[str, list],
               count: int) -> tuple[list[int], list]:
        column = cols[self.source]
        take: list[int] = []
        values: list = []
        for i in range(count):
            item = column[i]
            parent = item.parent if isinstance(item, Element) else None
            if parent is not None:
                take.append(i)
                values.append(parent)
        return take, values


class _Const:
    """A quantifier-variable-free source: evaluate once, cross-expand."""

    __slots__ = ("name", "closure")
    kind = "const"

    def __init__(self, name: str, closure: Callable) -> None:
        self.name = name
        self.closure = closure

    def refs(self) -> frozenset[str]:
        return frozenset()

    def expand(self, ctx: _RunContext, cols: dict[str, list],
               count: int) -> tuple[list[int], list]:
        items = list(self.closure(ctx.rt))
        if count * len(items) > _FRONTIER_CAP:
            raise Bail("constant cross-expansion exceeds frontier cap")
        take: list[int] = []
        values: list = []
        for i in range(count):
            for item in items:
                take.append(i)
                values.append(item)
        return take, values


class _Join:
    """An uncorrelated ``//tag`` source probed through a value index.

    The vectorized form of the planner's ``_HashJoinStep``: instead of
    building a hash index per check (or per cache miss), probe the
    store's incrementally-maintained index directly.
    """

    __slots__ = ("name", "tag", "steps", "probe")
    kind = "join"

    def __init__(self, name: str, tag: str, steps: Downpath,
                 probe: object) -> None:
        self.name = name
        self.tag = tag
        self.steps = steps
        self.probe = probe

    def refs(self) -> frozenset[str]:
        return self.probe.refs()  # type: ignore[attr-defined]

    def expand(self, ctx: _RunContext, cols: dict[str, list],
               count: int) -> tuple[list[int], list]:
        indexes = []
        for document in ctx.rt.documents:
            store = document.column_store
            if store is None:
                raise Bail("column store detached mid-run")
            indexes.append(store.value_index(self.tag, self.steps))
        keys_of = self.probe.keys_fn(ctx, cols)  # type: ignore
        take: list[int] = []
        values: list = []
        matched_memo: dict[frozenset, list[Element]] = {}
        for i in range(count):
            keys = keys_of(i)
            matched = matched_memo.get(keys)
            if matched is None:
                matched = []
                seen: set[int] = set()
                for key in keys:
                    for index in indexes:
                        bucket = index.buckets.get(key)
                        if not bucket:
                            continue
                        for node_id, element in bucket.items():
                            if node_id not in seen:
                                seen.add(node_id)
                                matched.append(element)
                matched_memo[keys] = matched
            for element in matched:
                take.append(i)
                values.append(element)
        return take, values


# ---------------------------------------------------------------------------
# Levels and the compiled vector plan
# ---------------------------------------------------------------------------

class _Level:
    """One binding: expand, filter by key intersection, project, dedup.

    ``carry`` is every variable the level itself needs materialized
    (filter sides plus downstream ``keep``); ``keep`` is what survives
    into the next level.
    """

    __slots__ = ("op", "filters", "keep", "carry")

    def __init__(self, op, filters: list[tuple], keep: tuple[str, ...],
                 carry: tuple[str, ...]) -> None:
        self.op = op
        self.filters = filters
        self.keep = keep
        self.carry = carry

    def apply(self, ctx: _RunContext, cols: dict[str, list], count: int,
              qindex: int, level: int) -> tuple[dict[str, list], int]:
        take, values = self.op.expand(ctx, cols, count)
        total = len(values)
        if total > _FRONTIER_CAP:
            raise Bail("frontier exceeds row cap")
        profile = ctx.rt.profile
        counters = None if profile is None \
            else profile.setdefault((qindex, level), [0, 0])
        if counters is not None:
            counters[0] += total
        name = self.op.name
        expanded = {variable: [cols[variable][i] for i in take]
                    for variable in self.carry if variable != name}
        expanded[name] = values
        if not self.keep:
            # Nothing survives this level: the frontier collapses to a
            # single witness row, and filters can short-circuit on the
            # first surviving row.
            survived = self._any_row(ctx, expanded, total)
            if counters is not None:
                counters[1] += 1 if survived else 0
            return {}, (1 if survived else 0)
        kept: list[int] | None = None  # None = every row survives
        for left, right in self.filters:
            left_of = left.keys_fn(ctx, expanded)
            right_of = right.keys_fn(ctx, expanded)
            candidates = range(total) if kept is None else kept
            kept = [i for i in candidates
                    if not left_of(i).isdisjoint(right_of(i))]
        if kept is None:
            projected = {variable: expanded[variable]
                         for variable in self.keep}
            count = total
        else:
            projected = {variable: [expanded[variable][i] for i in kept]
                         for variable in self.keep}
            count = len(kept)
        if counters is not None:
            counters[1] += count
        # Dedup rows over the projected variables: expansion is
        # multiplicative, and truth only needs one witness per
        # combination of values still in play.
        if count > 1:
            try:
                columns = [projected[variable] for variable in self.keep]
                seen: set[tuple] = set()
                rows: list[int] = []
                if len(columns) == 1:
                    unique: list = []
                    for item in columns[0]:
                        if item not in seen:
                            seen.add(item)
                            unique.append(item)
                    if len(unique) != count:
                        projected = {self.keep[0]: unique}
                        count = len(unique)
                else:
                    for i, row in enumerate(zip(*columns)):
                        if row not in seen:
                            seen.add(row)
                            rows.append(i)
                    if len(rows) != count:
                        projected = {
                            variable: [projected[variable][i]
                                       for i in rows]
                            for variable in self.keep}
                        count = len(rows)
            except TypeError:  # pragma: no cover - all carried values
                pass           # are hashable today; stay safe anyway
        return projected, count

    def _any_row(self, ctx: _RunContext, expanded: dict[str, list],
                 total: int) -> bool:
        """Whether any row survives every filter (early exit)."""
        if not self.filters:
            return total > 0
        sides = [(left.keys_fn(ctx, expanded),
                  right.keys_fn(ctx, expanded))
                 for left, right in self.filters]
        if len(sides) == 1:
            left_of, right_of = sides[0]
            for i in range(total):
                if not left_of(i).isdisjoint(right_of(i)):
                    return True
            return False
        for i in range(total):
            if all(not left_of(i).isdisjoint(right_of(i))
                   for left_of, right_of in sides):
                return True
        return False


class VectorSome:
    """The vectorized form of one ``some`` quantifier."""

    __slots__ = ("levels", "qindex")

    def __init__(self, levels: list[_Level], qindex: int) -> None:
        self.levels = levels
        self.qindex = qindex

    def ready(self, rt: _Runtime) -> str | None:
        """``None`` when runnable, else the reason it is not."""
        if not _planner.columnar_enabled():
            return "columnar evaluation disabled"
        for document in rt.documents:
            if document.column_store is None:
                return "no column store attached"
        return None

    def run(self, rt: _Runtime) -> bool:
        """Existential truth by frontier evaluation.

        Raises :class:`Bail` when a store disappears mid-run or the
        frontier outgrows the cap; the caller falls back to the
        tuple-at-a-time search.
        """
        ctx = _RunContext(rt)
        cols: dict[str, list] = {}
        count = 1
        for level, spec in enumerate(self.levels):
            cols, count = spec.apply(ctx, cols, count, self.qindex,
                                     level)
            if count == 0:
                return False
        return True


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

def lower_some(bindings, name_set: frozenset[str], qindex: int,
               pl) -> "tuple[VectorSome | None, str | None]":
    """Lower one planned ``some`` quantifier to a vector plan.

    ``bindings`` is the planner's per-binding description, already in
    the chosen order: ``(name, source, factors, equality, correlated)``
    with ``equality`` the ``(factor, key_side, probe_side)`` conjunct a
    hash join would consume (or ``None``).  Returns ``(plan, None)``
    or ``(None, reason)`` — any construct outside the vectorizable
    fragment refuses the whole quantifier, never one binding.
    """
    kinds: dict[str, tuple[str, str | None]] = {}
    lowered: list[tuple] = []
    names = [name for name, *_ in bindings]
    if len(set(names)) != len(names):
        return None, "duplicate binding variable"
    for level, (name, source, factors, equality, correlated) \
            in enumerate(bindings):
        op, reason = _lower_binding(name, source, equality, correlated,
                                    level, kinds, name_set, pl)
        if op is None:
            return None, reason
        filters = []
        consumed = equality[0] if isinstance(op, _Join) \
            and equality is not None else None
        for factor in factors:
            if factor is consumed:
                continue
            comparison, why = _lower_filter(factor, kinds, name_set, pl)
            if comparison is None:
                return None, why
            filters.append(comparison)
        lowered.append((op, filters))
    needed: frozenset[str] = frozenset()
    shapes: list[tuple[tuple[str, ...], tuple[str, ...]]] = []
    for op, filters in reversed(lowered):
        keep = tuple(sorted(needed))
        side_refs: frozenset[str] = frozenset()
        for left, right in filters:
            side_refs |= left.refs() | right.refs()
        carry = tuple(sorted(set(keep) | side_refs))
        shapes.append((keep, carry))
        needed = (needed | side_refs | op.refs()) - {op.name}
    shapes.reverse()
    levels = [_Level(op, filters, keep, carry)
              for (op, filters), (keep, carry) in zip(lowered, shapes)]
    return VectorSome(levels, qindex), None


def _lower_binding(name: str, source: Expression, equality, correlated,
                   level: int, kinds: dict, name_set: frozenset[str],
                   pl) -> "tuple[object | None, str | None]":
    tag = _planner._simple_descendant_tag(source)
    if equality is not None and tag is not None:
        steps = _planner._var_downpath(equality[1], name)
        if steps is not None:
            probe, why = _lower_side(equality[2], kinds, name_set, pl)
            if probe is not None:
                kinds[name] = ("items", tag)
                return _Join(name, tag, steps, probe), None
            return None, f"join probe for ${name}: {why}"
        return None, f"join key side for ${name} is not a downpath"
    if correlated:
        return _lower_correlated(name, source, kinds, name_set)
    if tag is not None:
        if level == 0:
            kinds[name] = ("items", tag)
            return _Scan(name, tag), None
        return None, f"uncorrelated scan of //{tag} after level 0"
    if not (free_variables(source) & name_set) and focus_free(source):
        kinds[name] = ("items", None)
        return _Const(name, _planner._compile(source, pl)), None
    return None, f"source of ${name} outside the columnar fragment"


def _lower_correlated(name: str, source: Expression, kinds: dict,
                      name_set: frozenset[str]
                      ) -> "tuple[object | None, str | None]":
    if not isinstance(source, PathExpr) \
            or not isinstance(source.start, VarRef):
        return None, f"correlated source of ${name} is not a var path"
    root = source.start.name
    if root not in kinds:
        return None, f"source of ${name} uses an outer-scope variable"
    root_kind, root_tag = kinds[root]
    if root_kind != "items":
        return None, f"source of ${name} navigates from a value"
    steps = source.steps
    if len(steps) == 1 and steps[0].axis == "parent" \
            and not steps[0].predicates \
            and not any(source.descendant_flags):
        kinds[name] = ("items", None)
        return _Parent(name, root), None
    downpath = _planner._var_downpath(source, root)
    if downpath is None:
        return None, f"source of ${name} is not a plain downpath"
    last_axis, last_test = downpath[-1]
    prefix = downpath[:-1]
    if any(axis != "child" or nodetest == "text()"
           for axis, nodetest in prefix):
        return None, f"source of ${name} mixes values into the path"
    if last_axis == "attribute" or last_test == "text()":
        kinds[name] = ("keys", None)
        return _Values(name, root, downpath, root_tag), None
    kinds[name] = ("items", last_test)
    return _Down(name, root,
                 tuple(nodetest for _, nodetest in downpath)), None


def _lower_filter(factor: Expression, kinds: dict,
                  name_set: frozenset[str],
                  pl) -> "tuple[tuple | None, str | None]":
    if not isinstance(factor, BinaryOp) or factor.op != "=":
        return None, "non-equality conjunct"
    left, left_why = _lower_side(factor.left, kinds, name_set, pl)
    if left is None:
        return None, left_why
    right, right_why = _lower_side(factor.right, kinds, name_set, pl)
    if right is None:
        return None, right_why
    return (left, right), None


def _lower_side(expression: Expression, kinds: dict,
                name_set: frozenset[str],
                pl) -> "tuple[object | None, str | None]":
    if isinstance(expression, VarRef) and expression.name in name_set:
        bound = kinds.get(expression.name)
        if bound is None:
            return None, f"${expression.name} referenced before binding"
        return _SideVar(expression.name, bound[0] == "keys"), None
    if isinstance(expression, PathExpr) \
            and isinstance(expression.start, VarRef) \
            and expression.start.name in name_set:
        root = expression.start.name
        bound = kinds.get(root)
        if bound is None or bound[0] != "items":
            return None, f"path from ${root} is not navigable"
        steps = _planner._var_downpath(expression, root)
        if steps is None:
            return None, f"path from ${root} is not a plain downpath"
        return _SidePath(root, steps, bound[1]), None
    if not (free_variables(expression) & name_set) \
            and focus_free(expression):
        return _SideConst(_planner._compile(expression, pl)), None
    return None, "comparison side outside the columnar fragment"
