"""Cost-based check planner: the layer between optimizer and engine.

The translated integrity checks are existential conjunctive queries
(``some $v1 in s1, ... satisfies F1 and ... and Fk``).  The engine's
frontier evaluation (:mod:`repro.xquery.optimizer`) already pushes
conditions down and hash-joins uncorrelated equalities, but it keeps
the *source order* of the bindings, materializes every intermediate
frontier, and pays an immutable-context copy per candidate tuple.

This module plans and compiles each prepared check instead:

* **statistics** — per-document, per-tag cardinalities and
  distinct-value counts served by the incremental tag index
  (:meth:`repro.xtree.node.Document.tag_count` /
  :meth:`~repro.xtree.node.Document.tag_distinct_count`, maintained
  under the per-document lock), with DTD cardinality bounds
  (:meth:`repro.core.schema.ConstraintSchema.cardinality_priors`) as
  priors for empty or cold documents;
* **planning** — independent quantifier bindings are reordered
  greedily by estimated cardinality x selectivity (hash-joinable
  bindings are discounted by the key's distinct count), conjuncts are
  re-assigned to the earliest position of the chosen order, and
  equality predicates on ``//tag`` steps are turned into value-index
  probes;
* **compilation** — the plan is compiled to Python closures over a
  mutable variable environment and evaluated depth-first with early
  exit: ``some`` stops at the first witness, ``every`` at the first
  counterexample, and binding sources stream through generators
  instead of materializing node sequences.  Constructs outside the
  compiled fragment fall back to :func:`repro.xquery.engine._evaluate`
  through a bridging :class:`~repro.xquery.engine.QueryContext`, so
  planned evaluation is *total*: every query the engine accepts runs,
  with identical verdicts;
* **caching** — plans are cached per (query, document set) and
  revalidated against the documents' revision vector; the compiled
  closures are shared per (query, strategy), so a statistics refresh
  that does not change the chosen order costs only the re-estimate;
* **batching** — :func:`batch_scope` installs a per-thread overlay
  that keeps the cacheable value indexes (hash joins and predicate
  probes) *incrementally repaired* across the updates of a batch:
  after each applied update the affected entries are patched (inserted
  elements added, re-keyed ancestors fixed) and re-registered under
  the new revision state, instead of being rebuilt from scratch on the
  next check.  This is what :meth:`repro.core.guard.IntegrityGuard.
  check_batch` uses to make N same-pattern updates cheaper than N
  sequential ``try_execute`` calls.

Planned evaluation serves *truth* (effective-boolean-value) queries —
the form every integrity check takes.  Sequence order is not part of
that contract: the planner is free to reorder and deduplicate node
sets as long as the verdict (and every count/aggregate feeding it)
matches the unplanned engine, which the differential test suite
asserts verdict-for-verdict.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.analysis.concurrency import make_lock
from repro.errors import XQueryEvaluationError
from repro.testing.failpoints import fail
from repro.xquery import engine, functions
from repro.xquery.ast import (
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathExpr,
    Quantified,
    SequenceExpr,
    TextLiteral,
    UnaryOp,
    VarRef,
    WhereClause,
)
from repro.xquery.engine import QueryContext
from repro.xquery.optimizer import (
    boolean_filter_safe,
    conjuncts,
    focus_free,
    free_variables,
    hash_keys,
    index_dependencies,
    probe_keys,
)
from repro.xquery.values import (
    Sequence,
    UntypedAtomic,
    atomize,
    effective_boolean_value,
    general_compare,
)
from repro.xtree.node import Document, Element, Node, Text

__all__ = [
    "Statistics",
    "batch_scope",
    "columnar_enabled",
    "enabled",
    "explain_query",
    "install_priors",
    "note_batch_mutation",
    "query_truth_planned",
    "unplanned",
    "without_columns",
]


# ---------------------------------------------------------------------------
# Enablement and priors
# ---------------------------------------------------------------------------

_STATE = threading.local()


def enabled() -> bool:
    """Whether planned evaluation is active on this thread."""
    return getattr(_STATE, "enabled", True)


def set_enabled(flag: bool) -> None:
    _STATE.enabled = bool(flag)


@contextmanager
def unplanned():
    """Temporarily route checks through the unplanned engine.

    The ablation switch: benchmarks and the differential suite compare
    the two paths with everything else held equal.
    """
    previous = enabled()
    _STATE.enabled = False
    try:
        yield
    finally:
        _STATE.enabled = previous


def columnar_enabled() -> bool:
    """Whether columnar (vectorized) evaluation is active on this
    thread.  Orthogonal to :func:`enabled`: planned evaluation can run
    with the columnar backend ablated (:func:`without_columns`), and
    :func:`unplanned` disables both."""
    return getattr(_STATE, "columnar", True)


def set_columnar(flag: bool) -> None:
    _STATE.columnar = bool(flag)


@contextmanager
def without_columns():
    """Temporarily ablate the columnar backend (keep planned DOM).

    The second ablation switch: benchmarks compare columnar against
    planned-DOM evaluation with plans, caches and corpus held equal.
    """
    previous = columnar_enabled()
    _STATE.columnar = False
    try:
        yield
    finally:
        _STATE.columnar = previous


#: tag → expected element count from DTD cardinality bounds; consulted
#: only when the live count is zero (empty/cold documents), so it can
#: only ever influence plan *order*, never a verdict
_PRIORS: dict[str, float] = {}  # guarded-by: _PRIORS_LOCK
_PRIORS_LOCK = make_lock("planner.priors")

#: actual-vs-estimated ratio past which an explain run treats a
#: binding's estimate as drifted: the observed cardinality is fed back
#: into the planner and the cached plan for that query is invalidated,
#: so the next evaluation re-plans with the corrected number
REPLAN_DRIFT_THRESHOLD = 8.0

#: drift on tiny scans is noise (a handful of rows reorders nothing
#: and the ratio denominator is ~1); only feed back real volume
_REPLAN_MIN_EXAMINED = 16

_FEEDBACK_CAPACITY = 256

#: (quantified expression, original binding index) → observed source
#: cardinality from a drifted explain run; overrides the statistical
#: estimate (taking the max) until the table is cleared.  Like the
#: priors, feedback can only influence plan *order*, never a verdict.
_FEEDBACK: "OrderedDict[tuple, float]" = \
    OrderedDict()  # guarded-by: _PRIORS_LOCK


def _feedback_estimate(quantified: "Quantified", original_index: int,
                       estimate: float) -> float:
    """Blend an explain-observed cardinality into an estimate."""
    with _PRIORS_LOCK:
        observed = _FEEDBACK.get((quantified, original_index))
    if observed is None:
        return estimate
    return max(estimate, observed)


def note_drift(quantified: "Quantified", original_index: int,
               examined: int) -> None:
    """Record an observed cardinality for a drifted binding.

    Called by :func:`explain_query` when a binding examined far more
    items than estimated; :func:`_choose_order` consults the table on
    every subsequent plan, so the correction takes effect as soon as
    the stale cached plan is invalidated.
    """
    with _PRIORS_LOCK:
        key = (quantified, original_index)
        _FEEDBACK[key] = float(examined)
        _FEEDBACK.move_to_end(key)
        while len(_FEEDBACK) > _FEEDBACK_CAPACITY:
            _FEEDBACK.popitem(last=False)


def install_priors(priors: dict[str, float]) -> None:
    """Merge DTD-derived cardinality priors into the global table.

    Called at checker construction with
    :meth:`~repro.core.schema.ConstraintSchema.cardinality_priors`.
    Merging keeps the larger estimate — priors are order heuristics,
    not invariants, and several schemas may coexist in one process.
    """
    with _PRIORS_LOCK:
        for tag, value in priors.items():
            if value > _PRIORS.get(tag, 0.0):
                _PRIORS[tag] = value


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

class Statistics:
    """Cardinality/selectivity estimates over a document collection.

    Reads go through the per-document lock-protected tag index, so a
    refresh taken while a writer thread is mid-update still observes
    internally consistent buckets.  When a tag has no live elements the
    DTD priors stand in — the cold-start path for freshly created
    documents.
    """

    __slots__ = ("documents", "priors")

    def __init__(self, documents: tuple[Document, ...],
                 priors: dict[str, float] | None = None) -> None:
        fail.point("planner.stats.refresh")
        self.documents = tuple(documents)
        if priors is None:
            with _PRIORS_LOCK:
                priors = dict(_PRIORS)
        self.priors = priors

    def count(self, tag: str) -> float:
        """Estimated number of elements with ``tag`` in the collection."""
        total = 0
        for document in self.documents:
            total += document.tag_count(tag)
        if total:
            return float(total)
        return float(self.priors.get(tag, 0.0))

    def distinct(self, tag: str) -> float:
        """Estimated distinct direct-text values among ``tag`` elements.

        The selectivity denominator for equality predicates keyed on
        the tag's text.
        """
        total = 0
        for document in self.documents:
            total += document.tag_distinct_count(tag)
        if total:
            return float(total)
        prior = self.priors.get(tag, 0.0)
        return max(1.0, prior ** 0.5)

    def revision_vector(self) -> tuple[int, ...]:
        return tuple(document.revision for document in self.documents)


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------

_SIMPLE_STEP_NODETESTS = ("*", "node()", "text()", "position()")


def _estimate(expression: Expression, stats: Statistics,
              anchors: dict[str, str]) -> float:
    return _estimate_any(expression, stats, anchors)[0]


def _estimate_any(expression: Expression, stats: Statistics,
                  anchors: dict[str, str]) -> tuple[float, str | None]:
    """(estimated cardinality, tag the result items range over)."""
    if isinstance(expression, (Literal, TextLiteral, ContextItem)):
        return 1.0, None
    if isinstance(expression, VarRef):
        return 1.0, anchors.get(expression.name)
    if isinstance(expression, PathExpr):
        return _estimate_path(expression, stats, anchors)
    if isinstance(expression, FunctionCall):
        if expression.name == "distinct-values" and expression.args:
            card, anchor = _estimate_any(
                expression.args[0], stats, anchors)
            if anchor is not None:
                card = min(card, stats.distinct(anchor))
            return max(card, 0.0), None
        return 1.0, None
    if isinstance(expression, SequenceExpr):
        return (sum(_estimate(item, stats, anchors)
                    for item in expression.items), None)
    if isinstance(expression, (BinaryOp, UnaryOp, Quantified, IfExpr)):
        return 1.0, None
    return 4.0, None


def _estimate_path(path: PathExpr, stats: Statistics,
                   anchors: dict[str, str]) -> tuple[float, str | None]:
    if path.start is None:
        card, anchor = 1.0, None
        over_documents = True
    elif isinstance(path.start, VarRef):
        card, anchor = 1.0, anchors.get(path.start.name)
        over_documents = False
    elif isinstance(path.start, ContextItem):
        card, anchor = 1.0, None
        over_documents = False
    else:
        card, anchor = _estimate_any(path.start, stats, anchors)
        over_documents = False
    for step, descendant in zip(path.steps, path.descendant_flags):
        nodetest = step.nodetest
        if step.axis == "attribute" or nodetest in ("text()", "position()"):
            pass  # ~one value per context element
        elif step.axis in ("parent", "self"):
            if step.axis == "parent":
                anchor = None
        elif nodetest in ("*", "node()"):
            card *= 4.0
            anchor = None
        else:
            total = stats.count(nodetest)
            if descendant and over_documents:
                card = total
            else:
                parent_total = stats.count(anchor) if anchor else 0.0
                if parent_total > 0.0:
                    card *= total / parent_total
                elif descendant:
                    card *= max(total, 1.0)
                elif total == 0.0:
                    card *= 0.5
                # else: a child step under an unknown anchor — assume
                # the DTD-typical one child per parent
            anchor = nodetest
        over_documents = False
        for predicate in step.predicates:
            probe = _probe_spec(predicate)
            if probe is not None:
                key_tag = _last_named_tag(probe[0]) or anchor
                denominator = stats.distinct(key_tag) if key_tag else 2.0
                card /= max(denominator, 1.0)
            else:
                card *= 0.5
    return max(card, 0.0), anchor


def _last_named_tag(downpath: tuple[tuple[str, str], ...]) -> str | None:
    for axis, nodetest in reversed(downpath):
        if axis == "child" and nodetest != "text()":
            return nodetest
    return None


# ---------------------------------------------------------------------------
# Predicate analysis: EBV-safe filters and value-index probes
# ---------------------------------------------------------------------------

def _ebv_filter_safe(predicate: Expression) -> bool:
    """Predicate applicable element-wise over an index fetch.

    Extends :func:`~repro.xquery.optimizer.boolean_filter_safe` with
    node-producing path predicates: paths whose steps cannot yield bare
    numbers can never trigger the positional rule, so their effective
    boolean value is focus-partitioning-independent too.
    """
    if boolean_filter_safe(predicate):
        return True
    if isinstance(predicate, PathExpr):
        if predicate.start is not None \
                and not isinstance(predicate.start, (ContextItem, VarRef)):
            return False
        return all(step.nodetest != "position()"
                   for step in predicate.steps)
    return False


def _downpath_steps(
        expression: Expression) -> tuple[tuple[str, str], ...] | None:
    """A relative downward path as ((axis, nodetest), ...), or None.

    The shape a per-element key evaluator (:func:`_eval_downpath`)
    supports: child/attribute steps, named or ``text()``, no
    predicates, no descendant jumps.  These paths read only the
    element's own subtree, which is what makes the derived value
    indexes incrementally repairable.
    """
    if not isinstance(expression, PathExpr) \
            or not isinstance(expression.start, ContextItem):
        return None
    if any(expression.descendant_flags):
        return None
    steps: list[tuple[str, str]] = []
    for step in expression.steps:
        if step.predicates:
            return None
        if step.axis == "child":
            if step.nodetest in ("*", "node()", "position()"):
                return None
        elif step.axis == "attribute":
            if step.nodetest == "*":
                return None
        else:
            return None
        steps.append((step.axis, step.nodetest))
    return tuple(steps)


def _eval_downpath(steps: tuple[tuple[str, str], ...],
                   element: Element) -> list:
    current: list = [element]
    for axis, nodetest in steps:
        gathered: list = []
        for item in current:
            if not isinstance(item, Element):
                continue
            if axis == "child":
                if nodetest == "text()":
                    gathered.extend(child for child in item.children
                                    if isinstance(child, Text))
                else:
                    gathered.extend(
                        child for child in item.children
                        if isinstance(child, Element)
                        and child.tag == nodetest)
            else:  # attribute
                value = item.attributes.get(nodetest)
                if value is not None:
                    gathered.append(UntypedAtomic(value))
        current = gathered
    return current


def _downpath_tags(steps: tuple[tuple[str, str], ...]) -> frozenset[str]:
    return frozenset(nodetest for axis, nodetest in steps
                     if axis == "child" and nodetest != "text()")


def _probe_spec(
        predicate: Expression
) -> "tuple[tuple[tuple[str, str], ...], Expression] | None":
    """Decompose a predicate into (key downpath, probe expression).

    Recognized forms (``c`` is the candidate element):

    * ``[keypath = rhs]`` — keep ``c`` iff some value of
      ``c/keypath`` general-compares equal to ``rhs``;
    * ``[p1/../pn[inner = rhs]]`` — an existential path whose last
      step carries a single equality predicate; folded into
      ``[p1/../pn/inner = rhs]``, which has the same effective boolean
      value.

    ``rhs`` must be focus-free (same value for every candidate), which
    makes the candidate set answerable by one hash probe into an index
    of all same-tag elements keyed by their downpath values — the
    canonical keys of :func:`repro.xquery.optimizer.hash_keys`
    guarantee probe/scan equivalence.
    """
    if isinstance(predicate, BinaryOp) and predicate.op == "=":
        for key_side, probe_side in ((predicate.left, predicate.right),
                                     (predicate.right, predicate.left)):
            downpath = _downpath_steps(key_side)
            if downpath is not None and focus_free(probe_side):
                return downpath, probe_side
        return None
    if isinstance(predicate, PathExpr) \
            and isinstance(predicate.start, ContextItem) \
            and not any(predicate.descendant_flags):
        outer: list[tuple[str, str]] = []
        steps = predicate.steps
        for step in steps[:-1]:
            if step.axis != "child" or step.predicates \
                    or step.nodetest in _SIMPLE_STEP_NODETESTS:
                return None
            outer.append(("child", step.nodetest))
        last = steps[-1]
        if last.axis != "child" or len(last.predicates) != 1 \
                or last.nodetest in _SIMPLE_STEP_NODETESTS:
            return None
        inner = last.predicates[0]
        if not (isinstance(inner, BinaryOp) and inner.op == "="):
            return None
        folded = _probe_spec(inner)
        if folded is None:
            return None
        inner_path, probe_side = folded
        outer.append(("child", last.nodetest))
        return tuple(outer) + inner_path, probe_side
    return None


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------

_MISSING = object()


class _Runtime:
    """Mutable evaluation state threaded through compiled closures.

    Where the engine copies a frozen context per binding, compiled
    plans share one environment dict and set/restore keys around each
    loop level.  :meth:`context` bridges into the unplanned engine for
    constructs outside the compiled fragment — the engine's
    copy-on-write variable handling makes sharing the dict safe.
    """

    __slots__ = ("documents", "env", "item", "position", "size",
                 "profile", "cache", "backends")

    def __init__(self, documents: tuple[Document, ...],
                 env: dict[str, Sequence]) -> None:
        self.documents = documents
        self.env = env
        self.item: object | None = None
        self.position = 1
        self.size = 1
        #: (quantifier, binding) key → [items examined, tuples passed];
        #: populated by :func:`explain_query` runs only
        self.profile: dict[tuple, list[int]] | None = None
        #: (quantifier index, backend, reason) records; populated when
        #: :func:`explain_query` sets it to a list
        self.backends: list[tuple[int, str, str | None]] | None = None
        #: per-evaluation memo (hash-join/probe indexes): documents
        #: cannot change mid-check, so one lookup per plan node is
        #: enough — the revision-keyed cache is consulted only once
        self.cache: dict = {}

    def context(self) -> QueryContext:
        return QueryContext(self.documents, self.env, self.item,
                            self.position, self.size)


Closure = Callable[[_Runtime], Sequence]
TruthClosure = Callable[[_Runtime], bool]


# ---------------------------------------------------------------------------
# Plan structures
# ---------------------------------------------------------------------------

class _BindingInfo:
    """Explain record for one planned binding."""

    __slots__ = ("name", "source", "kind", "estimate", "original_index",
                 "key")

    def __init__(self, name: str, source: Expression, kind: str,
                 estimate: float, original_index: int,
                 key: tuple) -> None:
        self.name = name
        self.source = source
        self.kind = kind
        self.estimate = estimate
        self.original_index = original_index
        self.key = key


class _QuantifierInfo:
    """Explain record for one planned quantifier."""

    __slots__ = ("index", "kind", "expression", "bindings")

    def __init__(self, index: int, kind: str,
                 expression: Quantified) -> None:
        self.index = index
        self.kind = kind
        self.expression = expression
        self.bindings: list[_BindingInfo] = []


class _Plan:
    """Compilation context: chosen orders, statistics, explain info."""

    __slots__ = ("orders", "stats", "infos")

    def __init__(self, orders: dict[Quantified, tuple[int, ...]],
                 stats: Statistics) -> None:
        self.orders = orders
        self.stats = stats
        self.infos: list[_QuantifierInfo] = []


# ---------------------------------------------------------------------------
# Binding order selection
# ---------------------------------------------------------------------------

def _choose_order(quantified: Quantified,
                  stats: Statistics) -> tuple[int, ...]:
    """Greedy selectivity order for a quantifier's bindings.

    Repeatedly picks, among the bindings whose dependencies are
    satisfied, the one with the smallest effective cost: the estimated
    source cardinality, discounted by the key's distinct count when an
    equality conjunct makes the binding hash-joinable against already
    chosen (or outer) variables.  Reordering is sound because the
    bindings of a quantifier are independent nested loops — only the
    dependency order between correlated sources must be preserved.
    """
    bindings = quantified.bindings
    names = [name for name, _ in bindings]
    name_set = frozenset(names)
    source_deps = [free_variables(source) & name_set
                   for _, source in bindings]
    factors = conjuncts(quantified.condition)
    factor_vars = [free_variables(factor) & name_set for factor in factors]

    chosen: list[int] = []
    chosen_names: set[str] = set()
    anchors: dict[str, str] = {}
    remaining = list(range(len(bindings)))
    while remaining:
        best: tuple[float, int, str | None] | None = None
        for index in remaining:
            if source_deps[index] - chosen_names:
                continue
            name, source = bindings[index]
            card, anchor = _estimate_any(source, stats, anchors)
            card = _feedback_estimate(quantified, index, card)
            cost = card
            if not source_deps[index] and _joinable(
                    name, chosen_names, name_set, factors, factor_vars):
                denominator = stats.distinct(anchor) if anchor else 2.0
                cost = max(card / max(denominator, 1.0), 0.5)
            if best is None or cost < best[0] - 1e-9:
                best = (cost, index, anchor)
        assert best is not None, "binding dependencies form a cycle"
        _, index, anchor = best
        chosen.append(index)
        chosen_names.add(names[index])
        if anchor is not None:
            anchors[names[index]] = anchor
        remaining.remove(index)
    return tuple(chosen)


def _joinable(name: str, chosen_names: set[str],
              name_set: frozenset[str], factors: list[Expression],
              factor_vars: list[frozenset[str]]) -> bool:
    for factor, variables in zip(factors, factor_vars):
        if not (isinstance(factor, BinaryOp) and factor.op == "="):
            continue
        left = free_variables(factor.left) & name_set
        right = free_variables(factor.right) & name_set
        if left == {name} and right <= chosen_names:
            return True
        if right == {name} and left <= chosen_names:
            return True
    return False


def _collect_quantifieds(expression: Expression,
                         found: list[Quantified]) -> None:
    if isinstance(expression, Quantified):
        found.append(expression)
        for _, source in expression.bindings:
            _collect_quantifieds(source, found)
        _collect_quantifieds(expression.condition, found)
    elif isinstance(expression, PathExpr):
        if expression.start is not None:
            _collect_quantifieds(expression.start, found)
        for step in expression.steps:
            for predicate in step.predicates:
                _collect_quantifieds(predicate, found)
    elif isinstance(expression, BinaryOp):
        _collect_quantifieds(expression.left, found)
        _collect_quantifieds(expression.right, found)
    elif isinstance(expression, UnaryOp):
        _collect_quantifieds(expression.operand, found)
    elif isinstance(expression, FunctionCall):
        for argument in expression.args:
            _collect_quantifieds(argument, found)
    elif isinstance(expression, SequenceExpr):
        for item in expression.items:
            _collect_quantifieds(item, found)
    elif isinstance(expression, IfExpr):
        _collect_quantifieds(expression.condition, found)
        _collect_quantifieds(expression.then_branch, found)
        _collect_quantifieds(expression.else_branch, found)
    elif isinstance(expression, FLWOR):
        for clause in expression.clauses:
            if isinstance(clause, (ForClause, LetClause)):
                _collect_quantifieds(clause.source, found)
            else:
                assert isinstance(clause, WhereClause)
                _collect_quantifieds(clause.condition, found)
        _collect_quantifieds(expression.result, found)
    elif isinstance(expression, ElementConstructor):
        for _, value in expression.attributes:
            _collect_quantifieds(value, found)
        for child in expression.children:
            _collect_quantifieds(child, found)


def _strategy_for(expression: Expression,
                  stats: Statistics) -> tuple[tuple, ...]:
    """The stats-dependent part of a plan: every quantifier's order.

    Compiled closures are cached by (query, strategy) — a statistics
    refresh that leaves every order unchanged reuses them as-is.
    """
    quantifieds: list[Quantified] = []
    _collect_quantifieds(expression, quantifieds)
    orders: dict[Quantified, tuple[int, ...]] = {}
    items: list[tuple] = []
    for quantified in quantifieds:
        if quantified in orders:
            continue
        order = _choose_order(quantified, stats)
        orders[quantified] = order
        items.append((quantified, order))
    return tuple(items)


# ---------------------------------------------------------------------------
# Compilation: general expressions
# ---------------------------------------------------------------------------

def _fallback(expression: Expression) -> Closure:
    def run(rt: _Runtime) -> Sequence:
        return engine._evaluate(expression, rt.context())
    return run


def _compile(expression: Expression, pl: _Plan) -> Closure:
    if isinstance(expression, (Literal, TextLiteral)):
        value = expression.value

        def literal(rt: _Runtime) -> Sequence:
            return [value]
        return literal
    if isinstance(expression, VarRef):
        name = expression.name

        def var(rt: _Runtime) -> Sequence:
            try:
                return rt.env[name]
            except KeyError:
                raise XQueryEvaluationError(
                    f"unbound variable ${name}") from None
        return var
    if isinstance(expression, ContextItem):
        def item_fn(rt: _Runtime) -> Sequence:
            if rt.item is None:
                raise XQueryEvaluationError("no context item")
            return [rt.item]
        return item_fn
    if isinstance(expression, SequenceExpr):
        parts = [_compile(item, pl) for item in expression.items]

        def sequence(rt: _Runtime) -> Sequence:
            result: Sequence = []
            for part in parts:
                result.extend(part(rt))
            return result
        return sequence
    if isinstance(expression, PathExpr):
        return _compile_path(expression, pl)
    if isinstance(expression, BinaryOp):
        return _compile_binary(expression, pl)
    if isinstance(expression, UnaryOp):
        operand = _compile(expression.operand, pl)
        negate = expression.op == "-"

        def unary(rt: _Runtime) -> Sequence:
            atoms = atomize(operand(rt))
            if not atoms:
                return []
            value = engine.to_number(atoms[0])
            result = -value if negate else value
            return [int(result)] if float(result).is_integer() \
                else [result]
        return unary
    if isinstance(expression, FunctionCall):
        return _compile_call(expression, pl)
    if isinstance(expression, Quantified):
        truth = _compile_quantified_truth(expression, pl)

        def quantified(rt: _Runtime) -> Sequence:
            return [truth(rt)]
        return quantified
    if isinstance(expression, IfExpr):
        condition = _compile_truth(expression.condition, pl)
        then_branch = _compile(expression.then_branch, pl)
        else_branch = _compile(expression.else_branch, pl)

        def conditional(rt: _Runtime) -> Sequence:
            return then_branch(rt) if condition(rt) else else_branch(rt)
        return conditional
    # FLWOR, element constructors: bridge into the engine
    return _fallback(expression)


def _compile_binary(expression: BinaryOp, pl: _Plan) -> Closure:
    op = expression.op
    if op in ("and", "or"):
        truth = _compile_truth(expression, pl)

        def boolean(rt: _Runtime) -> Sequence:
            return [truth(rt)]
        return boolean
    left = _compile(expression.left, pl)
    right = _compile(expression.right, pl)
    if op in engine._GENERAL_OPS:
        def compare(rt: _Runtime) -> Sequence:
            return [general_compare(op, left(rt), right(rt))]
        return compare
    if op in engine._ARITHMETIC_OPS:
        def arithmetic(rt: _Runtime) -> Sequence:
            return engine._arithmetic(op, left(rt), right(rt))
        return arithmetic
    return _fallback(expression)


def _compile_call(expression: FunctionCall, pl: _Plan) -> Closure:
    name = expression.name
    if name == "position":
        return lambda rt: [rt.position]
    if name == "last":
        return lambda rt: [rt.size]
    args = [_compile(argument, pl) for argument in expression.args]
    if name == "count" and len(args) == 1:
        argument = args[0]
        return lambda rt: [len(argument(rt))]
    if name == "exists" and len(args) == 1:
        argument = args[0]
        return lambda rt: [bool(argument(rt))]
    if name == "empty" and len(args) == 1:
        argument = args[0]
        return lambda rt: [not argument(rt)]
    if name == "not" and len(args) == 1:
        inner = _compile_truth(expression.args[0], pl)
        return lambda rt: [not inner(rt)]
    entry = functions.REGISTRY.get(name)
    if entry is None:
        def unknown(rt: _Runtime) -> Sequence:
            raise XQueryEvaluationError(f"unknown function {name}()")
        return unknown
    implementation, min_arity, max_arity = entry
    if not min_arity <= len(args) <= max_arity:
        count = len(args)

        def bad_arity(rt: _Runtime) -> Sequence:
            raise XQueryEvaluationError(
                f"{name}() expects between {min_arity} and {max_arity} "
                f"arguments, got {count}")
        return bad_arity

    def call(rt: _Runtime) -> Sequence:
        return implementation(*[argument(rt) for argument in args])
    return call


def _compile_truth(expression: Expression, pl: _Plan) -> TruthClosure:
    """Effective-boolean-value closure with short-circuiting."""
    if isinstance(expression, BinaryOp):
        op = expression.op
        if op == "and":
            left = _compile_truth(expression.left, pl)
            right = _compile_truth(expression.right, pl)
            return lambda rt: left(rt) and right(rt)
        if op == "or":
            left = _compile_truth(expression.left, pl)
            right = _compile_truth(expression.right, pl)
            return lambda rt: left(rt) or right(rt)
        if op in engine._GENERAL_OPS:
            left_fn = _compile(expression.left, pl)
            right_fn = _compile(expression.right, pl)
            return lambda rt: general_compare(op, left_fn(rt),
                                              right_fn(rt))
    if isinstance(expression, FunctionCall) and len(expression.args) == 1:
        if expression.name == "not":
            inner = _compile_truth(expression.args[0], pl)
            return lambda rt: not inner(rt)
        if expression.name == "exists":
            inner_fn = _compile(expression.args[0], pl)
            return lambda rt: bool(inner_fn(rt))
        if expression.name == "empty":
            inner_fn = _compile(expression.args[0], pl)
            return lambda rt: not inner_fn(rt)
    if isinstance(expression, Quantified):
        return _compile_quantified_truth(expression, pl)
    if isinstance(expression, IfExpr):
        condition = _compile_truth(expression.condition, pl)
        then_branch = _compile_truth(expression.then_branch, pl)
        else_branch = _compile_truth(expression.else_branch, pl)
        return lambda rt: then_branch(rt) if condition(rt) \
            else else_branch(rt)
    if isinstance(expression, Literal) \
            and isinstance(expression.value, bool):
        value = expression.value
        return lambda rt: value
    fn = _compile(expression, pl)
    return lambda rt: effective_boolean_value(fn(rt))


# ---------------------------------------------------------------------------
# Compilation: paths
# ---------------------------------------------------------------------------

def _compile_start(path: PathExpr, pl: _Plan) -> Closure:
    start = path.start
    if start is None:
        return lambda rt: list(rt.documents)
    return _compile(start, pl)


def _compile_path(path: PathExpr, pl: _Plan) -> Closure:
    start_fn = _compile_start(path, pl)
    step_fns = [
        _compile_step(step, descendant, pl)
        for step, descendant in zip(path.steps, path.descendant_flags)]

    def run(rt: _Runtime) -> Sequence:
        items = start_fn(rt)
        for step_fn in step_fns:
            if not items:
                return items
            items = step_fn(rt, items)
        return items
    return run


def _compile_path_iter(
        path: PathExpr,
        pl: _Plan) -> Callable[[_Runtime], Iterator]:
    """Streaming path evaluation: one item at a time through the steps.

    Used for quantifier binding sources, where an early exit at the
    first witness makes materializing the full node sequence wasted
    work.  Cross-parent deduplication is skipped — duplicates cannot
    change an existential verdict, and downward paths (the translated
    checks' shape) never produce any.
    """
    start_fn = _compile_start(path, pl)
    step_fns = [
        _compile_step(step, descendant, pl)
        for step, descendant in zip(path.steps, path.descendant_flags)]
    depth = len(step_fns)

    def run(rt: _Runtime) -> Iterator:
        def advance(level: int, items: Sequence) -> Iterator:
            if level == depth:
                yield from items
                return
            step_fn = step_fns[level]
            for item in items:
                yield from advance(level + 1, step_fn(rt, [item]))
        yield from advance(0, start_fn(rt))
    return run


def _compile_iter(source: Expression,
                  pl: _Plan) -> Callable[[_Runtime], Iterator]:
    if isinstance(source, PathExpr) and source.start is None \
            and len(source.steps) > 1:
        # absolute multi-step paths can expand large intermediate
        # frontiers — stream them so an early exit stops the walk
        return _compile_path_iter(source, pl)
    # correlated and single-step sources are small (or served whole
    # from the tag index): a materialized list iterates faster than a
    # recursive generator
    fn = _compile(source, pl)
    return lambda rt: iter(fn(rt))


StepClosure = Callable[[_Runtime, Sequence], Sequence]


def _compile_step(step: AxisStep, descendant: bool,
                  pl: _Plan) -> StepClosure:
    generic = _compile_generic_step(step, descendant, pl)
    if not descendant or step.axis != "child" \
            or step.nodetest in _SIMPLE_STEP_NODETESTS:
        return generic
    # ``//tag`` candidate: serve whole-document fetches from the tag
    # index, with an optional value-index probe for a leading equality
    # predicate and element-wise filters for the rest.
    tag = step.nodetest
    predicates = step.predicates
    probe = _probe_spec(predicates[0]) if predicates else None
    rest = predicates[1:] if probe is not None else predicates
    if not all(_ebv_filter_safe(predicate) for predicate in rest):
        return generic
    filters = [_compile_ebv_filter(predicate, pl) for predicate in rest]
    if probe is not None:
        downpath, probe_expr = probe
        probe_fn = _compile(probe_expr, pl)
        deps = tuple(sorted(
            {tag} | _downpath_tags(downpath)
            | _path_dependency_tags(probe_expr)))

        memo_token = object()

        def probe_step(rt: _Runtime, items: Sequence) -> Sequence:
            documents = _documents_only(items)
            if documents is None:
                return generic(rt, items)
            index_map = rt.cache.get(memo_token)
            if index_map is None:
                index_map = _columnar_probe_map(tag, downpath,
                                                documents)
                if index_map is None:
                    index_map = _predicate_index(tag, downpath, deps,
                                                 documents, rt)
                rt.cache[memo_token] = index_map
            matched: Sequence = []
            seen: set[int] = set()
            for key in probe_keys(probe_fn(rt)):
                for element in index_map.get(key, ()):
                    if id(element) not in seen:
                        seen.add(id(element))
                        matched.append(element)
            for filter_fn in filters:
                matched = filter_fn(rt, matched)
            return matched
        return probe_step

    def indexed_step(rt: _Runtime, items: Sequence) -> Sequence:
        documents = _documents_only(items)
        if documents is None:
            return generic(rt, items)
        elements: Sequence = []
        for document in documents:
            elements.extend(document.elements_by_tag(tag))
        for filter_fn in filters:
            elements = filter_fn(rt, elements)
        return elements
    return indexed_step


def _documents_only(items: Sequence) -> "list[Document] | None":
    documents: list[Document] = []
    seen: set[int] = set()
    for item in items:
        if not isinstance(item, Document):
            return None
        if id(item) not in seen:
            seen.add(id(item))
            documents.append(item)
    return documents


def _path_dependency_tags(expression: Expression) -> frozenset[str]:
    tags = index_dependencies(expression)
    return tags if tags is not None else frozenset()


def _compile_ebv_filter(
        predicate: Expression,
        pl: _Plan) -> Callable[[_Runtime, Sequence], Sequence]:
    truth = _compile_truth(predicate, pl)

    def filter_fn(rt: _Runtime, candidates: Sequence) -> Sequence:
        kept: Sequence = []
        saved = rt.item
        try:
            for candidate in candidates:
                rt.item = candidate
                if truth(rt):
                    kept.append(candidate)
        finally:
            rt.item = saved
        return kept
    return filter_fn


def _compile_generic_step(step: AxisStep, descendant: bool,
                          pl: _Plan) -> StepClosure:
    axis, nodetest, predicates = step.axis, step.nodetest, step.predicates
    if not predicates and not descendant:
        if axis == "child" and nodetest not in _SIMPLE_STEP_NODETESTS:
            return _named_child_step(nodetest)
        if axis == "child" and nodetest == "text()":
            return _text_step
        if axis == "child" and nodetest == "position()":
            return _position_step
        if axis == "attribute" and nodetest != "*":
            return _attribute_step(nodetest)
        if axis == "parent":
            return _parent_step

    def run(rt: _Runtime, items: Sequence) -> Sequence:
        if descendant:
            items = engine._descendant_or_self(items)
        context = rt.context() if predicates else None
        result: Sequence = []
        seen: set[int] = set()
        for item in items:
            candidates = engine._axis_candidates(step, item)
            for predicate in predicates:
                candidates = engine._filter_predicate(
                    predicate, candidates, context)
            for candidate in candidates:
                if isinstance(candidate, (Node, Document)):
                    if id(candidate) not in seen:
                        seen.add(id(candidate))
                        result.append(candidate)
                else:
                    result.append(candidate)
        return result
    return run


def _named_child_step(tag: str) -> StepClosure:
    def run(rt: _Runtime, items: Sequence) -> Sequence:
        if len(items) == 1:
            item = items[0]
            if isinstance(item, Element):
                return [child for child in item.children
                        if isinstance(child, Element) and child.tag == tag]
            if isinstance(item, Document):
                return [item.root] if item.root.tag == tag else []
            return []
        result: Sequence = []
        seen: set[int] = set()
        for item in items:
            if id(item) in seen:
                continue
            seen.add(id(item))
            if isinstance(item, Element):
                result.extend(child for child in item.children
                              if isinstance(child, Element)
                              and child.tag == tag)
            elif isinstance(item, Document) and item.root.tag == tag:
                result.append(item.root)
        return result
    return run


def _text_step(rt: _Runtime, items: Sequence) -> Sequence:
    if len(items) == 1:
        item = items[0]
        if isinstance(item, Element):
            return [child for child in item.children
                    if isinstance(child, Text)]
        return []
    result: Sequence = []
    seen: set[int] = set()
    for item in items:
        if id(item) in seen:
            continue
        seen.add(id(item))
        if isinstance(item, Element):
            result.extend(child for child in item.children
                          if isinstance(child, Text))
    return result


def _position_step(rt: _Runtime, items: Sequence) -> Sequence:
    result: Sequence = []
    for item in items:
        if not isinstance(item, Element):
            raise XQueryEvaluationError(
                "position() step requires an element context")
        result.append(item.child_position)
    return result


def _attribute_step(name: str) -> StepClosure:
    def run(rt: _Runtime, items: Sequence) -> Sequence:
        result: Sequence = []
        for item in items:
            if isinstance(item, Element):
                value = item.attributes.get(name)
                if value is not None:
                    result.append(UntypedAtomic(value))
        return result
    return run


def _parent_step(rt: _Runtime, items: Sequence) -> Sequence:
    result: Sequence = []
    seen: set[int] = set()
    for item in items:
        if isinstance(item, (Element, Text)) and item.parent is not None \
                and id(item.parent) not in seen:
            seen.add(id(item.parent))
            result.append(item.parent)
    return result


# ---------------------------------------------------------------------------
# Predicate value indexes
# ---------------------------------------------------------------------------

def _tag_state(documents: "list[Document] | tuple[Document, ...]",
               tags: tuple[str, ...]) -> tuple:
    return tuple(
        (document.uid,
         tuple(document.tag_revision(tag) for tag in tags))
        for document in documents)


class _MergedIndex:
    """Dict-shaped facade over per-document column-store value indexes.

    Serves the planner's probe steps and hash joins with the same
    ``.get(key) → elements`` contract as a built index map, but backed
    by the stores' hook-maintained
    :class:`~repro.relational.columns.PathIndex` buckets — always
    current, never rebuilt per check, never registered for batch
    repair.
    """

    __slots__ = ("indexes",)

    def __init__(self, indexes: list) -> None:
        self.indexes = indexes

    def get(self, key: tuple, default: Sequence = ()) -> Sequence:
        found: list | None = None
        for index in self.indexes:
            bucket = index.buckets.get(key)
            if bucket:
                if found is None:
                    found = list(bucket.values())
                else:
                    found.extend(bucket.values())
        return default if found is None else found


def _columnar_probe_map(
        tag: str, downpath: tuple[tuple[str, str], ...],
        documents: "list[Document] | tuple[Document, ...]"
) -> "_MergedIndex | None":
    """A store-served index for ``//tag`` keyed by ``downpath``.

    ``None`` when the columnar backend is ablated, any document lacks
    a store, or a store cannot serve (e.g. a crashed rebuild) — the
    caller then builds the index the pre-columnar way.
    """
    if not columnar_enabled():
        return None
    indexes = []
    for document in documents:
        store = document.column_store
        if store is None:
            return None
        try:
            indexes.append(store.value_index(tag, downpath))
        except Exception:
            return None
    return _MergedIndex(indexes)


def _predicate_index(tag: str, downpath: tuple[tuple[str, str], ...],
                     deps: tuple[str, ...],
                     documents: list[Document],
                     rt: _Runtime) -> dict[tuple, list]:
    """Cached index of all ``tag`` elements keyed by downpath values.

    Lives in the engine's bounded :data:`~repro.xquery.engine._INDEX_CACHE`
    next to the hash-join indexes, keyed by the same per-tag revision
    state, and registered with the active batch scope for incremental
    repair.
    """
    base = ("predindex", tag, downpath, tuple(d.uid for d in documents))
    cache_key = base + (deps, _tag_state(documents, deps))
    cached = engine._INDEX_CACHE.get(cache_key)
    if cached is not None:
        _register_pred_entry(base, tag, downpath, deps, documents, cached)
        return cached
    index_map: dict[tuple, list] = {}
    for document in documents:
        for element in document.elements_by_tag(tag):
            for value in atomize(_eval_downpath(downpath, element)):
                for key in hash_keys(value):
                    index_map.setdefault(key, []).append(element)
    engine._INDEX_CACHE.put(cache_key, index_map)
    _register_pred_entry(base, tag, downpath, deps, documents, index_map)
    return index_map


def _register_pred_entry(base: tuple, tag: str,
                         downpath: tuple[tuple[str, str], ...],
                         deps: tuple[str, ...],
                         documents: list[Document],
                         index_map: dict[tuple, list]) -> None:
    scope = active_batch()
    if scope is None:
        return

    def key_of(element: Element) -> list[tuple]:
        keys: list[tuple] = []
        for value in atomize(_eval_downpath(downpath, element)):
            keys.extend(hash_keys(value))
        return keys

    def make_key() -> tuple:
        return base + (deps, _tag_state(documents, deps))

    scope.register(base, tag, tuple(documents), index_map, key_of,
                   make_key)


# ---------------------------------------------------------------------------
# Compilation: quantifiers
# ---------------------------------------------------------------------------

class _ScanStep:
    __slots__ = ("name", "iterate", "checks", "key")

    def __init__(self, name: str,
                 iterate: Callable[[_Runtime], Iterator],
                 checks: list[TruthClosure], key: tuple) -> None:
        self.name = name
        self.iterate = iterate
        self.checks = checks
        self.key = key

    def items(self, rt: _Runtime) -> Iterator:
        return self.iterate(rt)


class _HashJoinStep:
    __slots__ = ("name", "source", "new_side", "bound_fn", "checks",
                 "key", "columnar_spec")

    def __init__(self, name: str, source: Expression,
                 new_side: Expression, bound_fn: Closure,
                 checks: list[TruthClosure], key: tuple) -> None:
        self.name = name
        self.source = source
        self.new_side = new_side
        self.bound_fn = bound_fn
        self.checks = checks
        self.key = key
        # ``//tag`` source keyed by a downpath of the bound variable:
        # the shape a column-store value index can serve directly
        tag = _simple_descendant_tag(source)
        steps = _var_downpath(new_side, name) if tag is not None \
            else None
        self.columnar_spec = (tag, steps) \
            if tag is not None and steps is not None else None

    def items(self, rt: _Runtime) -> Iterator:
        index_map = rt.cache.get(id(self))
        if index_map is None:
            if self.columnar_spec is not None:
                index_map = _columnar_probe_map(
                    self.columnar_spec[0], self.columnar_spec[1],
                    rt.documents)
            if index_map is None:
                index_map = engine._hash_index(
                    self.name, self.source, self.new_side,
                    rt.context())
            rt.cache[id(self)] = index_map
        seen: set[int] = set()
        for key in probe_keys(self.bound_fn(rt)):
            for item in index_map.get(key, ()):
                if id(item) not in seen:
                    seen.add(id(item))
                    yield item


def _note_backend(rt: _Runtime, index: int, backend: str,
                  reason: str | None) -> None:
    """Record which backend evaluated a quantifier (explain runs)."""
    if rt.backends is not None:
        rt.backends.append((index, backend, reason))


def _compile_quantified_truth(quantified: Quantified,
                              pl: _Plan) -> TruthClosure:
    if quantified.kind == "some":
        return _compile_some(quantified, pl)
    return _compile_every(quantified, pl)


def _compile_some(quantified: Quantified, pl: _Plan) -> TruthClosure:
    order = pl.orders.get(quantified)
    if order is None:  # explain/compile without a precomputed strategy
        order = _choose_order(quantified, pl.stats)
        pl.orders[quantified] = order
    bindings = [quantified.bindings[index] for index in order]
    names = [name for name, _ in bindings]
    name_set = frozenset(name for name, _ in quantified.bindings)
    info = _QuantifierInfo(len(pl.infos), "some", quantified)
    pl.infos.append(info)

    factors = conjuncts(quantified.condition)
    position = {name: index for index, name in enumerate(names)}
    pre_factors: list[Expression] = []
    slots: list[list[Expression]] = [[] for _ in bindings]
    for factor in factors:
        quantifier_vars = free_variables(factor) & name_set
        if not quantifier_vars:
            pre_factors.append(factor)
            continue
        slots[max(position[name] for name in quantifier_vars)].append(
            factor)

    anchors: dict[str, str] = {}
    steps: list = []
    lowspec: list[tuple] = []
    for index, (name, source) in enumerate(bindings):
        estimate, anchor = _estimate_any(source, pl.stats, anchors)
        estimate = _feedback_estimate(quantified, order[index],
                                      estimate)
        if anchor is not None:
            anchors[name] = anchor
        correlated = bool(free_variables(source) & name_set)
        earlier = set(names[:index])
        equality: tuple | None = None
        if not correlated:
            for factor in slots[index]:
                if not (isinstance(factor, BinaryOp)
                        and factor.op == "="):
                    continue
                left_vars = free_variables(factor.left) & name_set
                right_vars = free_variables(factor.right) & name_set
                if left_vars == {name} and right_vars <= earlier:
                    equality = (factor, factor.left, factor.right)
                    break
                if right_vars == {name} and left_vars <= earlier:
                    equality = (factor, factor.right, factor.left)
                    break
        checks = [
            _compile_truth(factor, pl) for factor in slots[index]
            if equality is None or factor is not equality[0]]
        key = (info.index, index)
        if equality is not None:
            step: object = _HashJoinStep(
                name, source, equality[1],
                _compile(equality[2], pl), checks, key)
            kind = "hash join"
        else:
            step = _ScanStep(name, _compile_iter(source, pl), checks,
                             key)
            kind = "correlated scan" if correlated else "scan"
        steps.append(step)
        lowspec.append((name, source, slots[index], equality,
                        correlated))
        info.bindings.append(_BindingInfo(
            name, source, kind, estimate, order[index], key))
    pre_checks = [_compile_truth(factor, pl) for factor in pre_factors]
    depth = len(steps)

    # Lower the same binding order to a vectorized frontier plan; any
    # construct outside the columnar fragment refuses the whole
    # quantifier and the tuple-at-a-time search below stays in charge.
    try:
        from repro.xquery import columnar as _columnar_module
        vector_plan, vector_reason = _columnar_module.lower_some(
            lowspec, name_set, info.index, pl)
    except Exception as error:  # lowering must never break compiling
        _columnar_module = None  # type: ignore[assignment]
        vector_plan, vector_reason = None, f"lowering failed: {error}"
    quantifier_index = info.index

    def truth(rt: _Runtime) -> bool:
        for check in pre_checks:
            if not check(rt):
                return False
        if vector_plan is not None:
            not_ready = vector_plan.ready(rt)
            if not_ready is None:
                try:
                    verdict = vector_plan.run(rt)
                except _columnar_module.Bail as bail:
                    _note_backend(rt, quantifier_index, "planned-DOM",
                                  f"bailed: {bail}")
                else:
                    _note_backend(rt, quantifier_index, "columnar",
                                  None)
                    return verdict
            else:
                _note_backend(rt, quantifier_index, "planned-DOM",
                              not_ready)
        else:
            _note_backend(rt, quantifier_index, "planned-DOM",
                          vector_reason or "not lowered")
        env = rt.env
        profile = rt.profile

        def search(level: int) -> bool:
            if level == depth:
                return True
            step = steps[level]
            name = step.name
            saved = env.get(name, _MISSING)
            counters = None if profile is None \
                else profile.setdefault(step.key, [0, 0])
            try:
                for item in step.items(rt):
                    if counters is not None:
                        counters[0] += 1
                    env[name] = [item]
                    passed = True
                    for check in step.checks:
                        if not check(rt):
                            passed = False
                            break
                    if passed:
                        if counters is not None:
                            counters[1] += 1
                        if search(level + 1):
                            return True
                return False
            finally:
                if saved is _MISSING:
                    env.pop(name, None)
                else:
                    env[name] = saved
        return search(0)
    return truth


def _compile_every(quantified: Quantified, pl: _Plan) -> TruthClosure:
    sources = [(name, _compile_iter(source, pl))
               for name, source in quantified.bindings]
    condition = _compile_truth(quantified.condition, pl)
    depth = len(sources)

    def truth(rt: _Runtime) -> bool:
        env = rt.env

        def check(level: int) -> bool:
            if level == depth:
                return condition(rt)
            name, iterate = sources[level]
            saved = env.get(name, _MISSING)
            try:
                for item in iterate(rt):
                    env[name] = [item]
                    if not check(level + 1):
                        return False
                return True
            finally:
                if saved is _MISSING:
                    env.pop(name, None)
                else:
                    env[name] = saved
        return check(0)
    return truth


# ---------------------------------------------------------------------------
# Plan cache and entry points
# ---------------------------------------------------------------------------

class _PlanEntry:
    __slots__ = ("expression", "documents", "revisions", "strategy",
                 "truth_fn", "infos")

    def __init__(self, expression: Expression,
                 documents: tuple[Document, ...],
                 revisions: tuple[int, ...], strategy: tuple,
                 truth_fn: TruthClosure,
                 infos: list[_QuantifierInfo]) -> None:
        self.expression = expression
        #: weak references only: a cached plan must not keep whole
        #: document trees alive after their owners drop them
        self.documents = tuple(
            weakref.ref(document) for document in documents)
        self.revisions = revisions
        self.strategy = strategy
        self.truth_fn = truth_fn
        self.infos = infos

    def matches(self, documents: tuple[Document, ...]) -> bool:
        """All referents alive and identical to ``documents``.

        A dead referent (or an ``id()`` reused by a new document after
        the original died) dereferences to ``None`` or a different
        object, so the entry fails here and is rebuilt — the weakref
        replaces the strong references that used to pin identity.
        """
        return len(self.documents) == len(documents) and all(
            reference() is document
            for reference, document in zip(self.documents, documents))


_PLAN_LOCK = make_lock("planner.plan_cache")
#: (query, document ids) → _PlanEntry; entries hold only *weak*
#: document references — :meth:`_PlanEntry.matches` detects both dead
#: referents and id-reuse aliasing, so stale entries are rebuilt
#: instead of pinning document trees until LRU eviction
_PLAN_LRU: "OrderedDict[tuple, _PlanEntry]" = \
    OrderedDict()  # guarded-by: _PLAN_LOCK
_PLAN_CAPACITY = 64
#: (query, strategy) → (truth closure, explain infos): compiled
#: closures are document-independent and shared across plan entries
_COMPILED: "OrderedDict[tuple, tuple[TruthClosure, list]]" = \
    OrderedDict()  # guarded-by: _PLAN_LOCK
_COMPILED_CAPACITY = 512


def _compiled_for(expression: Expression, strategy: tuple,
                  stats: Statistics) -> tuple[TruthClosure, list]:
    key = (expression, strategy)
    with _PLAN_LOCK:
        cached = _COMPILED.get(key)
        if cached is not None:
            _COMPILED.move_to_end(key)
            return cached
    pl = _Plan(dict(strategy), stats)
    truth_fn = _compile_truth(expression, pl)
    built = (truth_fn, pl.infos)
    with _PLAN_LOCK:
        _COMPILED[key] = built
        _COMPILED.move_to_end(key)
        while len(_COMPILED) > _COMPILED_CAPACITY:
            _COMPILED.popitem(last=False)
    return built


def _plan_truth(expression: Expression,
                documents: tuple[Document, ...]) -> TruthClosure:
    key = (expression,
           tuple(document.uid for document in documents))
    revisions = tuple(document.revision for document in documents)
    with _PLAN_LOCK:
        entry = _PLAN_LRU.get(key)
        if entry is not None:
            _PLAN_LRU.move_to_end(key)
    if entry is not None and entry.matches(documents):
        if entry.revisions == revisions:
            return entry.truth_fn
        stats = Statistics(documents)
        strategy = _strategy_for(expression, stats)
        if strategy != entry.strategy:
            entry.truth_fn, entry.infos = _compiled_for(
                expression, strategy, stats)
            entry.strategy = strategy
        entry.revisions = revisions
        return entry.truth_fn
    stats = Statistics(documents)
    strategy = _strategy_for(expression, stats)
    truth_fn, infos = _compiled_for(expression, strategy, stats)
    entry = _PlanEntry(expression, documents, revisions, strategy,
                       truth_fn, infos)
    fail.point("planner.plan_cache.insert")
    with _PLAN_LOCK:
        _PLAN_LRU[key] = entry
        _PLAN_LRU.move_to_end(key)
        while len(_PLAN_LRU) > _PLAN_CAPACITY:
            _PLAN_LRU.popitem(last=False)
    return truth_fn


def query_truth_planned(
        query: "Expression | str",
        documents: "list[Document] | tuple[Document, ...] | Document",
        variables: dict[str, Sequence] | None = None) -> bool:
    """Planned, compiled, early-exit truth evaluation of a query.

    The planned counterpart of
    :func:`repro.xquery.engine.query_truth`; verdicts are identical by
    construction (and by the differential suite).
    """
    if isinstance(query, str):
        from repro.xquery.parser import parse_query
        query = parse_query(query)
    if isinstance(documents, Document):
        documents = (documents,)
    else:
        documents = tuple(documents)
    truth_fn = _plan_truth(query, documents)
    rt = _Runtime(documents, dict(variables) if variables else {})
    try:
        return truth_fn(rt)
    except XQueryEvaluationError:
        # Pre-factor hoisting and conjunct reordering can evaluate a
        # factor the engine's fixed nesting order never reaches (empty
        # source, earlier short-circuit).  If that factor raises —
        # division by zero, unknown function — the engine's evaluation
        # order decides whether the error is real, so defer to it.
        from repro.xquery.engine import query_truth
        return query_truth(query, list(documents), variables)


def clear_caches() -> None:
    """Drop every cached plan and compiled closure (tests, benchmarks),
    plus the explain-fed cardinality feedback."""
    with _PLAN_LOCK:
        _PLAN_LRU.clear()
        _COMPILED.clear()
    with _PRIORS_LOCK:
        _FEEDBACK.clear()


# ---------------------------------------------------------------------------
# Explain
# ---------------------------------------------------------------------------

def explain_query(
        query: "Expression | str",
        documents: "list[Document] | Document",
        variables: dict[str, Sequence] | None = None) -> str:
    """Human-readable plan with estimated vs. actual cardinalities.

    Compiles the query fresh against current statistics, runs it once
    in profile mode, and renders each quantifier's chosen binding
    order.  "actual" counts reflect early-exit evaluation: a binding
    that never ran because an earlier one found no candidates (or a
    witness short-circuited the search) reports what it examined, not
    the full cardinality.
    """
    if isinstance(query, str):
        from repro.xquery.parser import parse_query
        query = parse_query(query)
    if isinstance(documents, Document):
        documents = [documents]
    docs = tuple(documents)
    stats = Statistics(docs)
    pl = _Plan(dict(_strategy_for(query, stats)), stats)
    truth_fn = _compile_truth(query, pl)
    rt = _Runtime(docs, dict(variables) if variables else {})
    rt.profile = {}
    rt.backends = []
    fallback_reason: str | None = None
    drifted = False
    try:
        verdict = truth_fn(rt)
    except XQueryEvaluationError as error:
        from repro.xquery.engine import query_truth
        verdict = query_truth(query, list(docs), variables)
        fallback_reason = str(error)
    lines: list[str] = []
    column_bits: list[str] = []
    for document in docs:
        store = document.column_store
        tables = getattr(store, "_tables", None) if store is not None \
            else None
        if tables:
            column_bits.extend(
                f"{document.root.tag}/{tag}={len(tables[tag])}"
                for tag in sorted(tables))
    if column_bits:
        lines.append("columns: " + "  ".join(column_bits))
    for info in pl.infos:
        lines.append(f"{info.kind} quantifier "
                     f"#{info.index + 1}: {render(info.expression)}")
        backend: tuple[str, str | None] | None = None
        for noted_index, noted_backend, noted_reason in rt.backends:
            if noted_index == info.index:
                backend = (noted_backend, noted_reason)
        if backend is None:
            lines.append("  backend: not evaluated")
        elif backend[1] is None:
            lines.append(f"  backend: {backend[0]}")
        else:
            lines.append(f"  backend: {backend[0]} ({backend[1]})")
        for rank, binding in enumerate(info.bindings, start=1):
            counters = rt.profile.get(binding.key, [0, 0])
            moved = "" if binding.original_index == rank - 1 \
                else f"  (was #{binding.original_index + 1})"
            lines.append(
                f"  {rank}. ${binding.name} in "
                f"{render(binding.source)}  [{binding.kind}]"
                f"  est~{binding.estimate:g}"
                f"  examined={counters[0]}  passed={counters[1]}"
                f"{moved}")
            examined = counters[0]
            if examined >= _REPLAN_MIN_EXAMINED \
                    and examined > max(binding.estimate, 1.0) \
                    * REPLAN_DRIFT_THRESHOLD:
                ratio = examined / max(binding.estimate, 1.0)
                note_drift(info.expression, binding.original_index,
                           examined)
                drifted = True
                lines.append(
                    f"     replan: ${binding.name} drift "
                    f"{ratio:.1f}x (est~{binding.estimate:g}, "
                    f"examined {examined}) — observed cardinality "
                    "fed back, cached plan invalidated")
    if drifted:
        # a same-revision cached plan would otherwise keep the stale
        # order forever: evict it so the next evaluation re-plans
        # with the fed-back cardinalities
        with _PLAN_LOCK:
            for key in [cached for cached in _PLAN_LRU
                        if cached[0] == query]:
                del _PLAN_LRU[key]
    if fallback_reason is not None:
        lines.append(
            f"backend: unplanned fallback ({fallback_reason})")
    lines.append(f"verdict: {'true' if verdict else 'false'}")
    return "\n".join(lines)


def render(expression: Expression) -> str:
    """Compact, best-effort text rendering of an AST (for explain)."""
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, bool):
            return "true()" if value else "false()"
        if isinstance(value, str):
            return f'"{value}"'
        return str(value)
    if isinstance(expression, TextLiteral):
        return f'"{expression.value}"'
    if isinstance(expression, VarRef):
        return f"${expression.name}"
    if isinstance(expression, ContextItem):
        return "."
    if isinstance(expression, SequenceExpr):
        return "(" + ", ".join(render(i) for i in expression.items) + ")"
    if isinstance(expression, PathExpr):
        parts: list[str] = []
        if expression.start is None:
            prefix = ""
        elif isinstance(expression.start, ContextItem):
            prefix = "."
        else:
            prefix = render(expression.start)
        for step, descendant in zip(expression.steps,
                                    expression.descendant_flags):
            sep = "//" if descendant else "/"
            if step.axis == "attribute":
                text = "@" + step.nodetest
            elif step.axis == "parent":
                text = ".."
            elif step.axis == "self":
                text = "."
            else:
                text = step.nodetest
            preds = "".join(f"[{render(p)}]" for p in step.predicates)
            parts.append(sep + text + preds)
        rendered = prefix + "".join(parts)
        return rendered[2:] if rendered.startswith("./") else rendered
    if isinstance(expression, BinaryOp):
        return (f"{render(expression.left)} {expression.op} "
                f"{render(expression.right)}")
    if isinstance(expression, UnaryOp):
        return f"{expression.op}{render(expression.operand)}"
    if isinstance(expression, FunctionCall):
        return (expression.name + "("
                + ", ".join(render(a) for a in expression.args) + ")")
    if isinstance(expression, Quantified):
        bindings = ", ".join(
            f"${name} in {render(source)}"
            for name, source in expression.bindings)
        return (f"{expression.kind} {bindings} satisfies "
                f"{render(expression.condition)}")
    if isinstance(expression, IfExpr):
        return (f"if ({render(expression.condition)}) then "
                f"{render(expression.then_branch)} else "
                f"{render(expression.else_branch)}")
    return repr(expression)


# ---------------------------------------------------------------------------
# Batch scope: incrementally repaired value indexes
# ---------------------------------------------------------------------------

class _BatchEntry:
    """One repairable value index shared across a batch's checks."""

    __slots__ = ("tag", "documents", "index_map", "key_of", "make_key",
                 "reverse", "mutation_mark")

    def __init__(self, tag: str, documents: tuple[Document, ...],
                 index_map: dict[tuple, list],
                 key_of: Callable[[Element], list],
                 make_key: Callable[[], tuple],
                 mutation_mark: int) -> None:
        self.tag = tag
        self.documents = documents
        self.index_map = index_map
        self.key_of = key_of
        self.make_key = make_key
        #: id(element) → keys it is filed under; built on first repair
        self.reverse: dict[int, list[tuple]] | None = None
        #: the scope's mutation counter when the index was registered;
        #: an entry registered after the in-flight update started
        #: mutating documents already reflects part of that update and
        #: must not be repaired or re-filed (see :meth:`BatchScope
        #: ._drop_unsettled`)
        self.mutation_mark = mutation_mark

    def _ensure_reverse(self) -> dict[int, list[tuple]]:
        if self.reverse is None:
            reverse: dict[int, list[tuple]] = {}
            for key, elements in self.index_map.items():
                for element in elements:
                    reverse.setdefault(id(element), []).append(key)
            self.reverse = reverse
        return self.reverse

    def add_element(self, element: Element) -> None:
        keys = self.key_of(element)
        reverse = self._ensure_reverse()
        for key in keys:
            self.index_map.setdefault(key, []).append(element)
        reverse[id(element)] = list(keys)

    def rekey_element(self, element: Element) -> None:
        reverse = self._ensure_reverse()
        old_keys = reverse.get(id(element), [])
        new_keys = self.key_of(element)
        if old_keys == new_keys:
            return
        for key in old_keys:
            bucket = self.index_map.get(key)
            if bucket is not None:
                for index, item in enumerate(bucket):
                    if item is element:
                        del bucket[index]
                        break
        for key in new_keys:
            self.index_map.setdefault(key, []).append(element)
        reverse[id(element)] = list(new_keys)


class BatchScope:
    """Per-thread registry of incrementally repairable value indexes.

    Installed by :func:`batch_scope` around a batch of updates.  The
    engine and the predicate-probe machinery register every cacheable
    index they build or hit; after each applied update the scope is
    told what changed (:meth:`note_applied`) and patches the affected
    entries in place, re-filing them in the engine's index cache under
    the post-update revision state — so the next check of the batch
    hits a warm, current index instead of rebuilding from scratch.

    Repairs apply only to indexes registered against the *settled*
    between-updates state: the guard announces every mid-update apply
    via :meth:`note_mutation`, and entries registered after that point
    (an index rebuilt while checking operation k of a multi-operation
    update, or inside an apply-check-rollback probe) are discarded at
    the next :meth:`note_applied`/:meth:`note_rejected` instead of
    being patched — they already reflect part of the in-flight update.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, _BatchEntry] = {}
        #: observability for tests/benchmarks
        self.repairs = 0
        self.registered = 0
        self.dropped = 0
        #: mutations the guard has announced (:meth:`note_mutation`)
        self.mutations = 0
        #: :attr:`mutations` at the last *settled* point — batch start
        #: or the end of the previous update's
        #: :meth:`note_applied`/:meth:`note_rejected`.  Entries
        #: registered while ``mutations > _settled`` were built from a
        #: mid-update document state.
        self._settled = 0

    def note_mutation(self) -> None:
        """The guard is about to mutate a document mid-update.

        Called before *every* operation application inside the
        in-flight update — the per-operation path, deferred transaction
        applies and apply-check-rollback probes alike.  Indexes
        registered after this point already contain (or, post-probe,
        once contained) part of the update and are dropped instead of
        repaired when the update settles.
        """
        self.mutations += 1

    def register(self, identity: tuple, tag: str,
                 documents: tuple[Document, ...],
                 index_map: dict[tuple, list],
                 key_of: Callable[[Element], list],
                 make_key: Callable[[], tuple]) -> None:
        entry = self._entries.get(identity)
        if entry is not None and entry.index_map is index_map:
            return
        self._entries[identity] = _BatchEntry(
            tag, documents, index_map, key_of, make_key,
            self.mutations)
        self.registered += 1

    def register_join(self, name: str, source: Expression,
                      key_side: Expression, context: QueryContext,
                      index_map: dict[tuple, list]) -> None:
        """Adopt a hash-join index built by the engine, if repairable.

        Repairable means: the source is a plain ``//tag`` fetch and the
        key expression reads only the element's own subtree (a downward
        path from the binding variable), so the only elements whose
        keys an insertion can change are ancestors of the insert point.
        Anything else is simply not registered — the engine rebuilds it
        per revision change, which is always correct.
        """
        tag = _simple_descendant_tag(source)
        if tag is None:
            return
        downpath = _var_downpath(key_side, name)
        if downpath is None:
            return
        documents = context.documents

        def key_of(element: Element) -> list[tuple]:
            keys: list[tuple] = []
            for value in atomize(_eval_downpath(downpath, element)):
                keys.extend(hash_keys(value))
            return keys

        def make_key() -> tuple:
            return engine._index_cache_key(
                source, key_side, QueryContext(documents, {}))

        self.register(("join", source, key_side,
                       tuple(d.uid for d in documents)),
                      tag, documents, index_map, key_of, make_key)

    def note_applied(self, records: list) -> None:
        """Repair entries after a committed update's operations.

        ``records`` are the transaction's
        :class:`repro.xupdate.apply.AppliedOperation` items.  Removals
        drop the affected entries (rebuild-on-miss is the correct
        fallback); insertions add new same-tag elements and re-key
        ancestor elements whose downward key paths now see the inserted
        content.  Finally every entry over a mutated document is
        re-filed under its post-update cache key.

        Only entries registered while the documents were *settled*
        (before the update's first apply) are repaired.  An index
        rebuilt mid-update — operation k's check runs after operations
        1..k−1 of the same update applied, and probes apply, check and
        roll back — already contains part of ``records``, so repairing
        it would double-file the inserted elements.  Those entries are
        dropped instead; rebuild-on-miss is the correct fallback.
        """
        self._drop_unsettled()
        fail.point("planner.batch.repair")
        touched_documents: set[int] = set()
        for record in records:
            document = record.document
            touched_documents.add(id(document))
            if record.removed:
                self._drop_for_document(document)
            for node in record.inserted:
                self._repair_insert(document, node)
        self._settled = self.mutations
        if not touched_documents:
            return
        for entry in self._entries.values():
            if any(id(document) in touched_documents
                   for document in entry.documents):
                engine._INDEX_CACHE.put(entry.make_key(),
                                        entry.index_map)
                self.repairs += 1

    def note_rejected(self) -> None:
        """Re-file entries after a rolled-back (illegal) update.

        The rollback restored the exact pre-update structure, so every
        *settled* index map is still correct — only the revision
        counters moved.  Entries registered after the update started
        mutating documents (mid-update rebuilds, probe-time rebuilds)
        still index the now-detached inserted nodes, so they are
        dropped rather than re-filed.
        """
        self._drop_unsettled()
        for entry in self._entries.values():
            engine._INDEX_CACHE.put(entry.make_key(), entry.index_map)
        self._settled = self.mutations

    def _drop_unsettled(self) -> None:
        """Forget entries registered during the in-flight update's
        mutation window — they reflect a partially applied state."""
        stale = [identity for identity, entry in self._entries.items()
                 if entry.mutation_mark > self._settled]
        for identity in stale:
            del self._entries[identity]
        self.dropped += len(stale)

    def abandon(self) -> None:
        """Drop every registered entry (a repair died mid-way).

        A half-patched index re-filed under the post-update cache key
        would serve wrong buckets; forgetting everything instead means
        the next check simply misses the cache and rebuilds — always
        correct, merely cold.  :meth:`~repro.core.guard.IntegrityGuard.
        check_batch` calls this when settling an update fails.
        """
        self.dropped += len(self._entries)
        self._entries.clear()
        self._settled = self.mutations

    def _drop_for_document(self, document: Document) -> None:
        dropped = [identity for identity, entry in self._entries.items()
                   if any(d is document for d in entry.documents)]
        for identity in dropped:
            del self._entries[identity]

    def _repair_insert(self, document: Document, node: Node) -> None:
        entries = [entry for entry in self._entries.values()
                   if any(d is document for d in entry.documents)]
        if not entries:
            return
        inserted_by_tag: dict[str, list[Element]] = {}
        if isinstance(node, Element):
            for element in node.iter_elements():
                inserted_by_tag.setdefault(element.tag, []).append(
                    element)
        ancestors: list[Element] = []
        anchor = node.parent
        while anchor is not None:
            ancestors.append(anchor)
            anchor = anchor.parent
        for entry in entries:
            for element in inserted_by_tag.get(entry.tag, ()):
                entry.add_element(element)
            for ancestor in ancestors:
                if ancestor.tag == entry.tag:
                    entry.rekey_element(ancestor)


def _simple_descendant_tag(source: Expression) -> str | None:
    if not isinstance(source, PathExpr) or source.start is not None:
        return None
    if len(source.steps) != 1 or source.descendant_flags != (True,):
        return None
    step = source.steps[0]
    if step.axis != "child" or step.predicates \
            or step.nodetest in _SIMPLE_STEP_NODETESTS:
        return None
    return step.nodetest


def _var_downpath(
        key_side: Expression,
        name: str) -> tuple[tuple[str, str], ...] | None:
    """``key_side`` as a downward path rooted at ``$name``, else None."""
    if not isinstance(key_side, PathExpr) \
            or not isinstance(key_side.start, VarRef) \
            or key_side.start.name != name:
        return None
    relative = PathExpr(ContextItem(), key_side.steps,
                        key_side.descendant_flags)
    return _downpath_steps(relative)


_BATCH = threading.local()


def active_batch() -> BatchScope | None:
    return getattr(_BATCH, "scope", None)


def note_batch_mutation() -> None:
    """Record an imminent document mutation with the active batch scope.

    The guard calls this before every operation application — per-
    operation applies, deferred transaction applies and apply-check-
    rollback probes.  No-op outside a batch.
    """
    fail.point("planner.batch.announce")
    scope = active_batch()
    if scope is not None:
        scope.note_mutation()


@contextmanager
def batch_scope():
    """Install a :class:`BatchScope` for the current thread."""
    previous = active_batch()
    scope = BatchScope()
    _BATCH.scope = scope
    try:
        yield scope
    finally:
        _BATCH.scope = previous


def _batch_join_sink(name: str, source: Expression,
                     key_side: Expression, context: QueryContext,
                     index_map: dict[tuple, list]) -> None:
    scope = active_batch()
    if scope is not None:
        scope.register_join(name, source, key_side, context, index_map)


engine._batch_index_sink = _batch_join_sink
