"""The value model of the engine: sequences of items.

A sequence is a Python ``list``; items are DOM nodes
(:class:`repro.xtree.node.Element` / ``Text``), strings, numbers and
booleans.  Strings obtained by atomizing nodes are *untyped atomics*
(:class:`UntypedAtomic`, a ``str`` subclass): general comparisons cast
them to the type of the other operand, so ``@pos = 2`` works even
though attribute values are stored as text.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import XQueryEvaluationError
from repro.xtree.node import Document, Element, Node, Text

Sequence = list
"""Type alias for readability: an XDM sequence."""


class UntypedAtomic(str):
    """A string whose type is not yet decided (node content)."""

    __slots__ = ()


def is_node(item: object) -> bool:
    return isinstance(item, (Node, Document))


def string_value(item: object) -> str:
    """The string value of any item."""
    if isinstance(item, Element):
        return item.string_value()
    if isinstance(item, Text):
        return item.value
    if isinstance(item, Document):
        return item.root.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float) and item.is_integer():
        return str(int(item))
    return str(item)


def atomize(sequence: Iterable[object]) -> list[object]:
    """Replace nodes by their (untyped) string values."""
    result: list[object] = []
    for item in sequence:
        if is_node(item):
            result.append(UntypedAtomic(string_value(item)))
        else:
            result.append(item)
    return result


def effective_boolean_value(sequence: list[object]) -> bool:
    """The XQuery effective boolean value of a sequence."""
    if not sequence:
        return False
    first = sequence[0]
    if is_node(first):
        return True
    if len(sequence) > 1:
        raise XQueryEvaluationError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0 and first == first  # NaN is false
    if isinstance(first, str):
        return len(first) > 0
    raise XQueryEvaluationError(
        f"no effective boolean value for {type(first).__name__}")


def to_number(item: object) -> float:
    """Numeric value of an atomic item (NaN on failure)."""
    if isinstance(item, bool):
        return 1.0 if item else 0.0
    if isinstance(item, (int, float)):
        return float(item)
    if isinstance(item, str):
        try:
            return float(item.strip())
        except ValueError:
            return float("nan")
    if is_node(item):
        return to_number(string_value(item))
    return float("nan")


def compare_atomics(op: str, left: object, right: object) -> bool:
    """Compare two atomized items with untyped-atomic coercion.

    * untyped vs. number → numeric comparison;
    * untyped vs. string (or two untypeds) → string comparison;
    * number vs. number, string vs. string, bool vs. bool → direct.
    """
    if isinstance(left, UntypedAtomic) and isinstance(right, (int, float)) \
            and not isinstance(right, bool):
        left = to_number(left)
    elif isinstance(right, UntypedAtomic) \
            and isinstance(left, (int, float)) \
            and not isinstance(left, bool):
        right = to_number(right)
    if isinstance(left, bool) or isinstance(right, bool):
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        raise XQueryEvaluationError("booleans are not ordered")
    left_is_str = isinstance(left, str)
    right_is_str = isinstance(right, str)
    if left_is_str != right_is_str:
        # a typed string against a number: never equal, never ordered
        if op == "=":
            return False
        if op == "!=":
            return True
        raise XQueryEvaluationError(
            "cannot order a string against a number")
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise XQueryEvaluationError(f"unknown comparison operator {op!r}")


def general_compare(op: str, left: list[object],
                    right: list[object]) -> bool:
    """Existential comparison between two sequences."""
    left_atoms = atomize(left)
    right_atoms = atomize(right)
    for left_item in left_atoms:
        for right_item in right_atoms:
            if compare_atomics(op, left_item, right_item):
                return True
    return False
