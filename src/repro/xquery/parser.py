"""Recursive-descent parser for the XQuery fragment."""

from __future__ import annotations

from repro.errors import XQueryError
from repro.xquery.ast import (
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    FLWORClause,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathExpr,
    Quantified,
    SequenceExpr,
    TextLiteral,
    UnaryOp,
    VarRef,
    WhereClause,
)
from repro.xquery.lexer import Token, tokenize

_COMPARISON_TOKENS = {
    "EQ": "=", "NE": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">=",
}
_NODETEST_FUNCTIONS = {"text", "node", "position"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str, what: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise self.error(f"expected {what or kind}, found {token.value!r}")
        return self.advance()

    def error(self, message: str) -> XQueryError:
        token = self.peek()
        return XQueryError(message, token.line, token.column)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expression:
        """Comma-separated sequence expression."""
        items = [self.parse_expr_single()]
        while self.accept("COMMA"):
            items.append(self.parse_expr_single())
        if len(items) == 1:
            return items[0]
        return SequenceExpr(tuple(items))

    def parse_expr_single(self) -> Expression:
        token = self.peek()
        if token.kind in ("FOR", "LET"):
            return self.parse_flwor()
        if token.kind in ("SOME", "EVERY"):
            return self.parse_quantified()
        if token.kind == "IF":
            return self.parse_if()
        return self.parse_or()

    def parse_flwor(self) -> Expression:
        clauses: list[FLWORClause] = []
        while True:
            token = self.peek()
            if token.kind == "FOR":
                self.advance()
                while True:
                    self.expect("DOLLAR")
                    name = str(self.expect("NAME").value)
                    self.expect("IN")
                    clauses.append(ForClause(name, self.parse_expr_single()))
                    if not self.accept("COMMA"):
                        break
            elif token.kind == "LET":
                self.advance()
                while True:
                    self.expect("DOLLAR")
                    name = str(self.expect("NAME").value)
                    self.expect("ASSIGN", "':='")
                    clauses.append(LetClause(name, self.parse_expr_single()))
                    if not self.accept("COMMA"):
                        break
            elif token.kind == "WHERE":
                self.advance()
                clauses.append(WhereClause(self.parse_expr_single()))
            elif token.kind == "RETURN":
                self.advance()
                return FLWOR(tuple(clauses), self.parse_expr_single())
            else:
                raise self.error(
                    "expected 'for', 'let', 'where' or 'return'")

    def parse_quantified(self) -> Expression:
        kind = str(self.advance().value)
        bindings: list[tuple[str, Expression]] = []
        while True:
            self.expect("DOLLAR")
            name = str(self.expect("NAME").value)
            self.expect("IN")
            bindings.append((name, self.parse_expr_single()))
            if not self.accept("COMMA"):
                break
        self.expect("SATISFIES")
        return Quantified(kind, tuple(bindings), self.parse_expr_single())

    def parse_if(self) -> Expression:
        self.expect("IF")
        self.expect("LPAREN")
        condition = self.parse_expr()
        self.expect("RPAREN")
        self.expect("THEN")
        then_branch = self.parse_expr_single()
        self.expect("ELSE")
        else_branch = self.parse_expr_single()
        return IfExpr(condition, then_branch, else_branch)

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept("OR"):
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_comparison()
        while self.accept("AND"):
            left = BinaryOp("and", left, self.parse_comparison())
        return left

    def parse_comparison(self) -> Expression:
        left = self.parse_range()
        token = self.peek()
        if token.kind in _COMPARISON_TOKENS:
            # value-comparison keywords (eq, ne, ...) share token kinds
            # with the general operators and behave identically on the
            # singleton operands this fragment produces
            self.advance()
            return BinaryOp(_COMPARISON_TOKENS[token.kind], left,
                            self.parse_range())
        return left

    def parse_range(self) -> Expression:
        left = self.parse_additive()
        if self.accept("TO"):
            return BinaryOp("to", left, self.parse_additive())
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            if self.accept("PLUS"):
                left = BinaryOp("+", left, self.parse_multiplicative())
            elif self.accept("MINUS"):
                left = BinaryOp("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_union()
        while True:
            token = self.peek()
            if token.kind == "STAR":
                self.advance()
                left = BinaryOp("*", left, self.parse_union())
            elif token.kind in ("DIV", "IDIV", "MOD"):
                self.advance()
                left = BinaryOp(str(token.value), left, self.parse_union())
            else:
                return left

    def parse_union(self) -> Expression:
        left = self.parse_unary()
        while self.accept("PIPE"):
            left = BinaryOp("|", left, self.parse_unary())
        return left

    def parse_unary(self) -> Expression:
        if self.accept("MINUS"):
            return UnaryOp("-", self.parse_unary())
        if self.accept("PLUS"):
            return UnaryOp("+", self.parse_unary())
        return self.parse_path()

    # -- paths ------------------------------------------------------------------

    def parse_path(self) -> Expression:
        token = self.peek()
        if token.kind in ("SLASH", "DSLASH"):
            descendant = token.kind == "DSLASH"
            self.advance()
            steps = [self.parse_step()]
            flags = [descendant]
            self.parse_more_steps(steps, flags)
            return PathExpr(None, tuple(steps), tuple(flags))
        first = self.parse_postfix()
        if self.peek().kind in ("SLASH", "DSLASH"):
            steps: list[AxisStep] = []
            flags: list[bool] = []
            self.parse_more_steps(steps, flags)
            return PathExpr(first, tuple(steps), tuple(flags))
        return first

    def parse_more_steps(self, steps: list[AxisStep],
                         flags: list[bool]) -> None:
        while self.peek().kind in ("SLASH", "DSLASH"):
            flags.append(self.advance().kind == "DSLASH")
            steps.append(self.parse_step())

    def parse_step(self) -> AxisStep:
        token = self.peek()
        if token.kind == "DOTDOT":
            self.advance()
            return AxisStep("parent", "node()",
                            self.parse_predicates())
        if token.kind == "DOT":
            self.advance()
            return AxisStep("self", "node()", self.parse_predicates())
        if token.kind == "AT":
            self.advance()
            if self.accept("STAR"):
                return AxisStep("attribute", "*", self.parse_predicates())
            name = str(self.expect("NAME", "attribute name").value)
            return AxisStep("attribute", name, self.parse_predicates())
        if token.kind == "STAR":
            self.advance()
            return AxisStep("child", "*", self.parse_predicates())
        if token.kind == "NAME":
            name = str(self.advance().value)
            if self.peek().kind == "LPAREN":
                if name not in _NODETEST_FUNCTIONS:
                    raise self.error(
                        f"{name}() is not a node test; function calls "
                        "cannot appear mid-path")
                self.advance()
                self.expect("RPAREN")
                return AxisStep("child", f"{name}()",
                                self.parse_predicates())
            return AxisStep("child", name, self.parse_predicates())
        raise self.error(f"expected a path step, found {token.value!r}")

    def parse_predicates(self) -> tuple[Expression, ...]:
        predicates: list[Expression] = []
        while self.accept("LBRACKET"):
            predicates.append(self.parse_expr())
            self.expect("RBRACKET")
        return tuple(predicates)

    # -- primaries ----------------------------------------------------------------

    def parse_postfix(self) -> Expression:
        primary = self.parse_primary()
        predicates = self.parse_predicates()
        if predicates:
            # a predicate on a primary is modeled as a self step
            return PathExpr(primary,
                            (AxisStep("self", "node()", predicates),),
                            (False,))
        return primary

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            return Literal(str(token.value))
        if token.kind == "NUMBER":
            self.advance()
            return Literal(token.value)
        if token.kind == "DOLLAR":
            self.advance()
            name = str(self.expect("NAME", "variable name").value)
            return VarRef(name)
        if token.kind == "DOT":
            self.advance()
            return ContextItem()
        if token.kind == "LPAREN":
            self.advance()
            if self.accept("RPAREN"):
                return SequenceExpr(())
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "CONSTRUCTOR":
            self.advance()
            return _parse_constructor(str(token.value), token)
        if token.kind == "NAME" and self.peek(1).kind == "LPAREN":
            name = str(self.advance().value)
            self.advance()  # LPAREN
            args: list[Expression] = []
            if self.peek().kind != "RPAREN":
                args.append(self.parse_expr_single())
                while self.accept("COMMA"):
                    args.append(self.parse_expr_single())
            self.expect("RPAREN")
            return FunctionCall(name, tuple(args))
        if token.kind in ("NAME", "AT", "DOTDOT", "STAR"):
            # a relative path starting with a step
            steps = [self.parse_step()]
            flags = [False]
            self.parse_more_steps(steps, flags)
            return PathExpr(ContextItem(), tuple(steps), tuple(flags))
        raise self.error(f"unexpected token {token.value!r}")


def _parse_constructor(raw: str, token: Token) -> ElementConstructor:
    """Parse a CONSTRUCTOR token (``<tag .../>`` / ``<tag>text</tag>``)."""
    from repro.errors import XMLParseError
    from repro.xtree.parser import parse_fragment
    from repro.xtree.node import Element, Text

    try:
        nodes = parse_fragment(raw, keep_whitespace=True)
    except XMLParseError as error:
        raise XQueryError(f"malformed element constructor: {error.message}",
                          token.line, token.column) from error
    if len(nodes) != 1 or not isinstance(nodes[0], Element):
        raise XQueryError("expected a single element constructor",
                          token.line, token.column)
    element = nodes[0]
    children: list[Expression] = []
    for child in element.children:
        if isinstance(child, Text):
            children.append(TextLiteral(child.value))
        else:
            raise XQueryError(
                "nested element constructors are not supported",
                token.line, token.column)
    attributes = tuple(
        (name, Literal(value))
        for name, value in element.attributes.items())
    return ElementConstructor(element.tag, attributes, tuple(children))


_parse_calls = 0


def parse_calls() -> int:
    """Total :func:`parse_query` invocations in this process.

    Observability hook for the prepared-plan guarantees: the run-time
    checking tests snapshot this counter around ``try_execute`` and
    assert that pattern-matched updates trigger no query parsing.
    """
    return _parse_calls


def parse_query(text: str) -> Expression:
    """Parse an XQuery expression of the supported fragment."""
    global _parse_calls
    _parse_calls += 1
    parser = _Parser(tokenize(text))
    expression = parser.parse_expr()
    parser.expect("EOF", "end of query")
    return expression
