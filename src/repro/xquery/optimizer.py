"""Join-aware evaluation of quantified expressions.

The translated integrity checks are conjunctive joins written as
``some $v1 in src1, ..., $vn in srcn satisfies F1 and ... and Fk``.
Evaluating them by naive nested iteration is quadratic or worse in the
document size; a real XQuery engine (eXist in the paper) evaluates such
joins with value indexes.  This module provides the equivalent:

* **frontier evaluation** — bindings are processed breadth-first over a
  list of candidate environments;
* **condition pushdown** — every conjunct of the ``satisfies`` clause
  is applied as soon as the variables it mentions are bound, pruning
  the frontier early;
* **hash joins** — when a binding's source is uncorrelated (it does not
  reference variables of this quantifier) and some pushed-down conjunct
  is an equality linking the new variable to already-bound ones, the
  source is evaluated once, indexed by the equality's key expression,
  and probed per environment instead of iterated.

Hash keys are canonicalized to mirror the general-comparison coercion
rules (untyped atomics match both their string and numeric readings).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.concurrency import make_lock

from repro.xquery.ast import (
    AxisStep,
    BinaryOp,
    ContextItem,
    ElementConstructor,
    Expression,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    PathExpr,
    Quantified,
    SequenceExpr,
    TextLiteral,
    UnaryOp,
    VarRef,
    WhereClause,
)
from repro.xquery.values import Sequence, UntypedAtomic, atomize

Evaluator = Callable[..., Sequence]


def conjuncts(expression: Expression) -> list[Expression]:
    """Flatten an ``and`` tree into its conjuncts."""
    if isinstance(expression, BinaryOp) and expression.op == "and":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def free_variables(expression: Expression) -> frozenset[str]:
    """Names of the variables an expression references."""
    names: set[str] = set()
    _collect_variables(expression, names)
    return frozenset(names)


def _collect_variables(expression: Expression, names: set[str]) -> None:
    if isinstance(expression, VarRef):
        names.add(expression.name)
    elif isinstance(expression, (Literal, TextLiteral, ContextItem)):
        pass
    elif isinstance(expression, SequenceExpr):
        for item in expression.items:
            _collect_variables(item, names)
    elif isinstance(expression, PathExpr):
        if expression.start is not None:
            _collect_variables(expression.start, names)
        for step in expression.steps:
            for predicate in step.predicates:
                _collect_variables(predicate, names)
    elif isinstance(expression, AxisStep):  # pragma: no cover - not reached
        for predicate in expression.predicates:
            _collect_variables(predicate, names)
    elif isinstance(expression, BinaryOp):
        _collect_variables(expression.left, names)
        _collect_variables(expression.right, names)
    elif isinstance(expression, UnaryOp):
        _collect_variables(expression.operand, names)
    elif isinstance(expression, FunctionCall):
        for argument in expression.args:
            _collect_variables(argument, names)
    elif isinstance(expression, FLWOR):
        bound: set[str] = set()
        for clause in expression.clauses:
            if isinstance(clause, (ForClause, LetClause)):
                _collect_shadowed(clause.source, names, bound)
                bound.add(clause.variable)
            else:
                assert isinstance(clause, WhereClause)
                _collect_shadowed(clause.condition, names, bound)
        _collect_shadowed(expression.result, names, bound)
    elif isinstance(expression, Quantified):
        bound = set()
        for name, source in expression.bindings:
            _collect_shadowed(source, names, bound)
            bound.add(name)
        _collect_shadowed(expression.condition, names, bound)
    elif isinstance(expression, IfExpr):
        _collect_variables(expression.condition, names)
        _collect_variables(expression.then_branch, names)
        _collect_variables(expression.else_branch, names)
    elif isinstance(expression, ElementConstructor):
        for _, value in expression.attributes:
            _collect_variables(value, names)
        for child in expression.children:
            _collect_variables(child, names)


def _collect_shadowed(expression: Expression, names: set[str],
                      shadowed: set[str]) -> None:
    inner: set[str] = set()
    _collect_variables(expression, inner)
    names.update(inner - shadowed)


def index_dependencies(expression: Expression) -> frozenset[str] | None:
    """The element tags an expression's value can depend on.

    Used to key cached value indexes by *per-tag* document revisions
    (:meth:`repro.xtree.node.Document.tag_revision`) so an index
    survives updates that do not touch its tags.  Returns ``None`` when
    the dependency set cannot be bounded statically (wildcard steps,
    ``position()`` over mixed-tag siblings, ...); callers must then fall
    back to the whole-document revision.

    The analysis leans on the mutation model of :mod:`repro.xtree`:
    subtrees are attached/detached atomically (every element of the
    subtree bumps its own tag, text bumps its parent's tag) and
    attributes never change while a node is attached.  Under that
    model attribute and ``text()`` steps add no tags of their own — the
    owning element's tag, contributed by the preceding step or by the
    source the context node ranges over, already covers them — and
    numeric predicates are covered by the step tag, because candidate
    lists contain same-tag siblings only.  Explicit ``position()`` /
    ``last()`` uses are treated as unbounded.
    """
    with _DEPENDENCY_LOCK:
        cached = _DEPENDENCY_CACHE.get(expression, _MISSING)
    if cached is not _MISSING:
        return cached
    tags = _dependencies(expression)
    with _DEPENDENCY_LOCK:
        if len(_DEPENDENCY_CACHE) > 4096:
            _DEPENDENCY_CACHE.clear()
        _DEPENDENCY_CACHE[expression] = tags
    return tags


_MISSING = object()
_DEPENDENCY_CACHE: dict[Expression, frozenset[str] | None] = \
    {}  # guarded-by: _DEPENDENCY_LOCK
#: the analysis caches are process-global and hit by concurrent readers
#: (see repro.service); dict mutation is guarded, recomputation is
#: idempotent so it may race outside the lock
_DEPENDENCY_LOCK = make_lock("xquery.dependency_cache")

_UNBOUNDED_NODETESTS = {"*", "node()", "position()"}
_UNBOUNDED_FUNCTIONS = {"position", "last"}


def _dependencies(expression: Expression) -> frozenset[str] | None:
    if isinstance(expression, (Literal, TextLiteral, VarRef, ContextItem)):
        return frozenset()
    if isinstance(expression, PathExpr):
        tags: set[str] = set()
        if expression.start is not None:
            start = _dependencies(expression.start)
            if start is None:
                return None
            tags |= start
        for step in expression.steps:
            if step.nodetest in _UNBOUNDED_NODETESTS:
                return None
            if step.axis in ("child", "descendant"):
                if step.nodetest != "text()":
                    tags.add(step.nodetest)
            elif step.axis not in ("attribute", "parent", "self"):
                return None
            for predicate in step.predicates:
                inner = _dependencies(predicate)
                if inner is None:
                    return None
                tags |= inner
        return frozenset(tags)
    if isinstance(expression, FunctionCall):
        if expression.name in _UNBOUNDED_FUNCTIONS:
            return None
        return _union(expression.args)
    if isinstance(expression, SequenceExpr):
        return _union(expression.items)
    if isinstance(expression, BinaryOp):
        return _union((expression.left, expression.right))
    if isinstance(expression, UnaryOp):
        return _dependencies(expression.operand)
    if isinstance(expression, IfExpr):
        return _union((expression.condition, expression.then_branch,
                       expression.else_branch))
    if isinstance(expression, Quantified):
        return _union([source for _, source in expression.bindings]
                      + [expression.condition])
    if isinstance(expression, FLWOR):
        parts: list[Expression] = []
        for clause in expression.clauses:
            if isinstance(clause, (ForClause, LetClause)):
                parts.append(clause.source)
            else:
                assert isinstance(clause, WhereClause)
                parts.append(clause.condition)
        parts.append(expression.result)
        return _union(parts)
    if isinstance(expression, ElementConstructor):
        return _union([value for _, value in expression.attributes]
                      + list(expression.children))
    return None


def _union(expressions) -> frozenset[str] | None:
    tags: set[str] = set()
    for expression in expressions:
        inner = _dependencies(expression)
        if inner is None:
            return None
        tags |= inner
    return frozenset(tags)


#: functions whose value depends on the dynamic focus position
_FOCUS_FUNCTIONS = {"position", "last"}
#: functions/operators whose result is statically a singleton boolean
_BOOLEAN_FUNCTIONS = {"not", "exists", "empty", "boolean", "true", "false",
                      "contains", "starts-with", "ends-with"}
_BOOLEAN_OPS = {"and", "or", "=", "!=", "<", "<=", ">", ">="}


def boolean_filter_safe(predicate: Expression) -> bool:
    """Whether a step predicate filters purely by effective boolean value.

    The generic path applies predicates per parent item, so positions
    run over each parent's candidate list.  A predicate whose result is
    statically a singleton boolean can never trigger the numeric
    positional rule, and if it also never reads ``position()``/
    ``last()`` at its own focus level it is insensitive to how the
    candidate list is partitioned — it may be applied element-wise
    over a whole-document tag-index fetch without changing semantics.
    Nested step predicates establish their own focus and do not count.
    """
    return _statically_boolean(predicate) \
        and not _reads_own_focus_position(predicate)


def _statically_boolean(expression: Expression) -> bool:
    if isinstance(expression, BinaryOp):
        return expression.op in _BOOLEAN_OPS
    if isinstance(expression, FunctionCall):
        return expression.name in _BOOLEAN_FUNCTIONS
    if isinstance(expression, Quantified):
        return True
    if isinstance(expression, Literal):
        return isinstance(expression.value, bool)
    if isinstance(expression, IfExpr):
        return _statically_boolean(expression.then_branch) \
            and _statically_boolean(expression.else_branch)
    return False


def _reads_own_focus_position(expression: Expression) -> bool:
    """``position()``/``last()`` used at the expression's own focus level.

    Descends into every sub-expression *except* step predicates, which
    evaluate under a focus of their own.
    """
    if isinstance(expression, FunctionCall):
        if expression.name in _FOCUS_FUNCTIONS:
            return True
        return any(_reads_own_focus_position(a) for a in expression.args)
    if isinstance(expression, PathExpr):
        return expression.start is not None \
            and _reads_own_focus_position(expression.start)
    if isinstance(expression, BinaryOp):
        return _reads_own_focus_position(expression.left) \
            or _reads_own_focus_position(expression.right)
    if isinstance(expression, UnaryOp):
        return _reads_own_focus_position(expression.operand)
    if isinstance(expression, SequenceExpr):
        return any(_reads_own_focus_position(i) for i in expression.items)
    if isinstance(expression, IfExpr):
        return _reads_own_focus_position(expression.condition) \
            or _reads_own_focus_position(expression.then_branch) \
            or _reads_own_focus_position(expression.else_branch)
    if isinstance(expression, Quantified):
        return any(_reads_own_focus_position(source)
                   for _, source in expression.bindings) \
            or _reads_own_focus_position(expression.condition)
    if isinstance(expression, FLWOR):
        for clause in expression.clauses:
            if isinstance(clause, (ForClause, LetClause)):
                if _reads_own_focus_position(clause.source):
                    return True
            else:
                assert isinstance(clause, WhereClause)
                if _reads_own_focus_position(clause.condition):
                    return True
        return _reads_own_focus_position(expression.result)
    if isinstance(expression, ElementConstructor):
        return any(_reads_own_focus_position(v)
                   for _, v in expression.attributes) \
            or any(_reads_own_focus_position(c)
                   for c in expression.children)
    return False


def focus_free(expression: Expression) -> bool:
    """No context item, ``position()`` or ``last()`` at the own focus level.

    A focus-free expression evaluates to the same value for every
    candidate of a predicate, so it can serve as the probe side of a
    value-index lookup.  (Variable references are fine — they are bound
    outside the predicate.)
    """
    if isinstance(expression, ContextItem):
        return False
    if isinstance(expression, PathExpr):
        if expression.start is None:
            return True
        return focus_free(expression.start)
    if isinstance(expression, FunctionCall):
        if expression.name in _FOCUS_FUNCTIONS:
            return False
        return all(focus_free(a) for a in expression.args)
    if isinstance(expression, BinaryOp):
        return focus_free(expression.left) and focus_free(expression.right)
    if isinstance(expression, UnaryOp):
        return focus_free(expression.operand)
    if isinstance(expression, SequenceExpr):
        return all(focus_free(i) for i in expression.items)
    if isinstance(expression, IfExpr):
        return focus_free(expression.condition) \
            and focus_free(expression.then_branch) \
            and focus_free(expression.else_branch)
    if isinstance(expression, (Literal, TextLiteral, VarRef)):
        return True
    if isinstance(expression, Quantified):
        return all(focus_free(source)
                   for _, source in expression.bindings) \
            and focus_free(expression.condition)
    return False


def hash_keys(item: object) -> list[tuple]:
    """Canonical hash keys of one atomized item.

    Two items can compare equal under general-comparison coercion iff
    they share a key:

    * numbers (and booleans) → ``("num", float)``;
    * typed strings → ``("str", value)``;
    * untyped atomics → the string key plus, when the text parses as a
      number, the numeric key.
    """
    if isinstance(item, bool):
        return [("num", float(item))]
    if isinstance(item, (int, float)):
        if item != item:  # NaN never equals anything
            return []
        return [("num", float(item))]
    if isinstance(item, UntypedAtomic):
        keys: list[tuple] = [("str", str(item))]
        try:
            keys.append(("num", float(str(item).strip())))
        except ValueError:
            pass
        return keys
    if isinstance(item, str):
        return [("str", item)]
    return []


def probe_keys(sequence: Sequence) -> set[tuple]:
    """Hash keys of every atomized item of a probe sequence."""
    keys: set[tuple] = set()
    for item in atomize(sequence):
        keys.update(hash_keys(item))
    return keys


class JoinPlan:
    """The static plan of one quantified expression (cached on the AST).

    ``steps[i]`` describes binding *i*: whether its source is
    correlated with earlier quantifier variables, and which pushed-down
    conjuncts become checkable right after it binds.
    """

    __slots__ = ("bindings", "checks_after", "correlated", "equality_for")

    def __init__(self, quantified: Quantified) -> None:
        factors = conjuncts(quantified.condition)
        names = [name for name, _ in quantified.bindings]
        position = {name: index for index, name in enumerate(names)}
        factor_vars = [free_variables(factor) for factor in factors]
        self.bindings = quantified.bindings
        self.correlated = []
        for index, (_, source) in enumerate(quantified.bindings):
            source_vars = free_variables(source)
            self.correlated.append(
                any(name in position and position[name] < index
                    for name in source_vars))
        # a factor becomes checkable after the last quantifier variable
        # it mentions is bound (outer variables are always bound)
        self.checks_after: list[list[Expression]] = [
            [] for _ in quantified.bindings]
        self.equality_for: list[tuple | None] = [
            None for _ in quantified.bindings]
        for factor, variables in zip(factors, factor_vars):
            latest = -1
            for name in variables:
                if name in position:
                    latest = max(latest, position[name])
            slot = max(latest, 0)
            self.checks_after[slot].append(factor)
        # hash-join detection: for an uncorrelated binding i, find an
        # equality factor L = R checkable at i where one side mentions
        # only binding i (plus outer vars) and the other only earlier
        # bindings (plus outer vars)
        for index, (name, _) in enumerate(quantified.bindings):
            if self.correlated[index]:
                continue
            for factor in self.checks_after[index]:
                if not (isinstance(factor, BinaryOp) and factor.op == "="):
                    continue
                left_vars = free_variables(factor.left)
                right_vars = free_variables(factor.right)
                earlier = set(names[:index])
                if self._side_ok(left_vars, name, position) \
                        and right_vars & set(names) <= earlier:
                    self.equality_for[index] = (factor, factor.left,
                                                factor.right)
                    break
                if self._side_ok(right_vars, name, position) \
                        and left_vars & set(names) <= earlier:
                    self.equality_for[index] = (factor, factor.right,
                                                factor.left)
                    break

    @staticmethod
    def _side_ok(variables: frozenset[str], name: str,
                 position: dict[str, int]) -> bool:
        quantifier_vars = {var for var in variables if var in position}
        return quantifier_vars == {name}


_PLAN_CACHE: dict[Quantified, JoinPlan] = {}  # guarded-by: _PLAN_LOCK
_PLAN_LOCK = make_lock("xquery.plan_cache")


def plan_for(quantified: Quantified) -> JoinPlan:
    """The (cached) join plan of a quantified expression.

    AST nodes are immutable and hash by value, so structurally equal
    expressions share one plan.  Plans are immutable once built, so two
    threads racing on a miss at worst build the same plan twice.
    """
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(quantified)
    if plan is None:
        plan = JoinPlan(quantified)
        with _PLAN_LOCK:
            if len(_PLAN_CACHE) > 4096:
                _PLAN_CACHE.clear()
            _PLAN_CACHE[quantified] = plan
    return plan
