"""Synthetic data and workloads for the paper's evaluation.

The paper generated its datasets by remapping DBLP into the running
example's schema.  Without that dump, :mod:`repro.datagen.corpus`
produces deterministic DBLP-like documents (``pub.xml`` + ``rev.xml``)
with controllable size, and :mod:`repro.datagen.workload` produces
legal and illegal update statements for both benchmark constraints.
:mod:`repro.datagen.running_example` holds the canonical DTDs,
constraints and update statements of sections 3.2-5.1, shared by the
tests, the examples and the benchmarks.
"""

from repro.datagen.running_example import (
    CONFLICT_OF_INTEREST,
    CONFERENCE_WORKLOAD,
    PUB_DTD,
    REV_DTD,
    SECTION_4_1_XUPDATE,
    make_schema,
    submission_xupdate,
)
from repro.datagen.corpus import (
    CorpusSpec,
    corpus_size_bytes,
    generate_corpus,
    spec_for_size,
)
from repro.datagen.workload import (
    illegal_submission,
    legal_submission,
    busy_reviewer_targets,
)

__all__ = [
    "CONFLICT_OF_INTEREST",
    "CONFERENCE_WORKLOAD",
    "PUB_DTD",
    "REV_DTD",
    "SECTION_4_1_XUPDATE",
    "make_schema",
    "submission_xupdate",
    "CorpusSpec",
    "corpus_size_bytes",
    "generate_corpus",
    "spec_for_size",
    "illegal_submission",
    "legal_submission",
    "busy_reviewer_targets",
]
