"""Update-workload generation for the benchmarks.

Produces XUpdate statements (single-author submission insertions — the
pattern U of example 6) that are known-legal or known-illegal w.r.t.
the running-example constraints, targeting reviewers of a generated
corpus.
"""

from __future__ import annotations

import random

from repro.datagen.running_example import submission_xupdate
from repro.xtree.node import Document, Element


def _tracks(rev_doc: Document) -> list[Element]:
    return rev_doc.root.element_children("track")


def _reviewer_name(rev: Element) -> str:
    child = rev.first_child("name")
    return child.text() if child is not None else ""


def busy_reviewer_targets(rev_doc: Document) -> list[tuple[int, int, str]]:
    """(track index, rev index, name) of the workload-threshold reviewers."""
    targets = []
    for track_number, track in enumerate(_tracks(rev_doc), start=1):
        for rev_number, rev in enumerate(
                track.element_children("rev"), start=1):
            name = _reviewer_name(rev)
            if name.startswith("Busy Reviewer"):
                targets.append((track_number, rev_number, name))
    return targets


def _normal_reviewer_targets(rev_doc: Document) -> list[tuple[int, int, str]]:
    targets = []
    for track_number, track in enumerate(_tracks(rev_doc), start=1):
        for rev_number, rev in enumerate(
                track.element_children("rev"), start=1):
            name = _reviewer_name(rev)
            if not name.startswith("Busy Reviewer"):
                targets.append((track_number, rev_number, name))
    return targets


def legal_submission(rev_doc: Document, rng: random.Random,
                     kind: str = "append") -> str:
    """An insertion that violates neither constraint.

    Targets a non-busy reviewer with a brand-new author name (never a
    reviewer, never a publication author).
    """
    track, rev, _ = rng.choice(_normal_reviewer_targets(rev_doc))
    author = f"Fresh Author {rng.randrange(10 ** 9)}"
    title = f"New Submission {rng.randrange(10 ** 9)}"
    return submission_xupdate(track, rev, title, author, kind=kind)


def illegal_submission(rev_doc: Document, rng: random.Random,
                       constraint: str = "conflict",
                       kind: str = "append") -> str:
    """An insertion that violates one of the constraints.

    * ``constraint="conflict"`` — the submission's author *is* the
      assigned reviewer (the ``A = R`` branch of example 1);
    * ``constraint="workload"`` — an 11th submission for a busy
      reviewer already sitting in three tracks with 10 submissions.
    """
    if constraint == "conflict":
        track, rev, reviewer = rng.choice(
            _normal_reviewer_targets(rev_doc))
        title = f"Conflicted Submission {rng.randrange(10 ** 9)}"
        return submission_xupdate(track, rev, title, reviewer, kind=kind)
    if constraint == "workload":
        targets = busy_reviewer_targets(rev_doc)
        if not targets:
            raise ValueError("corpus has no busy reviewers")
        track, rev, _ = rng.choice(targets)
        author = f"Fresh Author {rng.randrange(10 ** 9)}"
        title = f"Overload Submission {rng.randrange(10 ** 9)}"
        return submission_xupdate(track, rev, title, author, kind=kind)
    raise ValueError(f"unknown constraint kind {constraint!r}")
