"""Deterministic DBLP-like corpus generation.

The generator produces a ``rev.xml`` (tracks / reviewers / submissions)
and a matching ``pub.xml`` (publications with coauthor lists) that are
*consistent* with both running-example constraints, plus a controllable
population of "busy" reviewers who sit exactly at the conference-
workload threshold (3 tracks, 10 submissions) so that a single extra
submission flips them — the illegal-update scenario of figure 1(b).

Reviewer names never occur as authors, so the base corpus cannot
violate the conflict-of-interest constraint; illegal conflict updates
are produced by :mod:`repro.datagen.workload`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.xtree.node import Document, Element, Text
from repro.xtree.serializer import serialize

_FIRST = ["Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "John",
          "Leslie", "Tim", "Radia", "Frances", "Niklaus", "Tony", "Edgar",
          "Stephen", "Shafi", "Silvio", "Manuel", "Robin", "Dana"]
_LAST = ["Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth",
         "Backus", "Lamport", "Berners-Lee", "Perlman", "Allen", "Wirth",
         "Hoare", "Codd", "Cook", "Goldwasser", "Micali", "Blum",
         "Milner", "Scott"]
_TOPICS = ["Streams", "Indexes", "Joins", "Views", "Schemas", "Queries",
           "Transactions", "Caches", "Graphs", "Trees", "Logs", "Keys"]
_ADJECTIVES = ["Adaptive", "Incremental", "Efficient", "Scalable",
               "Declarative", "Distributed", "Robust", "Optimal",
               "Practical", "Unified"]


@dataclass(frozen=True)
class CorpusSpec:
    """Knobs of the corpus generator."""

    tracks: int = 4
    revs_per_track: int = 10
    subs_per_rev: int = 6
    auts_per_sub: int = 2
    pubs: int = 120
    auts_per_pub: int = 2
    busy_reviewers: int = 2
    author_pool: int = 200
    seed: int = 2006

    def scaled(self, factor: float) -> "CorpusSpec":
        """A spec with roughly ``factor`` times the volume."""
        return replace(
            self,
            revs_per_track=max(1, round(self.revs_per_track * factor)),
            pubs=max(1, round(self.pubs * factor)),
        )


def _author_name(rng: random.Random, pool: int) -> str:
    index = rng.randrange(pool)
    first = _FIRST[index % len(_FIRST)]
    last = _LAST[(index // len(_FIRST)) % len(_LAST)]
    return f"{first} {last} {index}"


def _reviewer_name(track: int, position: int) -> str:
    return f"Reviewer {track}-{position}"


def _title(rng: random.Random) -> str:
    return (f"{rng.choice(_ADJECTIVES)} {rng.choice(_TOPICS)} for "
            f"{rng.choice(_TOPICS)} {rng.randrange(10000)}")


def _text_element(tag: str, value: str) -> Element:
    element = Element(tag)
    element.append(Text(value))
    return element


def _sub(rng: random.Random, spec: CorpusSpec) -> Element:
    sub = Element("sub")
    sub.append(_text_element("title", _title(rng)))
    count = 1 + rng.randrange(spec.auts_per_sub)
    names = {_author_name(rng, spec.author_pool) for _ in range(count)}
    for name in sorted(names):
        auts = Element("auts")
        auts.append(_text_element("name", name))
        sub.append(auts)
    return sub


def _rev(rng: random.Random, spec: CorpusSpec, name: str,
         subs: int) -> Element:
    rev = Element("rev")
    rev.append(_text_element("name", name))
    for _ in range(max(1, subs)):
        rev.append(_sub(rng, spec))
    return rev


def generate_corpus(spec: CorpusSpec) -> tuple[Document, Document]:
    """Generate ``(pub_doc, rev_doc)`` for a spec.

    Busy reviewers (named ``Busy Reviewer k``) appear in the first
    three tracks and hold 10 submissions in total (4+3+3) — consistent,
    but one submission away from violating the workload policy.
    """
    rng = random.Random(spec.seed)
    review = Element("review")
    busy = min(spec.busy_reviewers,
               spec.revs_per_track) if spec.tracks >= 3 else 0
    busy_subs = {0: 4, 1: 3, 2: 3}  # 10 in total across three tracks
    for track_index in range(spec.tracks):
        track = Element("track")
        track.append(_text_element("name", f"Track {track_index + 1}"))
        for rev_index in range(spec.revs_per_track):
            if track_index < 3 and rev_index < busy:
                name = f"Busy Reviewer {rev_index + 1}"
                subs = busy_subs[track_index]
            else:
                name = _reviewer_name(track_index + 1, rev_index + 1)
                subs = spec.subs_per_rev
            track.append(_rev(rng, spec, name, subs))
        review.append(track)
    rev_doc = Document(review)

    dblp = Element("dblp")
    for _ in range(spec.pubs):
        pub = Element("pub")
        pub.append(_text_element("title", _title(rng)))
        count = 1 + rng.randrange(spec.auts_per_pub)
        names = {_author_name(rng, spec.author_pool) for _ in range(count)}
        for name in sorted(names):
            aut = Element("aut")
            aut.append(_text_element("name", name))
            pub.append(aut)
        dblp.append(pub)
    pub_doc = Document(dblp)
    return pub_doc, rev_doc


def corpus_size_bytes(documents: tuple[Document, Document]) -> int:
    """Total serialized size of a corpus, in bytes."""
    return sum(len(serialize(doc).encode()) for doc in documents)


def spec_for_size(target_bytes: int, base: CorpusSpec | None = None
                  ) -> CorpusSpec:
    """A spec whose corpus serializes to roughly ``target_bytes``.

    One small probe corpus is generated to measure the bytes-per-unit
    cost, then the spec is scaled linearly (the per-reviewer and
    per-publication costs dominate).
    """
    base = base or CorpusSpec()
    probe_spec = base.scaled(0.25) if base.revs_per_track >= 4 else base
    probe = generate_corpus(probe_spec)
    probe_bytes = corpus_size_bytes(probe)
    factor = target_bytes / probe_bytes * (
        probe_spec.revs_per_track / base.revs_per_track)
    return base.scaled(factor)
