"""The paper's running example: DTDs, constraints, updates.

Everything here is verbatim from the paper (sections 3.2, 4.1, 5.1) in
the library's concrete syntaxes.
"""

from __future__ import annotations

#: DTD of ``pub.xml`` (section 3.2)
PUB_DTD = """
<!ELEMENT dblp (pub)*>
<!ELEMENT pub (title, aut+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT aut (name)>
<!ELEMENT name (#PCDATA)>
"""

#: DTD of ``rev.xml`` (section 3.2)
REV_DTD = """
<!ELEMENT review (track)+>
<!ELEMENT track (name, rev+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT rev (name, sub+)>
<!ELEMENT sub (title, auts+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT auts (name)>
"""

#: Example 1 — no conflict of interest in the review process: nobody
#: reviews a paper written by a coauthor or by him/herself.
CONFLICT_OF_INTEREST = """
<- //rev[/name/text() -> R]/sub/auts/name/text() -> A
   /\\ (A = R \\/ //pub[/aut/name/text() -> A /\\ aut/name/text() -> R])
"""

#: Example 2 — a reviewer involved in three or more tracks cannot
#: review more than 10 papers.
CONFERENCE_WORKLOAD = """
<- Cnt_D{[R]; //track[/rev/name/text() -> R]} >= 3
   /\\ Cnt_D{[R]; //rev[/name/text() -> R]/sub} > 10
"""

#: The XUpdate statement of section 4.1.
SECTION_4_1_XUPDATE = """<?xml version="1.0"?>
<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  <xupdate:insert-after select="/review/track[2]/rev[5]/sub[6]">
    <xupdate:element name="sub">
      <title> Taming Web Services </title>
      <auts> <name> Jack </name> </auts>
    </xupdate:element>
  </xupdate:insert-after>
</xupdate:modifications>"""


def submission_xupdate(track: int, rev: int, title: str, author: str,
                       kind: str = "append") -> str:
    """An XUpdate statement adding a single-author submission.

    ``kind="append"`` appends the submission to the reviewer (the
    update pattern U of example 6); ``kind="after"`` inserts it after
    the reviewer's last existing submission.
    """
    if kind == "append":
        select = f"/review/track[{track}]/rev[{rev}]"
        opening = f'<xupdate:append select="{select}">'
        closing = "</xupdate:append>"
    else:
        select = f"/review/track[{track}]/rev[{rev}]/sub[1]"
        opening = f'<xupdate:insert-after select="{select}">'
        closing = "</xupdate:insert-after>"
    return f"""<?xml version="1.0"?>
<xupdate:modifications version="1.0"
    xmlns:xupdate="http://www.xmldb.org/xupdate">
  {opening}
    <xupdate:element name="sub">
      <title>{_escape(title)}</title>
      <auts><name>{_escape(author)}</name></auts>
    </xupdate:element>
  {closing}
</xupdate:modifications>"""


def _escape(value: str) -> str:
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def make_schema(register_submission_pattern: bool = True):
    """The compiled :class:`repro.core.ConstraintSchema` of the paper.

    Contains both running-example constraints; when
    ``register_submission_pattern`` is set, the single-author submission
    insertion pattern (example 6) is registered for both ``append`` and
    ``insert-after`` forms.
    """
    from repro.core.schema import ConstraintSchema

    schema = ConstraintSchema(
        dtds=[PUB_DTD, REV_DTD],
        constraints=[CONFLICT_OF_INTEREST, CONFERENCE_WORKLOAD],
        names=["conflict_of_interest", "conference_workload"],
    )
    if register_submission_pattern:
        schema.register_pattern(
            submission_xupdate(1, 1, "x", "y", kind="append"))
        schema.register_pattern(
            submission_xupdate(1, 1, "x", "y", kind="after"))
    return schema
