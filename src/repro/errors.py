"""Exception hierarchy for the whole library.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch one type at the API boundary.  Parsing errors carry a position when
the source location is known.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """A textual input (XML, DTD, XPathLog, XQuery, XUpdate) is malformed.

    Attributes:
        message: human-readable description of the problem.
        line: 1-based line of the offending token, or ``None``.
        column: 1-based column of the offending token, or ``None``.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)


class XMLParseError(ParseError):
    """Malformed XML document."""


class DTDError(ParseError):
    """Malformed DTD or a schema-level inconsistency within a DTD."""


class ValidationError(ReproError):
    """An XML document does not conform to its DTD."""


class SchemaError(ReproError):
    """The relational mapping cannot represent a construct, or a name is
    unknown to the compiled schema."""


class FrozenDocumentError(ReproError):
    """A structural mutation reached a frozen (snapshot) document.

    Snapshot clones published for lock-free readers are immutable by
    contract; any adopt/orphan against one is a routing bug — writes
    must go to the live tree behind the store's writer lock."""


class XPathLogError(ParseError):
    """Malformed XPathLog constraint."""


class CompilationError(ReproError):
    """An XPathLog constraint cannot be compiled to Datalog against the
    current schema (unknown tag, unsupported axis, ...).

    Attributes:
        code: the ``XICnnn`` diagnostic code classifying the problem
            (see ``docs/diagnostics.md``), when one applies.
    """

    def __init__(self, message: str, code: str | None = None) -> None:
        self.code = code
        super().__init__(message)


class DatalogEvaluationError(ReproError):
    """A denial cannot be evaluated against the fact database (unbound
    parameter, unsafe variable occurring only in comparisons, ...)."""


class XQueryError(ParseError):
    """Malformed XQuery expression."""


class XQueryEvaluationError(ReproError):
    """A well-formed XQuery expression failed during evaluation (unknown
    variable or function, type error, ...)."""


class XUpdateError(ParseError):
    """Malformed XUpdate modification document."""


class UpdateApplicationError(ReproError):
    """An update cannot be applied to the target document (select path
    resolves to nothing, target has the wrong node kind, ...)."""


class AmbiguousSelectError(UpdateApplicationError):
    """A select path matches more than one element, so the operation has
    no single well-defined target."""


class SimplificationError(ReproError):
    """The simplification procedure cannot produce a sound optimized check
    for a constraint/update-pattern pair.  Callers fall back to the full
    (brute-force) check in this case, mirroring footnote 4 of the paper."""


class PatternMatchError(ReproError):
    """A concrete update does not match any registered update pattern."""


class IntegrityViolationError(ReproError):
    """Raised by the guard when an update would violate integrity.

    Attributes:
        violations: list of human-readable violation descriptions, one per
            violated constraint.
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        super().__init__(
            "update rejected; violated constraints: " + ", ".join(violations))


class RecoveryError(ReproError):
    """Durable state under a service directory cannot be opened or
    replayed: missing/corrupt snapshot, a write-ahead log whose record
    sequence is discontinuous, or a logged update the checker no longer
    accepts on replay.

    Attributes:
        code: a stable machine-readable classification of the failure
            (``recover.no-state``, ``recover.log-corrupt``,
            ``recover.snapshot-corrupt``, ``recover.replay-rejected``,
            ``recover.wal-dead``, or the generic ``recover.failed``),
            surfaced by the CLI and the networked service so callers
            never have to parse the message text.
    """

    def __init__(self, message: str,
                 code: str = "recover.failed") -> None:
        self.code = code
        super().__init__(message)
