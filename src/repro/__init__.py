"""Efficient integrity checking over XML documents.

A complete reproduction of *Braga, Campi, Martinenghi: "Efficient
Integrity Checking over XML Documents"* (EDBT 2006): declarative
XPathLog constraints over XML are compiled to Datalog denials on a
relational view of the documents, simplified at schema design time
w.r.t. parametric XUpdate patterns, translated to XQuery, and evaluated
*before* each update so that illegal updates are never executed.

Quickstart::

    from repro import ConstraintSchema, IntegrityGuard, parse_document

    schema = ConstraintSchema(
        dtds=[PUB_DTD, REV_DTD],
        constraints=[CONFLICT_OF_INTEREST, WORKLOAD_POLICY],
    )
    schema.register_pattern(EXAMPLE_SUBMISSION_XUPDATE)

    guard = IntegrityGuard(schema, [pub_doc, rev_doc])
    decision = guard.try_execute(some_xupdate_text)

See ``examples/quickstart.py`` for the full walk-through and
``DESIGN.md`` for the architecture.
"""

from repro.errors import (
    IntegrityViolationError,
    ReproError,
    SimplificationError,
)
from repro.xtree import (
    DTD,
    Document,
    Element,
    Text,
    parse_document,
    parse_dtd,
    serialize,
    validate,
)
from repro.relational import RelationalSchema, shred
from repro.datalog import Denial, FactDatabase, denial_holds, denial_violations
from repro.xpathlog import compile_constraint, parse_constraint
from repro.simplify import UpdatePattern, freshness_hypotheses, simp
from repro.xquery import evaluate_query, parse_query, translate_denials
from repro.xupdate import analyze_operation, apply_text, parse_modifications
from repro.core import (
    BruteForceChecker,
    ConstraintSchema,
    DatalogChecker,
    IntegrityGuard,
    UpdateDecision,
)
from repro.service import CheckingService, DocumentStore

__version__ = "1.0.0"

__all__ = [
    "IntegrityViolationError",
    "ReproError",
    "SimplificationError",
    "DTD",
    "Document",
    "Element",
    "Text",
    "parse_document",
    "parse_dtd",
    "serialize",
    "validate",
    "RelationalSchema",
    "shred",
    "Denial",
    "FactDatabase",
    "denial_holds",
    "denial_violations",
    "compile_constraint",
    "parse_constraint",
    "UpdatePattern",
    "freshness_hypotheses",
    "simp",
    "evaluate_query",
    "parse_query",
    "translate_denials",
    "analyze_operation",
    "apply_text",
    "parse_modifications",
    "BruteForceChecker",
    "CheckingService",
    "ConstraintSchema",
    "DatalogChecker",
    "DocumentStore",
    "IntegrityGuard",
    "UpdateDecision",
    "__version__",
]
