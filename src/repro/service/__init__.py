"""Thread-safe service layer over the run-time checkers.

The checkers in :mod:`repro.core` are correct for one caller at a
time; this package makes them safe to share — and safe to kill:

* :class:`ReadWriteLock` — writer-preferring reader–writer lock;
* :class:`DocumentStore` — the document collection behind one lock;
* :class:`CheckingService` — the façade serving updates (serialized)
  and read-only checks (concurrent), with a commit log whose
  sequential replay reproduces the store's exact state;
* :mod:`repro.service.snapshots` — the MVCC-lite read path: writers
  publish immutable copy-on-write :class:`DocumentSnapshot` versions
  at commit boundaries (:class:`SnapshotManager`), and reads pin one
  instead of taking the store lock, so checks never queue behind
  writers;
* :mod:`repro.service.persistence` — the durable form of that commit
  log: a write-ahead log fsync'd before each update commits, atomic
  snapshots, and restart-and-replay recovery
  (:meth:`CheckingService.open_durable` /
  :meth:`CheckingService.recover`).

Together with the :class:`~repro.xupdate.apply.TransactionLog` that
makes every update all-or-nothing, this is the robustness layer the
scaling work (sharding, batching, async) builds on.
"""

from repro.service.locks import ReadWriteLock
from repro.service.snapshots import DocumentSnapshot, SnapshotManager
from repro.service.persistence import (
    DurableLog,
    Snapshot,
    WalRecord,
    load_snapshot,
    write_snapshot,
)
from repro.service.store import (
    CheckingService,
    CommittedUpdate,
    DocumentStore,
    RecoveryInfo,
)

__all__ = [
    "ReadWriteLock",
    "CheckingService",
    "CommittedUpdate",
    "DocumentSnapshot",
    "DocumentStore",
    "DurableLog",
    "SnapshotManager",
    "RecoveryInfo",
    "Snapshot",
    "WalRecord",
    "load_snapshot",
    "write_snapshot",
]
