"""Durable persistence for the checking service: WAL + snapshots.

The paper's incremental method is only sound under the *consistency
assumption* — the pre-update state already satisfies the constraints,
so checking each accepted update suffices.  A crash that loses the
carefully checked state voids that assumption; this module makes the
state recoverable:

* :class:`DurableLog` — a write-ahead commit log.  Every accepted
  update is appended as a length-prefixed, CRC-checksummed, fsync'd
  record *before* it commits in memory (log-then-apply), so the log is
  always a superset of the applied updates: at most one trailing
  record may be logged-but-unapplied, and restart replays it.
* :func:`write_snapshot` / :func:`load_snapshot` — periodic full-state
  snapshots (every document serialized, plus the log sequence number
  they reflect), installed atomically by write-temp + rename so a
  crash mid-snapshot leaves the previous snapshot current.
* Recovery (driven by :meth:`repro.service.store.CheckingService.
  recover`) loads the snapshot, truncates any torn trailing WAL
  record, and replays the tail (records with ``seq >= snapshot lsn``)
  through the checker — every replayed record is re-checked, so a log
  tampered into illegality is rejected instead of silently applied.

Record format (all integers big-endian)::

    +--------------+--------------+----------------------------+
    | length (u32) | crc32 (u32)  | payload (length bytes)     |
    +--------------+--------------+----------------------------+

``payload`` is UTF-8 JSON ``{"seq": N, "update": "<xupdate...>"}``;
``update`` is the canonical XUpdate text (:func:`repro.xupdate.
canonical_update_text`), so records round-trip through the parser on
replay.  Scanning stops at the first record that is short, oversized,
checksum-mismatched or undecodable — everything from that offset on
is the *torn tail* and is truncated (a fully fsync'd record can never
be torn, so only the in-flight final append is ever dropped).

Crash containment: when an injected fault fires inside the log (the
``persistence.pre_fsync`` seam) or at the durable commit hook's
``persistence.post_append_pre_apply`` seam, the log marks itself
*crashed* — from the process's point of view it is dead, and every
later append or truncation is refused.  That keeps the in-process
fault harness honest: the on-disk artifacts of the simulated crash
(a torn half-record, a logged-but-unapplied record) survive exactly
as they would a real kill, instead of being tidied up by the still-
running process.

Lock rank: the log's internal lock ranks ``service.persistence`` —
below the store's reader–writer lock (appends happen under the writer
lock) and above the evaluation caches, which it never touches.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.concurrency import guarded_by, make_lock, requires_lock
from repro.errors import RecoveryError
from repro.testing.failpoints import fail

__all__ = [
    "DurableLog",
    "Snapshot",
    "WalRecord",
    "load_snapshot",
    "write_snapshot",
    "SNAPSHOT_NAME",
    "WAL_NAME",
]

SNAPSHOT_NAME = "snapshot.json"
WAL_NAME = "wal.log"

_HEADER = struct.Struct(">II")
#: a record larger than this is treated as torn garbage, not a length
_MAX_RECORD = 1 << 27


@dataclass(frozen=True)
class WalRecord:
    """One decoded commit-log record."""

    seq: int
    text: str
    #: file offset just past this record (the truncation point that
    #: keeps records ``<= seq``)
    end: int


@dataclass(frozen=True)
class Snapshot:
    """A loaded snapshot: serialized documents plus the WAL position.

    ``lsn`` is the sequence number the *next* appended record would
    have carried when the snapshot was taken: every record with
    ``seq < lsn`` is already reflected in ``documents``, every record
    with ``seq >= lsn`` must be replayed on top.
    """

    lsn: int
    documents: tuple[str, ...]


def _encode(seq: int, text: str) -> bytes:
    payload = json.dumps({"seq": seq, "update": text},
                         ensure_ascii=False).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan(data: bytes) -> tuple[list[WalRecord], int]:
    """Decode records from raw log bytes; stop at the torn tail.

    Returns the valid records and the offset of the first invalid
    byte (== ``len(data)`` for a clean log).  A sequence
    discontinuity among *valid* records is real corruption, not a
    torn append, and raises :class:`RecoveryError`.
    """
    records: list[WalRecord] = []
    offset = 0
    while len(data) - offset >= _HEADER.size:
        length, crc = _HEADER.unpack_from(data, offset)
        if not 0 < length <= _MAX_RECORD:
            break
        start = offset + _HEADER.size
        if len(data) - start < length:
            break
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            decoded = json.loads(payload)
            seq, text = decoded["seq"], decoded["update"]
        except (ValueError, TypeError, KeyError):
            break
        if not isinstance(seq, int) or not isinstance(text, str):
            break
        offset = start + length
        records.append(WalRecord(seq, text, offset))
    expected = range(records[0].seq,
                     records[0].seq + len(records)) if records else []
    if [record.seq for record in records] != list(expected):
        raise RecoveryError(
            "write-ahead log sequence is discontinuous: "
            f"{[record.seq for record in records]!r}",
            code="recover.log-corrupt")
    if records and records[0].seq != 0:
        raise RecoveryError(
            f"write-ahead log does not start at sequence 0 "
            f"(first record is {records[0].seq})",
            code="recover.log-corrupt")
    return records, offset


@guarded_by("self._lock", "_file", "_records", "_next_seq", "_crashed")
class DurableLog:
    """Append-only write-ahead commit log over one file.

    Opening scans the existing file, truncates any torn trailing
    record, and resumes the sequence; :meth:`append` writes one
    fsync'd record and returns its sequence number.  All file state is
    behind one lock (rank ``service.persistence``), acquired *inside*
    the store's writer lock by the durable commit path.
    """

    def __init__(self, path: "str | Path", sync: bool = True) -> None:
        self.path = Path(path)
        self._sync = sync
        self._lock = make_lock("service.persistence")
        # construction: the log is not shared with any thread yet
        self._file = open(self.path, "a+b")
        self._file.seek(0)
        records, valid_end = _scan(self._file.read())
        if self._file.seek(0, os.SEEK_END) > valid_end:
            self._file.truncate(valid_end)
            self._flush()
        self._records = records
        self._next_seq = records[-1].seq + 1 if records else 0
        self._crashed = False

    # -- accessors ----------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will carry."""
        with self._lock:
            return self._next_seq

    @property
    def crashed(self) -> bool:
        """True once a simulated crash fired inside the log; every
        later mutation is refused (the process is considered dead)."""
        with self._lock:
            return self._crashed

    def records(self) -> list[WalRecord]:
        """All live records, in sequence order (a copy)."""
        with self._lock:
            return list(self._records)

    # -- mutation -----------------------------------------------------------

    def append(self, text: str) -> int:
        """Durably append one update record; returns its sequence.

        The record is written in two parts with the
        ``persistence.pre_fsync`` failpoint between them, so a fault
        there leaves a genuinely torn record in the file — the shape a
        real mid-write crash produces and recovery must truncate.
        """
        with self._lock:
            self._require_alive()
            seq = self._next_seq
            blob = _encode(seq, text)
            split = len(blob) // 2
            self._file.write(blob[:split])
            try:
                fail.point("persistence.pre_fsync")
            except BaseException:
                self._mark_crashed_locked()
                raise
            self._file.write(blob[split:])
            self._flush()
            self._next_seq = seq + 1
            self._records.append(
                WalRecord(seq, text, self._file.tell()))
            return seq

    def truncate_to_seq(self, seq: int) -> None:
        """Drop every record with sequence ``>= seq`` (rollback of an
        append whose update did not commit in memory)."""
        with self._lock:
            self._require_alive()
            while self._records and self._records[-1].seq >= seq:
                self._records.pop()
            end = self._records[-1].end if self._records else 0
            self._file.truncate(end)
            self._file.seek(0, os.SEEK_END)
            self._flush()
            self._next_seq = \
                self._records[-1].seq + 1 if self._records else 0

    def mark_crashed(self) -> None:
        """Declare the owning process dead for durability purposes.

        Called when a simulated crash fires after an append: the
        still-running harness must not reconcile the log the way a
        live process would, or the crash artifacts it is supposed to
        test would never reach recovery.
        """
        with self._lock:
            self._mark_crashed_locked()

    def close(self) -> None:
        """Flush buffered bytes and close the file handle.

        Deliberately *not* a clean shutdown marker: a torn half-record
        buffered by a simulated crash is flushed out exactly as the
        page cache of a killed process would surface it.
        """
        with self._lock:
            if not self._file.closed:
                self._file.close()

    # -- internals ----------------------------------------------------------

    @requires_lock("self._lock")
    def _require_alive(self) -> None:
        if self._crashed:
            raise RecoveryError(
                f"write-ahead log {self.path} is marked crashed; "
                "recover from disk instead of appending further",
                code="recover.wal-dead")
        if self._file.closed:
            raise RecoveryError(
                f"write-ahead log {self.path} is closed",
                code="recover.wal-dead")

    @requires_lock("self._lock")
    def _mark_crashed_locked(self) -> None:
        self._crashed = True
        try:
            self._file.flush()
        except OSError:  # pragma: no cover - flush of a dying handle
            pass

    @requires_lock("self._lock")
    def _flush(self) -> None:
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


def write_snapshot(directory: "str | Path", lsn: int,
                   documents: "list[str]", sync: bool = True) -> Path:
    """Atomically install a snapshot of the store under ``directory``.

    The body (a checksummed JSON document) is written to a temp file,
    fsync'd, and renamed over :data:`SNAPSHOT_NAME`; the directory is
    fsync'd afterwards so the rename itself is durable.  A crash at
    any point leaves either the old snapshot or the new one — never a
    torn mixture — and a leftover temp file is simply overwritten by
    the next attempt.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = json.dumps(
        {"format": 1, "lsn": lsn, "documents": list(documents)},
        ensure_ascii=False, sort_keys=True).encode("utf-8")
    blob = b"%08x\n" % zlib.crc32(body) + body
    temp = directory / (SNAPSHOT_NAME + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    fail.point("persistence.snapshot_rename")
    target = directory / SNAPSHOT_NAME
    os.replace(temp, target)
    if sync:
        _fsync_directory(directory)
    return target


def load_snapshot(directory: "str | Path") -> "Snapshot | None":
    """The current snapshot under ``directory``; ``None`` when the
    directory holds no durable state yet.  A present-but-corrupt
    snapshot raises :class:`RecoveryError` — rename atomicity means
    corruption is tampering or media failure, never a normal crash."""
    path = Path(directory) / SNAPSHOT_NAME
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return None
    newline = blob.find(b"\n")
    if newline < 0:
        raise RecoveryError(f"snapshot {path} has no checksum line",
                            code="recover.snapshot-corrupt")
    checksum, body = blob[:newline], blob[newline + 1:]
    if b"%08x" % zlib.crc32(body) != checksum:
        raise RecoveryError(f"snapshot {path} fails its checksum",
                            code="recover.snapshot-corrupt")
    try:
        decoded = json.loads(body)
        lsn = decoded["lsn"]
        documents = decoded["documents"]
    except (ValueError, TypeError, KeyError) as error:
        raise RecoveryError(f"snapshot {path} is malformed: {error}",
                            code="recover.snapshot-corrupt") \
            from error
    if not isinstance(lsn, int) or lsn < 0 \
            or not isinstance(documents, list) \
            or not all(isinstance(text, str) for text in documents):
        raise RecoveryError(f"snapshot {path} has malformed fields",
                            code="recover.snapshot-corrupt")
    return Snapshot(lsn, tuple(documents))


def _fsync_directory(directory: Path) -> None:
    handle = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(handle)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(handle)
