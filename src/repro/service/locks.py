"""Reader–writer locking for the checking service.

The paper's checkers are single-threaded by construction; serving many
users needs a concurrency discipline.  Reads (``verify_consistency``,
snapshots, ad-hoc queries) never mutate the documents, so any number of
them may run together; writes (``try_execute`` and everything that
applies or rolls back operations) require exclusivity.  This module
provides the classic writer-preferring reader–writer lock used by
:class:`repro.service.DocumentStore`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.analysis.concurrency import annotations as _locking
from repro.analysis.concurrency import sanitizer as _sanitizer
from repro.testing.failpoints import fail


@_locking.guarded_by("self._condition", "_readers", "_writer_active",
                     "_writers_waiting")
class ReadWriteLock:
    """A writer-preferring reader–writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  A waiting writer blocks *new* readers (writer preference),
    so a steady stream of cheap reads cannot starve updates.

    The lock is not reentrant: a thread must not acquire the read side
    while holding the write side or vice versa.  The service layer
    keeps that discipline by taking exactly one side per public call;
    the lock-order sanitizer enforces it on armed processes under the
    canonical rank ``name`` (``"service.store"`` by default).
    """

    def __init__(self, name: str = "service.store") -> None:
        self.name = name
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        # construction-time decision, like make_lock: disarmed locks
        # never pay for the hooks
        self._sanitized = _sanitizer.armed()

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        if self._sanitized:
            _sanitizer.note_before_acquire(self.name, self,
                                           reentrant=False)
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        if self._sanitized:
            _sanitizer.note_acquired(self.name, self)

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()
        if self._sanitized:
            _sanitizer.note_release(self.name, self)

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        if self._sanitized:
            _sanitizer.note_before_acquire(self.name, self,
                                           reentrant=False)
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if self._sanitized:
            _sanitizer.note_acquired(self.name, self)

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._condition.notify_all()
        if self._sanitized:
            _sanitizer.note_release(self.name, self)

    # -- context managers ---------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            fail.point("service.locks.post_read_acquire")
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            fail.point("service.locks.post_write_acquire")
            yield
        finally:
            self.release_write()
