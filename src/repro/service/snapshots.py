"""MVCC-lite snapshot publication and epoch-based reclamation.

The service's writers publish an immutable :class:`DocumentSnapshot`
at every commit boundary; readers *pin* the latest published version
and run checks, serialization and explain against it without holding
the store lock at all — a long check never blocks a writer and a busy
writer never delays a check.

Publication is copy-on-write at document granularity: each live
document is keyed by ``(uid, revision)``, and a document whose key is
unchanged since the previous publish reuses the previous snapshot's
frozen clone (the common case — an update touches one document of the
store).  Only mutated documents are deep-copied, frozen
(:meth:`~repro.xtree.node.Document.freeze`), and re-attached to a
column store, so publication cost tracks write locality, not store
size.

Reclamation is epoch-style, with all bookkeeping on the manager: a
superseded snapshot moves to the retired list and is dropped the
first time a reclaim scan (run at publish and unpin) finds it
unpinned.  Snapshots themselves are pure immutable data — a reader
that crashes between pin and unpin can never corrupt the manager, and
a reclaim interrupted by an injected fault is simply finished by the
next scan.

Publication protocol (writer lock held by the caller):

1. mark the manager *dirty* under the manager lock (write-ahead:
   if the publisher dies here, readers see the dirty flag and repair);
2. clone changed documents **outside** the manager lock, so readers
   keep pinning the previous version at full speed during the copy;
3. install the new version, clear the dirty flag and queue the
   previous version for retirement in one critical section;
4. reclaim unpinned retired versions.

A failed publication (step 2 dying) self-heals on the read path:
:meth:`SnapshotManager.pin` returns ``None`` while dirty and the
service rebuilds the snapshot from the live tree under the store's
*read* lock (:meth:`SnapshotManager.repair`), which excludes writers
and therefore sees a settled state.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.concurrency import (
    guarded_by,
    make_lock,
    requires_lock,
)
from repro.relational import incremental
from repro.testing.failpoints import fail
from repro.xtree.node import Document


class DocumentSnapshot:
    """One published, immutable version of a store's documents.

    ``documents`` are frozen clones (structural mutation raises
    :class:`~repro.errors.FrozenDocumentError`); ``keys`` holds the
    ``(uid, revision)`` of each *live* document at publication time,
    which is what the copy-on-write reuse check compares against.
    """

    __slots__ = ("version", "documents", "keys")

    def __init__(self, version: int, documents: Iterable[Document],
                 keys: Iterable[tuple[int, int]]) -> None:
        self.version = version
        self.documents = tuple(documents)
        self.keys = tuple(keys)

    def document(self, root_tag: str) -> Document | None:
        """The snapshot document with the given root tag, if any."""
        for document in self.documents:
            if document.root.tag == root_tag:
                return document
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DocumentSnapshot(version={self.version}, "
                f"documents={len(self.documents)})")


@guarded_by("self._lock", "_published", "_dirty", "_pins", "_retired",
            "_next_version", "_publishes", "_cloned", "_reused",
            "_repairs", "_reclaimed")
class SnapshotManager:
    """Publication, pinning and reclamation of document snapshots.

    All mutable state lives here, behind one ``service.snapshots``-rank
    lock (between the store lock and the per-document locks in the
    canonical order, so both the writer's publish-under-write-lock and
    the reader's repair-under-read-lock nest legally).
    """

    def __init__(self, relational=None) -> None:
        #: relational schema used to attach column stores to fresh
        #: clones (``None`` → snapshot documents evaluate DOM-only);
        #: immutable after construction
        self._relational = relational
        self._lock = make_lock("service.snapshots")
        # construction: the manager is not shared with any thread yet
        self._published: "DocumentSnapshot | None" = None  # lock: ignore
        self._dirty = False  # lock: ignore
        self._pins: dict[int, int] = {}  # lock: ignore
        self._retired: list[DocumentSnapshot] = []  # lock: ignore
        self._next_version = 1  # lock: ignore
        self._publishes = 0  # lock: ignore
        self._cloned = 0  # lock: ignore
        self._reused = 0  # lock: ignore
        self._repairs = 0  # lock: ignore
        self._reclaimed = 0  # lock: ignore

    # -- writer side ---------------------------------------------------------

    def publish(self, documents: "list[Document]") -> DocumentSnapshot:
        """Publish an immutable snapshot of ``documents``.

        The caller must exclude structural mutation of the documents —
        the store's writer lock, or construction before the service is
        shared.  Unchanged documents (same ``(uid, revision)`` as at
        the previous publish) reuse their existing frozen clone.
        """
        with self._lock:
            previous = self._published
            self._dirty = True
        fail.point("service.snapshots.publish")
        clones, keys, cloned, reused = self._build(documents, previous)
        snapshot = self._install(clones, keys, cloned, reused)
        fail.point("service.snapshots.retire")
        with self._lock:
            self._reclaim_locked()
        return snapshot

    def _build(self, documents: "list[Document]",
               previous: "DocumentSnapshot | None"):
        """Clone changed documents, reusing unchanged frozen clones.

        Runs without the manager lock: cloning is the expensive part
        of publication and readers must be able to pin the previous
        version throughout.
        """
        reuse: dict[tuple[int, int], Document] = {}
        if previous is not None:
            reuse = dict(zip(previous.keys, previous.documents))
        clones: list[Document] = []
        keys: list[tuple[int, int]] = []
        cloned = reused = 0
        for document in documents:
            key = (document.uid, document.revision)
            clone = reuse.get(key)
            if clone is None:
                clone = document.clone()
                if self._relational is not None:
                    incremental.attach(clone, self._relational)
                cloned += 1
            else:
                reused += 1
            clones.append(clone)
            keys.append(key)
        return clones, keys, cloned, reused

    def _install(self, clones: "list[Document]",
                 keys: "list[tuple[int, int]]",
                 cloned: int, reused: int) -> DocumentSnapshot:
        with self._lock:
            snapshot = DocumentSnapshot(self._next_version, clones,
                                        keys)
            self._next_version += 1
            current = self._published
            if current is not None:
                self._retired.append(current)
            self._published = snapshot
            self._dirty = False
            self._publishes += 1
            self._cloned += cloned
            self._reused += reused
            return snapshot

    def invalidate(self) -> None:
        """Mark the published snapshot as possibly stale.

        Called by the service when a writer's critical section dies
        after the checker may have committed but before publication
        (an injected commit-log fault, a failed rollback): readers
        stop pinning the old version and repair from the live tree
        instead.  Idempotent; the next successful publish or repair
        clears it.
        """
        with self._lock:
            self._dirty = True

    # -- reader side ---------------------------------------------------------

    def pin(self) -> "DocumentSnapshot | None":
        """Pin and return the latest published snapshot.

        Returns ``None`` when no clean snapshot is available (nothing
        published yet, or the last publication died mid-way and left
        the manager dirty) — the caller falls back to
        :meth:`repair` under the store's read lock.  Every successful
        pin must be matched by exactly one :meth:`unpin`.
        """
        with self._lock:
            if self._dirty or self._published is None:
                return None
            snapshot = self._published
            self._pins[snapshot.version] = \
                self._pins.get(snapshot.version, 0) + 1
        try:
            fail.point("service.snapshots.pin")
        except BaseException:
            # the pin was taken but the snapshot never reached the
            # reader: release it so retirement still drains
            self.unpin(snapshot)
            raise
        return snapshot

    def unpin(self, snapshot: DocumentSnapshot) -> None:
        """Release one pin and reclaim newly-unpinned retirees."""
        with self._lock:
            count = self._pins.get(snapshot.version, 0)
            if count <= 1:
                self._pins.pop(snapshot.version, None)
            else:
                self._pins[snapshot.version] = count - 1
            self._reclaim_locked()

    def repair(self, documents: "list[Document]") -> DocumentSnapshot:
        """Rebuild the published snapshot from the live documents.

        The reader-side recovery for a publication that died after
        marking the manager dirty.  The caller must hold the store's
        *read* lock: that excludes writers, so the live tree is a
        settled committed state.  Returns an already-pinned snapshot
        (installation and pinning are one critical section, so a
        concurrent repair can never retire it out from under the
        caller); the caller unpins as usual.  Deliberately free of
        failpoints — this path must always converge.
        """
        with self._lock:
            if not self._dirty and self._published is not None:
                snapshot = self._published
                self._pins[snapshot.version] = \
                    self._pins.get(snapshot.version, 0) + 1
                return snapshot
            previous = self._published
            self._repairs += 1
        clones, keys, cloned, reused = self._build(documents, previous)
        with self._lock:
            snapshot = DocumentSnapshot(self._next_version, clones,
                                        keys)
            self._next_version += 1
            current = self._published
            if current is not None:
                self._retired.append(current)
            self._published = snapshot
            self._dirty = False
            self._cloned += cloned
            self._reused += reused
            self._pins[snapshot.version] = \
                self._pins.get(snapshot.version, 0) + 1
            self._reclaim_locked()
            return snapshot

    # -- reclamation ---------------------------------------------------------

    @requires_lock("self._lock")
    def _reclaim_locked(self) -> None:
        if not self._retired:
            return
        keep: list[DocumentSnapshot] = []
        for snapshot in self._retired:
            if self._pins.get(snapshot.version):
                keep.append(snapshot)
            else:
                self._reclaimed += 1
        self._retired = keep

    def stats(self) -> dict:
        """Counters and live state, for invariant checks and benches."""
        with self._lock:
            published = self._published
            return {
                "version": published.version if published else 0,
                "dirty": self._dirty,
                "pins": dict(self._pins),
                "retired": len(self._retired),
                "publishes": self._publishes,
                "cloned": self._cloned,
                "reused": self._reused,
                "repairs": self._repairs,
                "reclaimed": self._reclaimed,
            }
