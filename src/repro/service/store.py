"""Thread-safe document collection and checking façade.

:class:`DocumentStore` owns the documents and their reader–writer
lock; :class:`CheckingService` composes a store with one of the
run-time checkers and exposes the checker interface with the locking
discipline applied:

* writers (``try_execute`` / ``execute``) are serialized — at most one
  update mutates the documents at a time, and the underlying
  :class:`~repro.xupdate.apply.TransactionLog` guarantees each update
  is all-or-nothing, so readers never observe a torn state;
* readers (``verify_consistency``, ``snapshot``) run concurrently with
  each other and are excluded only while a writer holds the lock.

The service also keeps a *commit log* — the updates that were actually
applied, in commit order — which makes the final state reproducible by
a sequential replay (the oracle the concurrency stress tests check
against, and the natural hook for future replication/sharding layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.concurrency import guarded_by, requires_lock
from repro.core.guard import IntegrityGuard, UpdateDecision, _CheckerBase
from repro.core.schema import ConstraintSchema
from repro.errors import IntegrityViolationError, SchemaError
from repro.service.locks import ReadWriteLock
from repro.testing.failpoints import fail
from repro.xtree.node import Document
from repro.xtree.serializer import serialize
from repro.xupdate.parser import Operation


@guarded_by("self.lock", "_documents")
class DocumentStore:
    """A collection of documents behind one reader–writer lock.

    The store is the unit of consistency: one lock covers all the
    documents a constraint set spans, because a single update (or a
    single check) may touch several of them.
    """

    def __init__(self, documents: Iterable[Document]) -> None:
        self._documents = list(documents)
        seen: set[str] = set()
        for document in self._documents:
            tag = document.root.tag
            if tag in seen:
                raise SchemaError(
                    f"two documents share the root tag {tag!r}; selects "
                    "could not be routed to a single document")
            seen.add(tag)
        self.lock = ReadWriteLock()

    @property
    @requires_lock("self.lock")
    def documents(self) -> list[Document]:
        """The live document list (shared with the checkers).

        Callers must hold the appropriate side of :attr:`lock` while
        touching the documents themselves.
        """
        return self._documents

    @requires_lock("self.lock")
    def document(self, root_tag: str) -> Document:
        for document in self._documents:
            if document.root.tag == root_tag:
                return document
        raise SchemaError(f"no document with root tag {root_tag!r}")

    def read_locked(self):
        return self.lock.read_locked()

    def write_locked(self):
        return self.lock.write_locked()

    def snapshot(self) -> list[str]:
        """Serialized form of every document, under the read lock."""
        with self.read_locked():
            return [serialize(document) for document in self._documents]


@dataclass(frozen=True)
class CommittedUpdate:
    """One entry of the service's commit log."""

    sequence: int
    update: "str | Operation"
    decision: UpdateDecision


@guarded_by("self.store.lock", "_committed")
class CheckingService:
    """Thread-safe façade over a run-time checker.

    Wraps a checker (an :class:`IntegrityGuard` by default) and a
    :class:`DocumentStore`, serializing writers while letting read-only
    checks run concurrently.  All consistency guarantees of the
    underlying checker — illegal updates never applied, failed updates
    fully rolled back — therefore hold under concurrent callers too.
    """

    def __init__(self, schema: ConstraintSchema,
                 documents: "Iterable[Document] | DocumentStore",
                 checker_factory: Callable[..., _CheckerBase]
                 = IntegrityGuard) -> None:
        if isinstance(documents, DocumentStore):
            self.store = documents
        else:
            self.store = DocumentStore(documents)
        self.checker = checker_factory(schema, self.store.documents)
        self._committed: list[CommittedUpdate] = []

    @classmethod
    def from_checker(cls, checker: _CheckerBase) -> "CheckingService":
        """Wrap an existing checker (and its documents) in a service.

        The checker must not be driven directly afterwards — every call
        has to go through the service for the locking to mean anything.
        """
        service = cls.__new__(cls)
        service.store = DocumentStore(checker.documents)
        service.checker = checker
        # construction: the service is not shared with any thread yet
        service._committed = []  # lock: ignore
        return service

    # -- writers -------------------------------------------------------------

    def try_execute(self, update: "str | Operation") -> UpdateDecision:
        """Check and (when legal) apply one update, exclusively.

        Exactly :meth:`IntegrityGuard.try_execute` under the writer
        lock; applied updates are appended to the commit log.
        """
        with self.store.write_locked():
            decision = self.checker.try_execute(update)
            if decision.applied:
                fail.point("service.store.pre_commit_append")
                self._committed.append(CommittedUpdate(
                    len(self._committed), update, decision))
            return decision

    def execute(self, update: "str | Operation") -> UpdateDecision:
        """Like :meth:`try_execute` but raises on violation."""
        decision = self.try_execute(update)
        if not decision.legal:
            raise IntegrityViolationError(decision.violated)
        return decision

    def check_batch(
            self,
            updates: "list[str | Operation]") -> list[UpdateDecision]:
        """Check and apply a batch of updates under one lock round.

        Exactly :meth:`~repro.core.guard.IntegrityGuard.check_batch`
        (shared, incrementally repaired check indexes) with the writer
        lock acquired *once* for the whole batch; applied updates enter
        the commit log in batch order.  Decisions match the sequential
        :meth:`try_execute` loop update for update.
        """
        with self.store.write_locked():
            decisions = self.checker.check_batch(updates)
            for update, decision in zip(updates, decisions):
                if decision.applied:
                    fail.point("service.store.pre_commit_append")
                    self._committed.append(CommittedUpdate(
                        len(self._committed), update, decision))
            return decisions

    # -- readers -------------------------------------------------------------

    def verify_consistency(self) -> list[str]:
        """Full constraint check, concurrent with other readers."""
        with self.store.read_locked():
            return self.checker.verify_consistency()

    def snapshot(self) -> list[str]:
        """Serialized documents, concurrent with other readers."""
        return self.store.snapshot()

    def committed_updates(self) -> list[CommittedUpdate]:
        """The commit log so far, in commit order (a copy)."""
        with self.store.read_locked():
            return list(self._committed)

    # -- passthroughs -------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register a listener on the underlying checker.

        Listeners run inside the writer-locked, transactional scope: a
        listener that raises rolls the update back.
        """
        self.checker.subscribe(listener)
