"""Thread-safe document collection and checking façade.

:class:`DocumentStore` owns the documents and their reader–writer
lock; :class:`CheckingService` composes a store with one of the
run-time checkers and exposes the checker interface with the locking
discipline applied:

* writers (``try_execute`` / ``execute``) are serialized — at most one
  update mutates the documents at a time, and the underlying
  :class:`~repro.xupdate.apply.TransactionLog` guarantees each update
  is all-or-nothing, so readers never observe a torn state;
* readers (``verify_consistency``, ``snapshot``) run concurrently with
  each other and are excluded only while a writer holds the lock.

The service also keeps a *commit log* — the updates that were actually
applied, in commit order — which makes the final state reproducible by
a sequential replay (the oracle the concurrency stress tests check
against, and the natural hook for future replication/sharding layers).

Opened through :meth:`CheckingService.open_durable`, the commit log is
additionally *write-ahead durable*: every accepted update is appended
to an fsync'd on-disk log (:mod:`repro.service.persistence`) before it
commits in memory, periodic snapshots bound the replay tail, and
:meth:`CheckingService.recover` rebuilds the exact pre-crash state by
loading the latest snapshot and re-checking the logged tail through
the checker.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.concurrency import guarded_by, requires_lock
from repro.core.guard import (
    IntegrityGuard,
    UpdateDecision,
    _CheckerBase,
    verify_documents,
)
from repro.core.schema import ConstraintSchema
from repro.errors import (
    IntegrityViolationError,
    RecoveryError,
    SchemaError,
)
from repro.service.locks import ReadWriteLock
from repro.service.snapshots import DocumentSnapshot, SnapshotManager
from repro.service.persistence import (
    SNAPSHOT_NAME,
    WAL_NAME,
    DurableLog,
    Snapshot,
    WalRecord,
    load_snapshot,
    write_snapshot,
)
from repro.testing.failpoints import fail
from repro.xtree.node import Document
from repro.xtree.parser import parse_document
from repro.xtree.serializer import serialize
from repro.xupdate.parser import Operation, canonical_update_text


@guarded_by("self.lock", "_documents")
class DocumentStore:
    """A collection of documents behind one reader–writer lock.

    The store is the unit of consistency: one lock covers all the
    documents a constraint set spans, because a single update (or a
    single check) may touch several of them.

    A store may carry a ``uid`` — a caller-chosen name for the document
    group.  Uids are validated path-safe (:meth:`validate_uid`) because
    the sharded service derives per-group state-directory names from
    them.
    """

    #: path-safe uid shape: starts with an alphanumeric (which rules
    #: out ``.``, ``..``, absolute paths and option-looking ``-x``),
    #: then up to 63 more of ``[A-Za-z0-9._-]`` — no separators ever
    _UID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")

    def __init__(self, documents: Iterable[Document],
                 uid: "str | None" = None) -> None:
        if uid is not None:
            self.validate_uid(uid)
        self.uid = uid
        self._documents = list(documents)
        seen: set[str] = set()
        for document in self._documents:
            tag = document.root.tag
            if tag in seen:
                raise SchemaError(
                    f"two documents share the root tag {tag!r}; selects "
                    "could not be routed to a single document")
            seen.add(tag)
        self.lock = ReadWriteLock()

    @staticmethod
    def validate_uid(uid: str) -> str:
        """Check that ``uid`` can safely name a state directory.

        The sharded service keys each document group's durable state
        directory off its uid (``shard-<uid>``), so uids must never
        contain path separators, start with a dot or dash, or exceed a
        filesystem-friendly length.  Raises :class:`SchemaError` on
        violation; returns the uid unchanged otherwise.
        """
        if not isinstance(uid, str) \
                or not DocumentStore._UID_PATTERN.fullmatch(uid):
            raise SchemaError(
                f"invalid document-group uid {uid!r}: uids must start "
                "with a letter or digit and contain only letters, "
                "digits, '.', '_' or '-' (at most 64 characters), so "
                "they can safely name per-shard state directories")
        return uid

    @property
    @requires_lock("self.lock")
    def documents(self) -> list[Document]:
        """The live document list (shared with the checkers).

        Callers must hold the appropriate side of :attr:`lock` while
        touching the documents themselves.
        """
        return self._documents

    @requires_lock("self.lock")
    def document(self, root_tag: str) -> Document:
        for document in self._documents:
            if document.root.tag == root_tag:
                return document
        raise SchemaError(f"no document with root tag {root_tag!r}")

    def read_locked(self):
        return self.lock.read_locked()

    def write_locked(self):
        return self.lock.write_locked()

    def snapshot(self) -> list[str]:
        """Serialized form of every document, under the read lock."""
        with self.read_locked():
            return [serialize(document) for document in self._documents]


@dataclass(frozen=True)
class CommittedUpdate:
    """One entry of the service's commit log."""

    sequence: int
    update: "str | Operation"
    decision: UpdateDecision


@dataclass(frozen=True)
class RecoveryInfo:
    """What :meth:`CheckingService.recover` did to reach the state."""

    #: sequence number the snapshot was current through (exclusive)
    snapshot_lsn: int
    #: WAL tail records re-checked and re-applied on top of the snapshot
    replayed: int
    #: total live WAL records after torn-tail truncation
    total_records: int


@guarded_by("self.store.lock",
            "_committed", "_pending_mark", "_last_snapshot_lsn")
class CheckingService:
    """Thread-safe façade over a run-time checker.

    Wraps a checker (an :class:`IntegrityGuard` by default) and a
    :class:`DocumentStore`, serializing writers while letting read-only
    checks run concurrently.  All consistency guarantees of the
    underlying checker — illegal updates never applied, failed updates
    fully rolled back — therefore hold under concurrent callers too.
    """

    def __init__(self, schema: ConstraintSchema,
                 documents: "Iterable[Document] | DocumentStore",
                 checker_factory: Callable[..., _CheckerBase]
                 = IntegrityGuard, *,
                 snapshot_reads: bool = True) -> None:
        self.snapshot_reads = snapshot_reads
        self.snapshots = SnapshotManager(schema.relational)
        if isinstance(documents, DocumentStore):
            # the store may already be shared with running threads, and
            # the checker factory walks the document list (root-tag
            # routing, column-store attachment) — hold the read lock
            # for the whole walk, not just the property access
            self.store = documents
            with self.store.read_locked():
                self.checker = checker_factory(
                    schema, self.store.documents)
                self._publish()
        else:
            self.store = DocumentStore(documents)
            # construction: the fresh store is not shared yet
            self.checker = checker_factory(
                schema, self.store.documents)  # lock: ignore
            self._publish()  # lock: ignore
        self._committed: list[CommittedUpdate] = []
        self._durable: "DurableLog | None" = None
        self._state_dir: "Path | None" = None
        self._durable_sync = True
        self._snapshot_interval = 0
        self._last_snapshot_lsn = 0
        self._pending_mark: "tuple[int, int] | None" = None
        #: populated by :meth:`recover` on recovered instances
        self.last_recovery: "RecoveryInfo | None" = None

    @classmethod
    def from_checker(cls, checker: _CheckerBase, *,
                     snapshot_reads: bool = True) -> "CheckingService":
        """Wrap an existing checker (and its documents) in a service.

        The checker must not be driven directly afterwards — every call
        has to go through the service for the locking to mean anything.
        """
        service = cls.__new__(cls)
        service.snapshot_reads = snapshot_reads
        service.snapshots = SnapshotManager(checker.schema.relational)
        service.store = DocumentStore(checker.documents)
        service.checker = checker
        # construction: the service is not shared with any thread yet
        service._publish()  # lock: ignore
        service._committed = []  # lock: ignore
        service._durable = None
        service._state_dir = None
        service._durable_sync = True
        service._snapshot_interval = 0
        service._last_snapshot_lsn = 0  # lock: ignore
        service._pending_mark = None  # lock: ignore
        service.last_recovery = None
        return service

    @requires_lock("self.store.lock")
    def _publish(self) -> None:
        """Publish a fresh read snapshot of the current documents.

        Called at every commit boundary with the writer lock held (or
        during construction/recovery before the service is shared, and
        under the read lock on the shared-store construction path —
        anything that excludes structural mutation qualifies)."""
        if self.snapshot_reads:
            self.snapshots.publish(self.store.documents)

    # -- durability ----------------------------------------------------------

    @classmethod
    def open_durable(cls, schema: ConstraintSchema,
                     documents: "Iterable[Document] | DocumentStore",
                     state_dir: "str | Path", *,
                     checker_factory: Callable[..., _CheckerBase]
                     = IntegrityGuard,
                     snapshot_interval: int = 64,
                     sync: bool = True) -> "CheckingService":
        """Open a durable service rooted at ``state_dir``.

        When the directory already holds durable state (a snapshot or
        a write-ahead log) this is exactly :meth:`recover` — the
        ``documents`` argument is ignored in favour of the recovered
        state.  Otherwise the given documents become the initial state:
        a baseline snapshot is installed *before* the first update can
        commit, so a crash at any later point always finds a snapshot
        to recover from.
        """
        state_dir = Path(state_dir)
        if (state_dir / SNAPSHOT_NAME).exists() \
                or (state_dir / WAL_NAME).exists():
            return cls.recover(
                schema, state_dir, checker_factory=checker_factory,
                snapshot_interval=snapshot_interval, sync=sync)
        service = cls(schema, documents, checker_factory)
        write_snapshot(state_dir, 0, service.store.snapshot(),
                       sync=sync)
        wal = DurableLog(state_dir / WAL_NAME, sync=sync)
        service._attach_durable(state_dir, wal, snapshot_interval,
                                sync, last_snapshot_lsn=0)
        return service

    @classmethod
    def recover(cls, schema: ConstraintSchema,
                state_dir: "str | Path", *,
                checker_factory: Callable[..., _CheckerBase]
                = IntegrityGuard,
                snapshot_interval: int = 64,
                sync: bool = True) -> "CheckingService":
        """Rebuild a durable service from ``state_dir`` after a crash.

        Loads the latest valid snapshot, opens the write-ahead log
        (truncating any torn trailing record), and replays every
        record with ``seq >= snapshot.lsn`` through the checker —
        re-checking it, so tampered logs cannot smuggle an illegal
        update in.  Replay is idempotent: a crash during recovery
        leaves snapshot and log unchanged, and a retry succeeds.
        """
        state_dir = Path(state_dir)
        snapshot = load_snapshot(state_dir)
        if snapshot is None:
            raise RecoveryError(
                f"no snapshot under {state_dir}; the directory holds "
                "no recoverable durable state",
                code="recover.no-state")
        wal = DurableLog(state_dir / WAL_NAME, sync=sync)
        try:
            service = cls._recover(
                schema, snapshot, wal, checker_factory)
        except BaseException:
            wal.close()
            raise
        service._attach_durable(state_dir, wal, snapshot_interval,
                                sync,
                                last_snapshot_lsn=snapshot.lsn)
        return service

    @classmethod
    def _recover(cls, schema: ConstraintSchema, snapshot: Snapshot,
                 wal: DurableLog,
                 checker_factory: Callable[..., _CheckerBase]
                 ) -> "CheckingService":
        """Snapshot + WAL tail → a service at the pre-crash state."""
        records = wal.records()
        if wal.next_seq < snapshot.lsn:
            raise RecoveryError(
                f"write-ahead log ends at sequence {wal.next_seq} but "
                f"the snapshot is current through {snapshot.lsn}; the "
                "log has lost fsync'd records",
                code="recover.log-corrupt")
        documents = [parse_document(text)
                     for text in snapshot.documents]
        service = cls(schema, documents, checker_factory)
        committed: list[CommittedUpdate] = []
        replayed = 0
        for record in records:
            if record.seq < snapshot.lsn:
                # already reflected in the snapshot: enters the commit
                # log as history, not the checker
                committed.append(CommittedUpdate(
                    record.seq, record.text,
                    UpdateDecision(True, applied=True)))
                continue
            fail.point("persistence.replay_record")
            decision = service.checker.try_execute(record.text)
            if not decision.applied:
                raise RecoveryError(
                    f"logged update {record.seq} is no longer "
                    f"accepted on replay "
                    f"(violated: {decision.violated}); the log or "
                    "snapshot has been corrupted",
                    code="recover.replay-rejected")
            committed.append(CommittedUpdate(
                record.seq, record.text, decision))
            replayed += 1
        # construction: the service is not shared with any thread yet
        # (replay drove the checker directly, so re-publish the
        # recovered state for the snapshot read path)
        service._publish()  # lock: ignore
        service._committed = committed  # lock: ignore
        service.last_recovery = RecoveryInfo(
            snapshot_lsn=snapshot.lsn, replayed=replayed,
            total_records=len(records))
        return service

    def _attach_durable(self, state_dir: Path, wal: DurableLog,
                        snapshot_interval: int, sync: bool, *,
                        last_snapshot_lsn: int) -> None:
        # construction: the service is not shared with any thread yet
        self._state_dir = state_dir
        self._durable = wal
        self._durable_sync = sync
        self._snapshot_interval = max(1, snapshot_interval)
        self._last_snapshot_lsn = last_snapshot_lsn  # lock: ignore
        self.checker.set_pre_commit(
            self._durable_pre_commit, self._durable_abort)

    @property
    def durable(self) -> bool:
        """True when a write-ahead log backs this service."""
        return self._durable is not None

    @property
    def wal_crashed(self) -> bool:
        """True when the write-ahead log marked itself crashed.

        A crashed log refuses further appends; the owning process must
        be recovered (or, in the sharded service, the worker restarted)
        before this state accepts updates again.
        """
        return self._durable is not None and self._durable.crashed

    @requires_lock("self.store.lock")
    def _durable_pre_commit(self, update: "str | Operation",
                            decision: UpdateDecision) -> None:
        """The write-ahead append (the checker's pre-commit hook).

        Runs inside the checker's transactional scope for every update
        it decided to apply, before listeners observe the decision and
        before the in-memory commit: the fsync completing is the
        commit point.  Any exception here aborts the update — the
        checker rolls the in-memory application back and
        :meth:`_durable_abort` reconciles the log.
        """
        wal = self._durable
        assert wal is not None
        self._pending_mark = (wal.next_seq, len(self._committed))
        seq = wal.append(canonical_update_text(update))
        try:
            fail.point("persistence.post_append_pre_apply")
        except BaseException:
            # the record is durable but the update will never commit
            # in this process: exactly the crash window recovery must
            # close by replaying the trailing record
            wal.mark_crashed()
            raise
        fail.point("service.store.pre_commit_append")
        self._committed.append(
            CommittedUpdate(seq, update, decision))

    @requires_lock("self.store.lock")
    def _durable_abort(self, update: "str | Operation") -> None:
        """Reconcile the WAL with an update that aborted post-append.

        Truncates the log and the in-memory commit log back to the
        mark taken at hook entry — unless a simulated crash fired, in
        which case the on-disk artifacts (a torn half-record, a
        logged-but-unapplied record) are exactly what the restart
        tests need and must survive untouched.
        """
        wal, mark = self._durable, self._pending_mark
        self._pending_mark = None
        if wal is None or mark is None or wal.crashed:
            return
        seq, committed_length = mark
        wal.truncate_to_seq(seq)
        del self._committed[committed_length:]

    @requires_lock("self.store.lock")
    def _maybe_snapshot(self) -> None:
        wal = self._durable
        if wal is None or wal.crashed:
            return
        if wal.next_seq - self._last_snapshot_lsn \
                >= self._snapshot_interval:
            self._checkpoint_locked()

    @requires_lock("self.store.lock")
    def _checkpoint_locked(self) -> None:
        """Install a snapshot of the current state (writer lock held).

        A fault at the rename seam is a simulated kill: the log is
        marked crashed so the frozen process cannot diverge from the
        on-disk state the restart will recover.
        """
        wal = self._durable
        assert wal is not None and self._state_dir is not None
        lsn = wal.next_seq
        documents = [serialize(document)
                     for document in self.store.documents]
        try:
            write_snapshot(self._state_dir, lsn, documents,
                           sync=self._durable_sync)
        except BaseException:
            wal.mark_crashed()
            raise
        self._last_snapshot_lsn = lsn

    def checkpoint(self) -> None:
        """Snapshot the current state now, bounding the replay tail."""
        with self.store.write_locked():
            if self._durable is None:
                raise RecoveryError(
                    "service has no durable state to checkpoint")
            self._checkpoint_locked()

    def close(self) -> None:
        """Release the write-ahead log's file handle.

        Buffered bytes are flushed as-is — including the torn residue
        of a simulated crash — matching what the page cache of a
        killed process would expose to the recovering one.
        """
        with self.store.write_locked():
            if self._durable is not None:
                self._durable.close()

    def wal_records(self) -> "list[WalRecord]":
        """The live write-ahead records (empty for volatile services)."""
        with self.store.read_locked():
            if self._durable is None:
                return []
            return self._durable.records()

    # -- writers -------------------------------------------------------------

    def try_execute(self, update: "str | Operation") -> UpdateDecision:
        """Check and (when legal) apply one update, exclusively.

        Exactly :meth:`IntegrityGuard.try_execute` under the writer
        lock; applied updates are appended to the commit log.
        """
        with self.store.write_locked():
            try:
                decision = self.checker.try_execute(update)
                if decision.applied:
                    if self._durable is None:
                        fail.point("service.store.pre_commit_append")
                        self._committed.append(CommittedUpdate(
                            len(self._committed), update, decision))
                    else:
                        # the durable pre-commit hook already logged
                        # and appended inside the checker's
                        # transaction scope
                        self._maybe_snapshot()
            except BaseException:
                # the checker may have committed without a publication
                # reaching the readers: flag the published snapshot so
                # the read path repairs from the live tree
                self.snapshots.invalidate()
                raise
            if decision.applied:
                self._publish()
            return decision

    def execute(self, update: "str | Operation") -> UpdateDecision:
        """Like :meth:`try_execute` but raises on violation."""
        decision = self.try_execute(update)
        if not decision.legal:
            raise IntegrityViolationError(decision.violated)
        return decision

    def check_batch(
            self,
            updates: "list[str | Operation]") -> list[UpdateDecision]:
        """Check and apply a batch of updates under one lock round.

        Exactly :meth:`~repro.core.guard.IntegrityGuard.check_batch`
        (shared, incrementally repaired check indexes) with the writer
        lock acquired *once* for the whole batch; applied updates enter
        the commit log in batch order.  Decisions match the sequential
        :meth:`try_execute` loop update for update.
        """
        with self.store.write_locked():
            try:
                decisions = self.checker.check_batch(updates)
                if self._durable is None:
                    for update, decision in zip(updates, decisions):
                        if decision.applied:
                            fail.point(
                                "service.store.pre_commit_append")
                            self._committed.append(CommittedUpdate(
                                len(self._committed), update,
                                decision))
                else:
                    # per-update logging happened in the hook
                    self._maybe_snapshot()
            except BaseException:
                self.snapshots.invalidate()
                raise
            if any(decision.applied for decision in decisions):
                self._publish()
            return decisions

    # -- readers -------------------------------------------------------------

    def _pin_or_repair(self) -> DocumentSnapshot:
        """A pinned snapshot, repairing under the read lock if needed.

        The fast path never touches the store lock: writers and
        readers proceed fully independently.  The slow path (nothing
        published, or a publication died mid-way) rebuilds from the
        live tree under the read lock, which excludes writers.
        Callers must unpin the result.
        """
        snapshot = self.snapshots.pin()
        if snapshot is not None:
            return snapshot
        with self.store.read_locked():
            return self.snapshots.repair(self.store.documents)

    @contextmanager
    def read_view(self) -> "Iterator[DocumentSnapshot]":
        """Pin a consistent document view for arbitrary read work.

        With snapshot reads enabled (the default) this pins the
        latest published snapshot — immutable frozen documents, no
        store lock held, so the view stays coherent for as long as
        the caller keeps it even while writers commit.  With
        ``snapshot_reads=False`` it degrades to holding the read lock
        for the duration and viewing the live documents.
        """
        if self.snapshot_reads:
            snapshot = self._pin_or_repair()
            try:
                yield snapshot
            finally:
                self.snapshots.unpin(snapshot)
        else:
            with self.store.read_locked():
                documents = self.store.documents
                yield DocumentSnapshot(
                    0, documents,
                    [(document.uid, document.revision)
                     for document in documents])

    def verify_consistency(self) -> list[str]:
        """Full constraint check, lock-free against a pinned snapshot
        (or under the read lock with ``snapshot_reads=False``)."""
        if not self.snapshot_reads:
            return self.verify_consistency_locked()
        with self.read_view() as view:
            return verify_documents(self.checker.schema,
                                    list(view.documents))

    def verify_consistency_locked(self) -> list[str]:
        """Full constraint check against the live tree (read lock)."""
        with self.store.read_locked():
            return self.checker.verify_consistency()

    def snapshot(self) -> list[str]:
        """Serialized documents, concurrent with other readers."""
        if not self.snapshot_reads:
            return self.store.snapshot()
        with self.read_view() as view:
            return [serialize(document) for document in view.documents]

    def explain(self) -> list[str]:
        """Planner explain reports for every live full check.

        Runs against a pinned snapshot like any other read, so a slow
        explain (it profiles real evaluations) never holds up writers.
        Drift beyond the re-plan threshold is surfaced per report and
        feeds the planner's adaptive statistics (see
        :func:`repro.xquery.planner.explain_query`).
        """
        from repro.xquery import planner

        reports: list[str] = []
        with self.read_view() as view:
            documents = list(view.documents)
            for constraint in self.checker.schema.constraints:
                if constraint.dead:
                    continue
                for query in constraint.full_queries:
                    if query.prepared is None:
                        continue
                    report = planner.explain_query(
                        query.prepared, documents)
                    reports.append(
                        f"constraint {constraint.name}:\n{report}")
        return reports

    def committed_updates(self) -> list[CommittedUpdate]:
        """The commit log so far, in commit order (a copy)."""
        with self.store.read_locked():
            return list(self._committed)

    # -- passthroughs -------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register a listener on the underlying checker.

        Listeners run inside the writer-locked, transactional scope: a
        listener that raises rolls the update back.
        """
        self.checker.subscribe(listener)
